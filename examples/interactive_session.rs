//! A REAL Grid Console session: actual TCP on loopback, an actual unmodified
//! child process (`bc`-style calculator implemented with `sh`), reliable-mode
//! disk spooling, mutual GSI-lite authentication.
//!
//! The Console Shadow plays the user's terminal; the Console Agent wraps the
//! application exactly as §4 describes — the binary is untouched, its
//! stdin/stdout/stderr are intercepted and streamed home.
//!
//! ```text
//! cargo run --release --example interactive_session
//! ```

use std::process::Command;
use std::time::{Duration, Instant};

use crossgrid::console::{
    run_agent, AgentConfig, ConsoleShadow, Secret, ShadowConfig, ShadowEvent, StreamKind,
};

fn main() {
    // Shared secret — the paper's GSI proxy delegation stand-in.
    let secret = Secret::random();

    // 1. The shadow starts on the "user machine" (a randomly selected port,
    //    §4) and waits for the job's Console Agent to call home.
    let shadow = ConsoleShadow::start(ShadowConfig::local(secret.clone())).unwrap();
    let addr = shadow.addr();
    println!("console shadow listening on {addr}");

    // 2. The "worker node": the agent spawns an unmodified interactive
    //    application. Here: a tiny read-eval loop in sh.
    let agent = std::thread::spawn(move || {
        let spool = std::env::temp_dir().join(format!("cg-example-spool-{}", std::process::id()));
        std::fs::create_dir_all(&spool).unwrap();
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(
            r#"echo "simulation ready — type parameters";
               while read line; do
                 case "$line" in
                   quit) echo "shutting down"; exit 0;;
                   *) echo "steered: $line accepted";;
                 esac
               done"#,
        );
        run_agent(
            AgentConfig::reliable("interactive-session-demo", addr, secret, spool),
            cmd,
        )
        .unwrap()
    });

    // 3. The user interacts: wait for output, steer, quit.
    wait_for_output(&shadow, "simulation ready");
    println!("user types: energy=42");
    shadow.send_stdin_line("energy=42").unwrap();
    wait_for_output(&shadow, "steered: energy=42 accepted");
    println!("user types: quit");
    shadow.send_stdin_line("quit").unwrap();
    wait_for_output(&shadow, "shutting down");

    let report = agent.join().unwrap();
    println!(
        "\nagent report: exit_code={} delivered_all={} bytes_out={}",
        report.exit_code, report.delivered_all, report.bytes_stdout
    );
    assert_eq!(report.exit_code, 0);
    assert!(report.delivered_all);
    shadow.shutdown();
    println!("session closed cleanly — every byte crossed a real TCP socket.");
}

/// Drains shadow events until stdout contains `needle`, echoing output.
fn wait_for_output(shadow: &ConsoleShadow, needle: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut seen = String::new();
    while Instant::now() < deadline {
        match shadow.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ShadowEvent::Output {
                stream: StreamKind::Stdout,
                data,
                ..
            }) => {
                let text = String::from_utf8_lossy(&data).into_owned();
                print!("  [remote stdout] {text}");
                seen.push_str(&text);
                if seen.contains(needle) {
                    return;
                }
            }
            Ok(_) | Err(_) => {
                if seen.contains(needle) {
                    return;
                }
            }
        }
    }
    panic!("timed out waiting for {needle:?}; saw {seen:?}");
}
