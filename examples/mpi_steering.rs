//! Runtime steering of an MPICH-G2-style parallel job: one Console Agent per
//! subjob, all fanned into a single shadow; stdin is broadcast to every rank
//! and only rank 0 consumes it (the paper's §4 convention), while every rank
//! streams output home.
//!
//! Real processes, real TCP — this is the paper's Figure 4 topology on
//! loopback.
//!
//! ```text
//! cargo run --release --example mpi_steering
//! ```

use std::process::Command;
use std::time::{Duration, Instant};

use crossgrid::console::{
    run_agent, AgentConfig, ConsoleShadow, Secret, ShadowConfig, ShadowEvent, StreamKind,
};

const RANKS: u32 = 3;

fn main() {
    let secret = Secret::random();
    let mut config = ShadowConfig::local(secret.clone());
    config.expected_ranks = RANKS;
    let shadow = ConsoleShadow::start(config).unwrap();
    let addr = shadow.addr();
    println!("job shadow up on {addr}; launching {RANKS} subjobs…");

    // One agent per subjob. Rank 0 reads steering input; the others ignore
    // stdin (exactly how MPI applications check their rank before reading).
    let agents: Vec<_> = (0..RANKS)
        .map(|rank| {
            let secret = secret.clone();
            std::thread::spawn(move || {
                let mut cfg = AgentConfig::fast(format!("mpi-demo/{rank}"), addr, secret);
                cfg.rank = rank;
                let mut cmd = Command::new("sh");
                if rank == 0 {
                    cmd.arg("-c").arg(
                        r#"echo "rank 0: coordinator online";
                           read param;
                           echo "rank 0: broadcasting $param";
                           sleep 0.2;
                           echo "rank 0: converged with $param""#,
                    );
                } else {
                    cmd.arg("-c").arg(format!(
                        r#"echo "rank {rank}: worker online";
                           sleep 0.5;
                           echo "rank {rank}: partial result {rank}00""#,
                    ));
                }
                run_agent(cfg, cmd).unwrap()
            })
        })
        .collect();

    // Wait for all ranks to report in.
    collect_until(&shadow, |log| {
        (0..RANKS).all(|r| {
            log.iter()
                .any(|(rank, line)| *rank == r && line.contains("online"))
        })
    });
    println!("\nall ranks online — user steers: tolerance=1e-6");
    shadow.send_stdin_line("tolerance=1e-6").unwrap();

    let log = collect_until(&shadow, |log| {
        log.iter().any(|(_, line)| line.contains("converged"))
            && (1..RANKS).all(|r| {
                log.iter()
                    .any(|(rank, l)| *rank == r && l.contains("partial"))
            })
    });

    for a in agents {
        let report = a.join().unwrap();
        assert_eq!(report.exit_code, 0);
    }
    shadow.shutdown();

    println!("\nmerged output stream (rank-attributed, §4's single console):");
    for (rank, line) in &log {
        println!("  rank{rank} | {}", line.trim_end());
    }
    assert!(
        log.iter()
            .any(|(r, l)| *r == 0 && l.contains("tolerance=1e-6")),
        "rank 0 consumed the broadcast steering input"
    );
    println!("\nsteering reached rank 0 only; all ranks' output fanned into one shadow.");
}

/// Collects `(rank, line)` output until `done` says stop.
fn collect_until(
    shadow: &ConsoleShadow,
    done: impl Fn(&[(u32, String)]) -> bool,
) -> Vec<(u32, String)> {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut log: Vec<(u32, String)> = Vec::new();
    let mut partial: std::collections::HashMap<u32, String> = std::collections::HashMap::new();
    while Instant::now() < deadline {
        if done(&log) {
            return log;
        }
        if let Ok(ShadowEvent::Output {
            rank,
            stream: StreamKind::Stdout,
            data,
        }) = shadow.events().recv_timeout(Duration::from_millis(100))
        {
            let buf = partial.entry(rank).or_default();
            buf.push_str(&String::from_utf8_lossy(&data));
            while let Some(pos) = buf.find('\n') {
                let line: String = buf.drain(..=pos).collect();
                log.push((rank, line));
            }
        }
    }
    panic!("timed out; collected so far: {log:?}");
}
