//! Crash a journaling broker at a deterministic kill point, then recover.
//!
//! Runs a small two-site scenario with the event log writing through to a
//! durable journal, seals the journal mid-flight with a [`CrashPlan`] (the
//! moral equivalent of pulling the plug between two appends), and rebuilds
//! a fresh broker from the surviving bytes with [`CrossBroker::recover`].
//!
//! ```text
//! cargo run --example broker_crash_recovery
//! ```

use crossgrid::jdl::JobDescription;
use crossgrid::net::{FaultSchedule, Link, LinkProfile};
use crossgrid::prelude::*;
use crossgrid::site::{Policy, SiteConfig};
use crossgrid::trace::journal::{open_journal, Journal, JournalConfig};
use crossgrid::trace::CrashPlan;

fn world() -> (Vec<SiteHandle>, Link) {
    let handles = ["alpha", "beta"]
        .iter()
        .map(|name| SiteHandle {
            site: Site::new(SiteConfig {
                name: (*name).into(),
                nodes: 2,
                policy: Policy::Fifo,
                ..SiteConfig::default()
            }),
            broker_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
            ui_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
        })
        .collect();
    (
        handles,
        Link::with_faults(LinkProfile::wan_mds(), FaultSchedule::none()),
    )
}

fn submit_pair(sim: &mut Sim, broker: &CrossBroker) {
    let job = JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "exclusive"; User = "alice";"#,
    )
    .expect("valid JDL");
    broker.submit(sim, job.clone(), SimDuration::from_secs(30));
    broker.submit(sim, job, SimDuration::from_secs(30));
}

fn main() {
    let journal_path = std::env::temp_dir().join(format!(
        "crossgrid-crash-recovery-demo-{}.journal",
        std::process::id()
    ));

    // ── Epoch 1: run with a write-ahead journal, crash mid-flight. ──────
    let mut sim = Sim::new(7);
    let (handles, mds) = world();
    let broker = CrossBroker::new(&mut sim, handles, mds, BrokerConfig::default());
    let log = broker.event_log();
    log.set_journal(Journal::create(&journal_path, JournalConfig::default()).expect("create"));
    log.arm_crash(CrashPlan {
        after_event_seq: 12,
    });
    submit_pair(&mut sim, &broker);
    sim.run_until(SimTime::from_secs(300));
    assert!(log.crashed(), "the kill point must fire");
    println!(
        "epoch 1 crashed after event 12; in-memory run went on to finish {} job(s)",
        broker.stats().finished
    );

    // ── Epoch 2: reopen the journal and rebuild a fresh broker. ─────────
    let loaded = open_journal(&journal_path).expect("reopen journal");
    println!(
        "journal holds {} event(s), torn tail: {} byte(s)",
        loaded.events.len(),
        loaded.truncated_bytes
    );
    let mut sim2 = Sim::new(1234);
    let (handles, mds) = world();
    let (recovered, report) =
        CrossBroker::recover(&mut sim2, handles, mds, BrokerConfig::default(), &loaded)
            .expect("recover");
    println!(
        "recovered {} job(s): {} terminal, {} requeued, {} resubmitted, {} aborted, {} agent(s) lost",
        report.jobs,
        report.terminal,
        report.requeued,
        report.resubmitted,
        report.aborted,
        report.agents_lost
    );
    assert!(
        report.violations.is_empty(),
        "recovery invariants: {:?}",
        report.violations
    );

    sim2.run_until(report.crash_at + SimDuration::from_secs(300));
    let stats = recovered.stats();
    println!(
        "epoch 2 finished the re-armed work: {} finished, {} failed",
        stats.finished, stats.failed
    );
    let _ = std::fs::remove_file(&journal_path);
}
