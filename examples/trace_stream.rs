//! The broker's lifecycle event stream: run two simulated hours of mixed
//! load, then read back the merged event log, the per-kind counters, the
//! response-time histogram, and the protocol invariant check.
//!
//! ```text
//! cargo run --release --example trace_stream
//! CG_TRACE_JSONL=day.jsonl cargo run --release --example trace_stream
//! ```

use crossgrid::handles_from_scenario;
use crossgrid::prelude::*;
use crossgrid::trace::dump_jsonl_env;
use crossgrid::workloads::{poisson_arrivals, JobMix};

fn main() {
    let mut sim = Sim::new(0x7ACE);
    let mut rng = crossgrid::sim::SimRng::new(0x7ACE);
    let scenario = crossgrid_testbed(&mut rng, false);
    let broker = CrossBroker::new(
        &mut sim,
        handles_from_scenario(&scenario),
        scenario.mds_link(),
        BrokerConfig::default(),
    );

    let horizon = SimTime::from_secs(2 * 3_600);
    for arrival in poisson_arrivals(
        &mut rng,
        &JobMix::default(),
        SimDuration::from_secs(120),
        horizon,
    ) {
        let broker2 = broker.clone();
        let job = arrival.job.clone();
        let runtime = arrival.runtime;
        sim.schedule_at(arrival.at, move |sim| {
            broker2.submit(sim, job, runtime);
        });
    }
    sim.run_until(horizon + SimDuration::from_secs(2 * 3_600));

    let log = broker.event_log();
    let metrics = broker.metrics();
    println!(
        "{} events recorded ({} dropped by the ring)",
        log.recorded(),
        log.dropped()
    );

    let mut kinds: Vec<(String, u64)> = metrics
        .counter_names()
        .iter()
        .filter(|n| n.starts_with("events."))
        .map(|n| (n["events.".len()..].to_string(), metrics.counter(n)))
        .collect();
    kinds.sort_by_key(|k| std::cmp::Reverse(k.1));
    println!("\ntop event kinds:");
    for (kind, n) in kinds.iter().take(10) {
        println!("  {n:>6}  {kind}");
    }

    if let Some(resp) = metrics.histogram_stats("response_s") {
        println!(
            "\nresponse time: n={} mean={:.1}s p95={:.1}s",
            resp.count(),
            resp.mean(),
            metrics.percentile("response_s", 95.0).unwrap_or(f64::NAN)
        );
    }

    let violations = check_invariants(&log.snapshot());
    if violations.is_empty() {
        println!("\ninvariants: clean (dispatch-after-lease, single terminal state, ack≤append, batch restored)");
    } else {
        println!("\ninvariants: {} VIOLATIONS", violations.len());
        for v in &violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }

    if let Some(path) = dump_jsonl_env(&log, "CG_TRACE_JSONL") {
        println!("JSONL written to {}", path.display());
    }
}
