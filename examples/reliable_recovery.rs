//! The reliable streaming mode surviving a real network outage: a TCP proxy
//! between agent and shadow is killed mid-stream and the session recovers
//! byte-exactly from the disk spools — §4's "keep processes running … try the
//! network connection again … transfer any buffered data … resume normal
//! operation", live.
//!
//! ```text
//! cargo run --release --example reliable_recovery
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossgrid::console::{
    run_agent, AgentConfig, ConsoleShadow, Secret, ShadowConfig, ShadowEvent, StreamKind,
};

fn main() {
    let secret = Secret::random();
    let spool = std::env::temp_dir().join(format!("cg-recovery-spool-{}", std::process::id()));
    std::fs::create_dir_all(&spool).unwrap();

    let mut config = ShadowConfig::local(secret.clone());
    config.mode = crossgrid::console::Mode::Reliable {
        spool_dir: spool.clone(),
    };
    let shadow = ConsoleShadow::start(config).unwrap();

    // The killable network: a TCP proxy standing in for the flaky WAN.
    let proxy = Proxy::start(shadow.addr());
    println!(
        "shadow on {}, agent connects via flaky proxy {}",
        shadow.addr(),
        proxy.addr
    );

    let agent = {
        let secret = secret.clone();
        let spool = spool.clone();
        let addr = proxy.addr;
        std::thread::spawn(move || {
            let mut cfg = AgentConfig::reliable("recovery-demo", addr, secret, spool);
            cfg.retry_interval = Duration::from_millis(250);
            cfg.max_retries = 200;
            let mut cmd = Command::new("sh");
            cmd.arg("-c")
                .arg("i=0; while [ $i -lt 40 ]; do echo tick-$i; i=$((i+1)); sleep 0.05; done");
            run_agent(cfg, cmd).unwrap()
        })
    };

    // Let output flow, then cut the line for a second mid-stream.
    let mut received = String::new();
    drain(&shadow, &mut received, Duration::from_millis(600));
    println!("\n--- network outage injected (proxy killed) ---");
    proxy.down();
    std::thread::sleep(Duration::from_secs(1));
    println!("--- network restored ---\n");
    proxy.up();

    // Drain until the job exits and everything arrived.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut exited = false;
    while Instant::now() < deadline {
        match shadow.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ShadowEvent::Output {
                stream: StreamKind::Stdout,
                data,
                ..
            }) => received.push_str(&String::from_utf8_lossy(&data)),
            Ok(ShadowEvent::Exit { .. }) => exited = true,
            Ok(ShadowEvent::AgentConnected {
                reconnect: true, ..
            }) => {
                println!("(agent reconnected and replayed its spool)");
            }
            _ => {}
        }
        if exited && received.matches('\n').count() == 40 {
            break;
        }
    }
    let report = agent.join().unwrap();
    shadow.shutdown();

    let expected = (0..40).fold(String::new(), |mut s, i| {
        use std::fmt::Write as _;
        let _ = writeln!(s, "tick-{i}");
        s
    });
    assert_eq!(received, expected, "byte-exact despite the outage");
    assert!(report.delivered_all);
    assert!(report.reconnects >= 1, "the outage forced a reconnection");
    println!(
        "all 40 lines delivered byte-exactly across the outage ({} reconnect(s)).",
        report.reconnects
    );
}

fn drain(shadow: &ConsoleShadow, into: &mut String, for_long: Duration) {
    let until = Instant::now() + for_long;
    while Instant::now() < until {
        if let Ok(ShadowEvent::Output {
            stream: StreamKind::Stdout,
            data,
            ..
        }) = shadow.events().recv_timeout(Duration::from_millis(100))
        {
            into.push_str(&String::from_utf8_lossy(&data));
        }
    }
}

/// Minimal killable TCP proxy.
struct Proxy {
    addr: SocketAddr,
    kill: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
}

impl Proxy {
    fn start(target: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let kill = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let (k, s) = (Arc::clone(&kill), Arc::clone(&stop));
        std::thread::spawn(move || loop {
            if s.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((client, _)) if !k.load(Ordering::SeqCst) => {
                    if let Ok(server) = TcpStream::connect(target) {
                        for (mut from, mut to) in [
                            (client.try_clone().unwrap(), server.try_clone().unwrap()),
                            (server, client),
                        ] {
                            let k2 = Arc::clone(&k);
                            std::thread::spawn(move || {
                                from.set_read_timeout(Some(Duration::from_millis(50)))
                                    .unwrap();
                                let mut buf = [0u8; 4096];
                                loop {
                                    if k2.load(Ordering::SeqCst) {
                                        let _ = from.shutdown(std::net::Shutdown::Both);
                                        let _ = to.shutdown(std::net::Shutdown::Both);
                                        return;
                                    }
                                    match from.read(&mut buf) {
                                        Ok(0) => return,
                                        Ok(n) => {
                                            if to.write_all(&buf[..n]).is_err() {
                                                return;
                                            }
                                        }
                                        Err(e)
                                            if e.kind() == std::io::ErrorKind::WouldBlock
                                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                                        Err(_) => return,
                                    }
                                }
                            });
                        }
                    }
                }
                Ok((refused, _)) => drop(refused),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => return,
            }
        });
        Proxy { addr, kill, stop }
    }

    fn down(&self) {
        self.kill.store(true, Ordering::SeqCst);
    }

    fn up(&self) {
        self.kill.store(false, Ordering::SeqCst);
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.kill.store(true, Ordering::SeqCst);
    }
}
