//! Bad fixture for L2: a guard held across durable I/O (L201) and
//! overlapping guards (L202).

use std::fs::File;
use std::sync::Mutex;

pub fn flush_under_lock(file: &File, buffered: &Mutex<Vec<u8>>) {
    let guard = buffered.lock().unwrap();
    file.sync_all().unwrap();
    drop(guard);
}

pub fn nested_guards(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}
