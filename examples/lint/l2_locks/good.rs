//! Good fixture for L2: copy out under the lock, release, then touch the
//! disk; a deliberate two-lock order carries the escape hatch.

use std::fs::File;
use std::io;
use std::sync::Mutex;

pub fn flush_outside_lock(file: &File, buffered: &Mutex<Vec<u8>>) -> io::Result<()> {
    let guard = buffered.lock().unwrap();
    let snapshot = guard.clone();
    drop(guard);
    let _ = snapshot;
    file.sync_all()
}

pub fn documented_order(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    // cg-lint: allow(nested-lock): fixture documents the fixed a-then-b order
    let gb = b.lock().unwrap();
    *ga + *gb
}
