//! Bad fixture for the backend-bridging pass: a `Backend` impl reading
//! the wall clock directly. `Instant::now` inside the impl is L102 (the
//! sim-time bridging rule has no escape hatch) and the same token is L101
//! in sim-governed code, so this file flags both.

pub struct LocalJobId(pub u64);

pub trait Backend {
    fn queue_depth(&self) -> usize;
}

pub struct ImpatientBackend {
    started: std::time::Instant,
}

impl Backend for ImpatientBackend {
    fn queue_depth(&self) -> usize {
        let elapsed = std::time::Instant::now() - self.started;
        usize::from(elapsed.as_secs() > 1)
    }
}
