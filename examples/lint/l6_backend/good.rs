//! Good fixture for the backend-bridging pass: real elapsed time is read
//! through the `mono_ns()` chokepoint and lands only in backend-local
//! counters — the sim never sees it.

pub struct LocalJobId(pub u64);

fn mono_ns() -> u64 {
    0
}

pub trait Backend {
    fn queue_depth(&self) -> usize;
}

pub struct BridgedBackend {
    real_ns: std::cell::Cell<u64>,
    queued: usize,
}

impl Backend for BridgedBackend {
    fn queue_depth(&self) -> usize {
        let t0 = mono_ns();
        let depth = self.queued;
        self.real_ns.set(self.real_ns.get() + (mono_ns() - t0));
        depth
    }
}
