//! Good fixture for W501: every waiver says why it exists.

// Kept as scaffolding for the paired bad fixture; nothing calls it.
#[allow(dead_code)]
fn unused_helper() {}
