//! Bad fixture for W501: the `#[allow]` below carries no comment saying
//! why the lint is waived.

#[allow(dead_code)]
fn unused_helper() {}
