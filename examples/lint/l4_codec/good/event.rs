//! Good fixture for L4: every variant has one unique tag, encode and
//! decode agree.

pub enum Event {
    JobQueued { job: u64 },
    JobDone { job: u64, code: i32 },
    SiteDrained { site: u32 },
}
