//! Good fixture for L4: the codec half — tags 1/2/3, symmetric arms.

fn put_u8(out: &mut Vec<u8>, b: u8) {
    out.push(b);
}

pub fn encode_event(out: &mut Vec<u8>, ev: &Event) {
    match ev {
        Event::JobQueued { job } => {
            put_u8(out, 1);
            out.extend_from_slice(&job.to_le_bytes());
        }
        Event::JobDone { job, code } => {
            put_u8(out, 2);
            out.extend_from_slice(&job.to_le_bytes());
            out.extend_from_slice(&code.to_le_bytes());
        }
        Event::SiteDrained { site } => {
            put_u8(out, 3);
            out.extend_from_slice(&site.to_le_bytes());
        }
    }
}

pub fn decode_event(tag: u8) -> Option<Event> {
    match tag {
        1 => Some(Event::JobQueued { job: 0 }),
        2 => Some(Event::JobDone { job: 0, code: 0 }),
        3 => Some(Event::SiteDrained { site: 0 }),
        _ => None,
    }
}
