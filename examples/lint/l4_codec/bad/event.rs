//! Bad fixture for L4, enum half: `SiteDrained` never got an encode arm
//! (L402 on this file).

pub enum Event {
    JobQueued { job: u64 },
    JobDone { job: u64 },
    SiteDrained { site: u32 },
}
