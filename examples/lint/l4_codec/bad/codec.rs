//! Bad fixture for L4, codec half: `JobDone` reuses tag 1 on encode
//! (L401), decodes from tag 3 instead (L403), and tag 4 constructs a
//! variant the enum no longer has (L402).

fn put_u8(out: &mut Vec<u8>, b: u8) {
    out.push(b);
}

pub fn encode_event(out: &mut Vec<u8>, ev: &Event) {
    match ev {
        Event::JobQueued { job } => {
            put_u8(out, 1);
            out.extend_from_slice(&job.to_le_bytes());
        }
        Event::JobDone { job } => {
            put_u8(out, 1);
            out.extend_from_slice(&job.to_le_bytes());
        }
    }
}

pub fn decode_event(tag: u8) -> Option<Event> {
    match tag {
        1 => Some(Event::JobQueued { job: 0 }),
        3 => Some(Event::JobDone { job: 0 }),
        4 => Some(Event::Retired),
        _ => None,
    }
}
