//! Bad fixture for L3: a `SelectionPolicy` impl that breaks the
//! pure-function contract three ways — interior mutability (L301), ambient
//! randomness (L302), and I/O (L303).

pub struct Candidate {
    pub free_cpus: u32,
}

pub trait SelectionPolicy {
    fn score(&self, c: &Candidate) -> f64;
}

pub struct ImpurePolicy {
    calls: std::sync::atomic::AtomicU64,
}

impl SelectionPolicy for ImpurePolicy {
    fn score(&self, c: &Candidate) -> f64 {
        self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let jitter = random();
        println!("scoring candidate with {} cpus", c.free_cpus);
        f64::from(c.free_cpus) + jitter
    }
}
