//! Good fixture for L3: scoring is a pure function of its arguments;
//! anything stateful was precomputed by the caller and passed in.

pub struct Candidate {
    pub free_cpus: u32,
    pub queue_len: u32,
}

pub trait SelectionPolicy {
    fn score(&self, c: &Candidate) -> f64;
}

pub struct GreedyPolicy;

impl SelectionPolicy for GreedyPolicy {
    fn score(&self, c: &Candidate) -> f64 {
        f64::from(c.free_cpus) / (1.0 + f64::from(c.queue_len))
    }
}
