//! Bad fixture for L101: wall clocks and ambient RNG in sim-governed code.

pub fn stamp_now() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn wall_epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn jittered(n: u64) -> u64 {
    let mut rng = thread_rng();
    n.wrapping_add(rng.next_u64() % 7)
}
