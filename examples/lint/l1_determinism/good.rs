//! Good fixture for L1: time arrives as an argument (the sim clock is the
//! only source), and the one genuine real-time read carries the escape
//! hatch with a reason.

pub fn stamp(now_ns: u64) -> u64 {
    now_ns
}

pub fn real_epoch_for_transport() -> u64 {
    // cg-lint: allow(wall-clock): fixture demonstrating a justified real-time read
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
