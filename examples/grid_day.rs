//! A day in the life of the CrossGrid testbed: 18 sites, nine countries,
//! hours of mixed batch/interactive load — fair-share priorities, glide-in
//! agents, and the broker's scheduling mechanisms all working at once.
//!
//! ```text
//! cargo run --release --example grid_day
//! ```

use crossgrid::handles_from_scenario;
use crossgrid::prelude::*;
use crossgrid::workloads::{poisson_arrivals, JobMix};

fn main() {
    let mut sim = Sim::new(0xDA7);
    let mut scenario_rng = crossgrid::sim::SimRng::new(0x5EED);
    let scenario = crossgrid_testbed(&mut scenario_rng, false);
    println!(
        "testbed: {} sites, {} worker nodes total",
        scenario.sites.len(),
        scenario
            .sites
            .iter()
            .map(|(s, _)| s.lrms().total_nodes())
            .sum::<usize>()
    );

    let broker = CrossBroker::new(
        &mut sim,
        handles_from_scenario(&scenario),
        scenario.mds_link(),
        BrokerConfig::default(),
    );

    // Eight hours of arrivals: one job every ~2 minutes, a quarter of them
    // interactive.
    let mix = JobMix::default();
    let horizon = SimTime::from_secs(8 * 3_600);
    let arrivals = poisson_arrivals(
        &mut scenario_rng,
        &mix,
        SimDuration::from_secs(120),
        horizon,
    );
    println!("workload: {} jobs over 8 simulated hours", arrivals.len());

    for arrival in arrivals {
        let broker2 = broker.clone();
        let job = arrival.job.clone();
        let runtime = arrival.runtime;
        sim.schedule_at(arrival.at, move |sim| {
            broker2.submit(sim, job, runtime);
        });
    }
    sim.run_until(horizon + SimDuration::from_secs(4 * 3_600)); // drain tail

    // Report.
    let stats = broker.stats();
    println!("\n== day summary ==");
    println!("  submitted      {}", stats.submitted);
    println!("  started        {}", stats.started);
    println!("  finished       {}", stats.finished);
    println!("  failed         {}", stats.failed);
    println!(
        "  rejected       {} (fair-share under scarcity)",
        stats.rejected
    );
    println!(
        "  resubmissions  {} (on-line scheduling)",
        stats.resubmissions
    );
    println!("  agents used    {}", stats.agents_deployed);

    let records = broker.records();
    let mut interactive_resp = Vec::new();
    let mut batch_resp = Vec::new();
    for r in &records {
        if let Some(resp) = r.response_s() {
            // Interactive jobs were submitted with MachineAccess attributes;
            // a cheap heuristic on response time class: look at user records.
            if r.selection_s().unwrap_or(0.0) == 0.0 {
                interactive_resp.push(resp); // shared path (combined step)
            } else {
                batch_resp.push(resp);
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "\n  shared-path interactive jobs: {} (mean response {:.1} s)",
        interactive_resp.len(),
        mean(&interactive_resp)
    );
    println!(
        "  matched-path jobs:            {} (mean response {:.1} s)",
        batch_resp.len(),
        mean(&batch_resp)
    );

    // The user-experience metric: steering-op latency across all running
    // interactive sessions ("genuine feeling of interactivity", §4).
    let lat = broker.session_latencies();
    if !lat.is_empty() {
        println!(
            "\n  console steering latency (1 KiB ops): mean {:.2} ms, p95 {:.2} ms ({} samples)",
            lat.mean() * 1e3,
            lat.percentile(95.0).unwrap() * 1e3,
            lat.len()
        );
    }

    // Fair-share leaderboard.
    println!("\n  user priorities (higher = worse):");
    let mut users: Vec<String> = records.iter().map(|r| r.user.clone()).collect();
    users.sort();
    users.dedup();
    let mut prio: Vec<(String, f64)> = users
        .into_iter()
        .map(|u| {
            let p = broker.priority(&u);
            (u, p)
        })
        .collect();
    prio.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (u, p) in prio.iter().take(8) {
        println!("    {u:<8} {p:.5}");
    }

    assert!(stats.started > 0, "the grid did work");
    assert!(
        stats.finished + stats.failed + stats.rejected > 0,
        "jobs reached terminal states"
    );
}
