//! Quickstart: submit an interactive job to a simulated grid and watch it
//! traverse the full CrossBroker pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crossgrid::handles_from_scenario;
use crossgrid::prelude::*;

fn main() {
    // A deterministic simulated world: the campus scenario from the paper's
    // evaluation (submission and execution machines on the university LAN).
    let mut sim = Sim::new(2026);
    let scenario = campus_pair(4);
    let broker = CrossBroker::new(
        &mut sim,
        handles_from_scenario(&scenario),
        scenario.mds_link(),
        BrokerConfig::default(),
    );

    // The user's job, written in JDL exactly like the paper's Figure 2.
    let job = JobDescription::parse(
        r#"
        Executable     = "hep_event_display";
        JobType        = "interactive";
        MachineAccess  = "exclusive";
        StreamingMode  = "reliable";
        User           = "alice";
    "#,
    )
    .unwrap();
    println!("submitting {:?} for {}", job.executable, job.user);

    let id = broker.submit(&mut sim, job, SimDuration::from_secs(600));
    sim.run_until(SimTime::from_secs(3_600));

    let record = broker.record(id);
    println!("\njob lifecycle ({}):", record.id);
    println!("  state                  {:?}", record.state);
    println!(
        "  resource discovery     {:>8} s   (paper: ~0.5 s)",
        fmt(record.discovery_s())
    );
    println!(
        "  resource selection     {:>8} s   (paper: ~3 s at 20 sites; 1 site here)",
        fmt(record.selection_s())
    );
    println!(
        "  submission→1st output  {:>8} s   (paper Table I, idle: 17.2 s)",
        fmt(record.submission_s())
    );
    println!("  total response time    {:>8} s", fmt(record.response_s()));
    assert!(
        matches!(record.state, JobState::Done),
        "the job should have completed"
    );
    println!("\nthe user saw her first output {} s after submission — on 2006\nmiddleware, through GSI, a Globus gatekeeper, a batch system, and the Grid\nConsole. For the fast path, see the shared/agent examples.", fmt(record.response_s()));
}

fn fmt(x: Option<f64>) -> String {
    x.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into())
}
