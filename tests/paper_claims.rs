//! The paper's headline claims, verified end-to-end in one place. These are
//! the acceptance tests of the reproduction: if any of them fails, the
//! repository no longer reproduces the paper's evaluation shapes.

use cg_bench::response::{sample_discovery_selection, sample_submission, Path};
use cg_bench::streaming::{run_figure, shape_violations};
use cg_bench::vmload::{paper_values, run_fig8};
use crossgrid::net::LinkProfile;
use crossgrid::sim::SampleSet;

fn mean_submission(path: Path, profile: &LinkProfile, n: u32, seed: u64) -> f64 {
    let mut s = SampleSet::new();
    for i in 0..n {
        if let Some(t) = sample_submission(path, profile, seed + i as u64) {
            s.record(t);
        }
    }
    assert!(s.len() as u32 >= n * 9 / 10, "most samples must complete");
    s.mean()
}

#[test]
fn claim_table1_ordering_and_magnitudes() {
    let campus = LinkProfile::campus();
    let n = 15;
    let glogin = mean_submission(Path::Glogin, &campus, n, 100);
    let idle = mean_submission(Path::Idle, &campus, n, 200);
    let vm = mean_submission(Path::VirtualMachine, &campus, n, 300);
    let agent = mean_submission(Path::JobPlusAgent, &campus, n, 400);

    // §6.1: "submission of interactive jobs in shared mode exhibits the
    // shortest startup times. It is more than two times smaller than the
    // best of the other options (Glogin)".
    assert!(
        vm * 2.0 < glogin.min(idle).min(agent),
        "vm={vm} others={glogin}/{idle}/{agent}"
    );
    // "Glogin submission and interactive submission in exclusive mode
    // exhibit similar performance, although Glogin is slightly better."
    assert!(glogin < idle, "glogin {glogin} vs idle {idle}");
    assert!(
        idle / glogin < 1.25,
        "similar performance: {idle} vs {glogin}"
    );
    // "the worst time corresponds to the submission of a batch job".
    assert!(agent > idle && agent > glogin, "agent {agent} worst");

    // Magnitudes within ±20 % of the paper's campus numbers.
    for (ours, paper) in [(glogin, 16.43), (idle, 17.2), (vm, 6.79), (agent, 29.3)] {
        assert!(
            (ours / paper - 1.0).abs() < 0.20,
            "{ours:.2} vs paper {paper}"
        );
    }
}

#[test]
fn claim_glogin_slower_over_wan() {
    let n = 15;
    let campus = mean_submission(Path::Glogin, &LinkProfile::campus(), n, 500);
    let ifca = mean_submission(Path::Glogin, &LinkProfile::wan_ifca(), n, 600);
    // Paper: 16.43 → 20.12 s.
    assert!(ifca > campus + 1.5, "{ifca} vs {campus}");
    assert!(ifca < campus + 7.0);
}

#[test]
fn claim_discovery_and_selection_costs() {
    let mut disc = SampleSet::new();
    let mut sel = SampleSet::new();
    for i in 0..10 {
        let (d, s) = sample_discovery_selection(20, 700 + i).unwrap();
        disc.record(d);
        sel.record(s);
    }
    assert!(
        (0.3..0.7).contains(&disc.mean()),
        "discovery {} vs paper 0.5",
        disc.mean()
    );
    assert!(
        (2.3..3.7).contains(&sel.mean()),
        "selection {} vs paper 3",
        sel.mean()
    );
}

#[test]
fn claim_figure6_campus_shapes() {
    let runs = run_figure(&LinkProfile::campus(), 400, 0xAA);
    let v = shape_violations(&runs, true);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn claim_figure7_wan_shapes() {
    let runs = run_figure(&LinkProfile::wan_ifca(), 400, 0xBB);
    let v = shape_violations(&runs, false);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn claim_figure8_overheads() {
    let series = run_fig8(0xCC);
    for s in &series {
        let paper = paper_values(&s.label).unwrap();
        let cpu = s.result.cpu.mean();
        assert!(
            (cpu / paper.cpu_mean - 1.0).abs() < 0.02,
            "{}: {cpu} vs {}",
            s.label,
            paper.cpu_mean
        );
    }
    // "the overhead introduced by our multiprogramming agent is negligible".
    let excl = series[0].result.cpu.mean();
    let alone = series[1].result.cpu.mean();
    assert!((alone / excl - 1.0).abs() < 0.002);
    // "CPU adjustment is close to the value of the Performance Loss
    // attribute, while the priority adjustment has a lower repercussion on
    // I/O performance."
    let pl25 = &series[3].result;
    let cpu_loss = pl25.cpu.mean() / excl - 1.0;
    let io_loss = pl25.io.mean() / series[0].result.io.mean() - 1.0;
    assert!((0.19..0.25).contains(&cpu_loss));
    assert!(io_loss < cpu_loss / 1.8, "io {io_loss} vs cpu {cpu_loss}");
}
