//! Sharded-vs-sequential equivalence: the parallel matchmaking engine must
//! land every job in exactly the terminal bucket the one-thread run
//! produces, at every thread count, and its merged event stream must obey
//! the whole-stream protocol invariants (rules 1–5) and the recovery
//! comparison rules (6–8) against the sharded job table's projection.

use std::collections::BTreeMap;

use crossgrid::broker::{
    JobId, JobRecord, JobState, MatchOutcome, MatchRequest, ParallelMatcher, ShardedJobTable,
    DEFAULT_SHARDS,
};
use crossgrid::jdl::{Ad, JobDescription};
use crossgrid::trace::replay::{Bucket, ReplayJob, ReplayState};
use crossgrid::trace::{check_invariants, check_recovery_invariants, EventLog};

mod common;
use common::{bucket_of, phase_of};

const SEED: u64 = 20_060_925; // the paper's conference date

/// A synthetic grid: `n` sites with cyclic free-CPU counts (including
/// zero-free sites) and a batch-queue policy that varies by site.
fn ads(n: usize) -> Vec<(usize, Ad)> {
    (0..n)
        .map(|i| {
            let mut ad = Ad::new();
            ad.set_str("Site", format!("s{i}"))
                .set_int("FreeCpus", (i % 5) as i64)
                .set_bool("AcceptsQueued", i % 3 != 0);
            (i, ad)
        })
        .collect()
}

/// A mixed batch: interactive MPI jobs of varying widths racing batch jobs,
/// spread over a handful of users. Default (absent) `Rank` leaves every
/// candidate at the same rank, so the per-job tie shuffles do real work.
fn requests(n: usize) -> Vec<MatchRequest> {
    (0..n)
        .map(|i| {
            let nodes = 1 + i % 3;
            let user = format!("u{}", i % 7);
            let src = if i % 2 == 0 {
                format!(
                    r#"Executable = "iapp"; JobType = {{"interactive","mpich-p4"}};
                       NodeNumber = {nodes}; User = "{user}";"#
                )
            } else {
                // Batch jobs are sequential in this dialect (width 1).
                format!(r#"Executable = "bapp"; JobType = "batch"; User = "{user}";"#)
            };
            MatchRequest {
                id: JobId(i as u64),
                job: JobDescription::parse(&src).unwrap(),
            }
        })
        .collect()
}

struct Run {
    outcomes: Vec<(JobId, MatchOutcome)>,
    buckets: BTreeMap<u64, Bucket>,
    log: EventLog,
    table: ShardedJobTable<JobRecord>,
}

fn run(requests: &[MatchRequest], sites: usize, threads: usize) -> Run {
    let log = EventLog::new(requests.len() * 4 + sites + 16);
    let table = ShardedJobTable::new(DEFAULT_SHARDS);
    let engine = ParallelMatcher::new(ads(sites), SEED);
    let outcomes = engine.run(requests, threads, &log, &table);
    let buckets = table
        .snapshot()
        .iter()
        .map(|(id, r)| (id.0, bucket_of(&r.state)))
        .collect();
    Run {
        outcomes,
        buckets,
        log,
        table,
    }
}

/// Lifts the sharded job table into the replay model so
/// [`check_recovery_invariants`] can compare it with the event stream.
fn project(table: &ShardedJobTable<JobRecord>, requests: &[MatchRequest]) -> ReplayState {
    let interactive: BTreeMap<u64, bool> = requests
        .iter()
        .map(|r| (r.id.0, r.job.is_interactive()))
        .collect();
    let mut state = ReplayState::default();
    for (id, r) in table.snapshot() {
        state.jobs.insert(
            id.0,
            ReplayJob {
                user: r.user.clone(),
                interactive: interactive[&id.0],
                phase: phase_of(&r.state),
                queued: matches!(r.state, JobState::BrokerQueued),
                attempts: r.resubmissions,
                started: r.started_at.is_some(),
                submitted_at_ns: r.submitted_at.as_nanos(),
                started_at_ns: None,
                finished_at_ns: None,
                lease: None,
                jdl: None,
                runtime_ns: None,
                fail_reason: match &r.state {
                    JobState::Failed { reason } => Some(reason.clone()),
                    _ => None,
                },
            },
        );
    }
    state
}

#[test]
fn every_thread_count_reproduces_the_sequential_terminal_buckets() {
    let reqs = requests(400);
    let baseline = run(&reqs, 40, 1);
    // The sweep only proves something if all three dispositions occur.
    for bucket in ["dispatched", "queued", "no-resources"] {
        assert!(
            baseline.outcomes.iter().any(|(_, o)| o.bucket() == bucket),
            "sweep scenario never produces a {bucket} job"
        );
    }
    assert_eq!(baseline.table.len(), reqs.len());
    for threads in [2, 4, 8, 16] {
        let sharded = run(&reqs, 40, threads);
        assert_eq!(
            sharded.outcomes, baseline.outcomes,
            "outcomes diverged at {threads} threads"
        );
        assert_eq!(
            sharded.buckets, baseline.buckets,
            "job-table buckets diverged at {threads} threads"
        );
    }
}

#[test]
fn stress_eight_threads_five_thousand_jobs_obeys_all_invariants() {
    let reqs = requests(5_000);
    let r = run(&reqs, 100, 8);
    assert_eq!(r.table.len(), reqs.len());
    assert_eq!(r.log.dropped(), 0, "ring too small for the stream");

    // Rules 1–5 on the merged stream: every dispatch behind a lease, one
    // terminal event per job, no post-rejection activity.
    let events = r.log.snapshot();
    let violations = check_invariants(&events);
    assert!(violations.is_empty(), "{violations:?}");

    // Rules 6–8: the event stream's fold and the sharded table agree
    // job-for-job on bucket, attempts, user and started.
    let mut expected = ReplayState::default();
    for ev in &events {
        expected.apply(ev);
    }
    let recovered = project(&r.table, &reqs);
    let violations = check_recovery_invariants(&[], &expected, &recovered);
    assert!(violations.is_empty(), "{violations:?}");

    // And the outcome vector is still the sequential one.
    let sequential = run(&reqs, 100, 1);
    assert_eq!(r.outcomes, sequential.outcomes);
}
