//! Integration tests of the `cgrun` CLI binary: real processes, real pipes,
//! real TCP.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn cgrun() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cgrun"))
}

#[test]
fn local_mode_round_trips_stdio_and_exit_code() {
    let mut child = cgrun()
        .args(["local", "--", "sh", "-c", "read x; echo got:$x; exit 5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"ping\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), "got:ping\n");
    assert_eq!(out.status.code(), Some(5), "exit code propagates");
}

#[test]
fn local_mode_reliable_flag_spools_to_disk() {
    let spool = std::env::temp_dir().join(format!("cgrun-test-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let out = cgrun()
        .args([
            "local",
            "--reliable",
            spool.to_str().unwrap(),
            "--",
            "echo",
            "durable",
        ])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), "durable\n");
    assert!(out.status.success());
    // Spool files were created (agent stdout spool at least).
    let entries: Vec<_> = std::fs::read_dir(&spool).unwrap().collect();
    assert!(!entries.is_empty(), "spool dir should contain files");
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn shadow_and_agent_as_separate_processes() {
    let dir = std::env::temp_dir().join(format!("cgrun-test-sep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let secret_path = dir.join("secret");
    std::fs::write(&secret_path, b"cgrun-integration-secret").unwrap();

    // Shadow process.
    let mut shadow = cgrun()
        .args(["shadow", "--secret-file", secret_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Parse "shadow listening on 0.0.0.0:PORT" from its stdout.
    let mut reader = BufReader::new(shadow.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let port: u16 = line
        .rsplit(':')
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("no port in {line:?}"));
    // Swallow the hint line.
    let mut hint = String::new();
    reader.read_line(&mut hint).unwrap();

    // Agent process wrapping `cat`-like echo.
    let mut agent = cgrun()
        .args([
            "agent",
            "--shadow",
            &format!("127.0.0.1:{port}"),
            "--secret-file",
            secret_path.to_str().unwrap(),
            "--",
            "sh",
            "-c",
            "read a; echo reply:$a",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Type into the shadow; expect the job's reply on the shadow's stdout.
    shadow
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"over-tcp\n")
        .unwrap();
    let mut reply = String::new();
    // cg-lint: allow(wall-clock): bounded wait for a real subprocess over real TCP
    let deadline = Instant::now() + Duration::from_secs(15);
    // cg-lint: allow(wall-clock): same real-TCP reply deadline
    while Instant::now() < deadline && !reply.contains("reply:over-tcp") {
        let mut l = String::new();
        if reader.read_line(&mut l).unwrap() == 0 {
            break;
        }
        reply.push_str(&l);
    }
    assert!(reply.contains("reply:over-tcp"), "shadow printed {reply:?}");

    let agent_status = agent.wait().unwrap();
    assert!(agent_status.success());
    let shadow_status = shadow.wait().unwrap();
    assert!(shadow_status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_and_errors() {
    let out = cgrun().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = cgrun().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = cgrun().args(["agent", "--", "true"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing --shadow rejected");

    let out = cgrun().args(["local"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing command rejected");
}

#[test]
fn journal_dump_and_recover_subcommands() {
    use crossgrid::sim::SimTime;
    use crossgrid::trace::journal::{Journal, JournalConfig};
    use crossgrid::trace::{Event, EventLog};

    let dir = std::env::temp_dir().join(format!("cgrun-test-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broker.journal");

    // Build a small, internally consistent journal with the library.
    let log = EventLog::new(64);
    log.set_journal(Journal::create(&path, JournalConfig::default()).unwrap());
    log.record(
        SimTime::from_secs(1),
        Event::JobSubmitted {
            job: 0,
            user: "alice".into(),
            interactive: true,
        },
    );
    log.record(
        SimTime::from_secs(1),
        Event::JobAd {
            job: 0,
            jdl: r#"Executable = "viz"; JobType = "interactive"; User = "alice";"#.into(),
            runtime_ns: 5_000_000_000,
        },
    );
    log.record(SimTime::from_secs(2), Event::JobStarted { job: 0 });
    log.record(SimTime::from_secs(7), Event::JobFinished { job: 0 });
    log.journal().unwrap().sync().unwrap();

    // journal-dump: JSONL on stdout, one line per event, exit 0.
    let out = cgrun()
        .args(["journal-dump", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 4);
    assert!(stdout.contains("JobSubmitted"), "{stdout}");
    assert!(stdout.contains("JobFinished"), "{stdout}");

    // recover: per-job summary plus a clean bill of health, exit 0.
    let out = cgrun()
        .args(["recover", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("job 0"), "{stdout}");
    assert!(stdout.contains("Finished"), "{stdout}");
    assert!(stdout.contains("recovery checks: ok"), "{stdout}");

    // Corruption must exit 1 with a typed message, not crash.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    let bad = dir.join("corrupt.journal");
    std::fs::write(&bad, &bytes).unwrap();
    let dump = cgrun()
        .args(["journal-dump", bad.to_str().unwrap()])
        .output()
        .unwrap();
    let rec = cgrun()
        .args(["recover", bad.to_str().unwrap()])
        .output()
        .unwrap();
    for out in [&dump, &rec] {
        assert!(
            matches!(out.status.code(), Some(0 | 1)),
            "corruption must be handled, not crash: {out:?}"
        );
    }
    assert!(
        dump.status.code() == Some(1) || rec.status.code() == Some(1) || {
            // The flip may land in a record length and read as a torn tail.
            String::from_utf8_lossy(&dump.stderr).contains("torn tail")
        },
        "flip was silently ignored: {dump:?} {rec:?}"
    );

    // Usage errors exit 2.
    let out = cgrun().arg("journal-dump").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cgrun()
        .args(["recover", dir.join("absent.journal").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "missing file is an I/O error");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn churn_report_summarizes_membership_transitions() {
    let dir = std::env::temp_dir().join(format!("cgrun-test-churn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("day.jsonl");

    // A hand-written slice of a CG_TRACE_JSONL dump: one site suspected,
    // killed and rejoined (with retries along the way), a second site only
    // suspected, plus a degraded match and unrelated lifecycle noise.
    std::fs::write(
        &path,
        concat!(
            "{\"at_ns\":1000000000,\"seq\":0,\"event\":\"JobSubmitted\",\"job\":1,\"user\":\"u0\",\"interactive\":true}\n",
            "{\"at_ns\":2000000000,\"seq\":1,\"event\":\"QueryRetry\",\"job\":1,\"site\":\"ifca\",\"attempt\":2,\"delay_ns\":500000000}\n",
            "{\"at_ns\":3000000000,\"seq\":2,\"event\":\"LiveQueryTimeout\",\"job\":1,\"site\":\"ifca\",\"attempt\":2}\n",
            "{\"at_ns\":4000000000,\"seq\":3,\"event\":\"SiteSuspect\",\"site\":\"ifca\",\"missed_refreshes\":2,\"failed_queries\":0}\n",
            "{\"at_ns\":5000000000,\"seq\":4,\"event\":\"SiteDead\",\"site\":\"ifca\",\"in_flight\":1}\n",
            "{\"at_ns\":6000000000,\"seq\":5,\"event\":\"SiteSuspect\",\"site\":\"uab\",\"missed_refreshes\":2,\"failed_queries\":1}\n",
            "{\"at_ns\":7000000000,\"seq\":6,\"event\":\"SiteRejoin\",\"site\":\"ifca\",\"down_ns\":3000000000}\n",
            "{\"at_ns\":8000000000,\"seq\":7,\"event\":\"DegradedMatch\",\"job\":2,\"staleness_ns\":120000000000}\n",
        ),
    )
    .unwrap();

    let out = cgrun()
        .args(["churn-report", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "report run: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ifca = stdout.lines().find(|l| l.starts_with("ifca")).unwrap();
    let cols: Vec<&str> = ifca.split_whitespace().collect();
    assert_eq!(
        cols,
        ["ifca", "1", "1", "1", "3.0", "1", "1"],
        "per-site churn row:\n{stdout}"
    );
    let uab = stdout.lines().find(|l| l.starts_with("uab")).unwrap();
    assert!(uab.split_whitespace().nth(1) == Some("1"), "{stdout}");
    let total = stdout.lines().find(|l| l.starts_with("total")).unwrap();
    assert_eq!(
        total.split_whitespace().collect::<Vec<_>>(),
        ["total", "2", "1", "1", "3.0", "1", "1"],
        "{stdout}"
    );
    assert!(
        stdout.contains("degraded matches: 1 (max snapshot staleness 120.0 s)"),
        "{stdout}"
    );

    // A dump with no churn still reports, loudly but cleanly.
    let quiet = dir.join("quiet.jsonl");
    std::fs::write(
        &quiet,
        "{\"at_ns\":1,\"seq\":0,\"event\":\"JobStarted\",\"job\":1}\n",
    )
    .unwrap();
    let out = cgrun()
        .args(["churn-report", quiet.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("no membership churn"),
        "{out:?}"
    );

    // Usage and I/O failures exit 2.
    let out = cgrun().arg("churn-report").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cgrun()
        .args(["churn-report", dir.join("absent.jsonl").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_src_exit_codes_follow_the_findings() {
    let fixture = |name: &str| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("examples/lint")
            .join(name)
    };

    // A clean tree exits 0 and says so.
    let good = cgrun()
        .args(["lint-src", fixture("l4_codec/good").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(good.status.code(), Some(0), "clean tree: {good:?}");
    assert!(String::from_utf8_lossy(&good.stdout).contains("0 error(s), 0 warning(s)"));

    // Error-severity findings exit 1 and carry their codes.
    let bad = cgrun()
        .args(["lint-src", fixture("l2_locks").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1), "errors must fail: {bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("L201"), "missing L201:\n{stdout}");
    assert!(stdout.contains("L202"), "missing L202:\n{stdout}");

    // Warnings alone pass by default but fail under --check (the CI gate).
    let warn = cgrun()
        .args(["lint-src", fixture("w5_allow").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(warn.status.code(), Some(0), "warnings alone: {warn:?}");
    let strict = cgrun()
        .args(["lint-src", "--check", fixture("w5_allow").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        strict.status.code(),
        Some(1),
        "--check escalates: {strict:?}"
    );
    assert!(String::from_utf8_lossy(&strict.stdout).contains("W501"));

    // Usage errors exit 2.
    let usage = cgrun().args(["lint-src", "--bogus"]).output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
}
