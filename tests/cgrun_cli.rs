//! Integration tests of the `cgrun` CLI binary: real processes, real pipes,
//! real TCP.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn cgrun() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cgrun"))
}

#[test]
fn local_mode_round_trips_stdio_and_exit_code() {
    let mut child = cgrun()
        .args(["local", "--", "sh", "-c", "read x; echo got:$x; exit 5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"ping\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), "got:ping\n");
    assert_eq!(out.status.code(), Some(5), "exit code propagates");
}

#[test]
fn local_mode_reliable_flag_spools_to_disk() {
    let spool = std::env::temp_dir().join(format!("cgrun-test-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let out = cgrun()
        .args([
            "local",
            "--reliable",
            spool.to_str().unwrap(),
            "--",
            "echo",
            "durable",
        ])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), "durable\n");
    assert!(out.status.success());
    // Spool files were created (agent stdout spool at least).
    let entries: Vec<_> = std::fs::read_dir(&spool).unwrap().collect();
    assert!(!entries.is_empty(), "spool dir should contain files");
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn shadow_and_agent_as_separate_processes() {
    let dir = std::env::temp_dir().join(format!("cgrun-test-sep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let secret_path = dir.join("secret");
    std::fs::write(&secret_path, b"cgrun-integration-secret").unwrap();

    // Shadow process.
    let mut shadow = cgrun()
        .args(["shadow", "--secret-file", secret_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Parse "shadow listening on 0.0.0.0:PORT" from its stdout.
    let mut reader = BufReader::new(shadow.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let port: u16 = line
        .rsplit(':')
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("no port in {line:?}"));
    // Swallow the hint line.
    let mut hint = String::new();
    reader.read_line(&mut hint).unwrap();

    // Agent process wrapping `cat`-like echo.
    let mut agent = cgrun()
        .args([
            "agent",
            "--shadow",
            &format!("127.0.0.1:{port}"),
            "--secret-file",
            secret_path.to_str().unwrap(),
            "--",
            "sh",
            "-c",
            "read a; echo reply:$a",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Type into the shadow; expect the job's reply on the shadow's stdout.
    shadow
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"over-tcp\n")
        .unwrap();
    let mut reply = String::new();
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline && !reply.contains("reply:over-tcp") {
        let mut l = String::new();
        if reader.read_line(&mut l).unwrap() == 0 {
            break;
        }
        reply.push_str(&l);
    }
    assert!(reply.contains("reply:over-tcp"), "shadow printed {reply:?}");

    let agent_status = agent.wait().unwrap();
    assert!(agent_status.success());
    let shadow_status = shadow.wait().unwrap();
    assert!(shadow_status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_and_errors() {
    let out = cgrun().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = cgrun().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = cgrun().args(["agent", "--", "true"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing --shadow rejected");

    let out = cgrun().args(["local"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing command rejected");
}
