//! Helpers shared by the integration-test binaries.
//!
//! Each binary that declares `mod common;` compiles its own copy and uses
//! a subset of these helpers, hence the file-wide dead-code allowance.
#![allow(dead_code)]

use crossgrid::broker::JobState;
use crossgrid::trace::replay::{Bucket, Phase};

/// The broker job table's coarse disposition bucket (the granularity of
/// [`Phase::bucket`]): terminal-outcome comparison across crashes, shard
/// layouts and thread counts happens here.
pub fn bucket_of(state: &JobState) -> Bucket {
    match state {
        JobState::Done => Bucket::Done,
        JobState::Failed { .. } => Bucket::Errored,
        JobState::Running { .. } => Bucket::Running,
        JobState::BrokerQueued => Bucket::Queued,
        _ => Bucket::Pending,
    }
}

/// The [`Phase`] a live job-table state projects to — used to lift a job
/// table into a [`crossgrid::trace::replay::ReplayState`] so the recovery
/// invariants can compare it against the event stream's fold.
pub fn phase_of(state: &JobState) -> Phase {
    match state {
        JobState::Submitted => Phase::Submitted,
        JobState::Matching => Phase::Matching,
        JobState::Scheduled { .. } => Phase::Dispatched,
        JobState::BrokerQueued => Phase::Queued,
        JobState::Running { .. } => Phase::Running,
        JobState::Done => Phase::Finished,
        JobState::Failed { .. } => Phase::Failed,
    }
}
