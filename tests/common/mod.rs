//! Helpers shared by the integration-test binaries.
//!
//! Each binary that declares `mod common;` compiles its own copy and uses
//! a subset of these helpers, hence the file-wide dead-code allowance.
#![allow(dead_code)]

use crossgrid::broker::JobState;
use crossgrid::site::BackendSpec;
use crossgrid::trace::replay::{Bucket, Phase};

/// Every execution backend the conformance contract covers: the sim LRMS,
/// the in-process thread pool, and the external-process runner. Suites
/// iterating this list prove a property backend-by-backend.
pub fn all_backend_specs() -> Vec<BackendSpec> {
    vec![
        BackendSpec::Sim,
        BackendSpec::ThreadPool { threads: 2 },
        // `true` exists on every POSIX box; the runner tolerates a failed
        // spawn anyway (it only feeds real-exec counters, never the sim).
        BackendSpec::Process {
            program: "true".into(),
        },
    ]
}

/// Cores available to thread-sweep gates, honoring the `CG_CHECK_CORES`
/// override the check binaries use. Sweeps needing more should skip
/// (not fail) below their floor.
pub fn check_cores() -> usize {
    std::env::var("CG_CHECK_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The broker job table's coarse disposition bucket (the granularity of
/// [`Phase::bucket`]): terminal-outcome comparison across crashes, shard
/// layouts and thread counts happens here.
pub fn bucket_of(state: &JobState) -> Bucket {
    match state {
        JobState::Done => Bucket::Done,
        JobState::Failed { .. } => Bucket::Errored,
        JobState::Running { .. } => Bucket::Running,
        JobState::BrokerQueued => Bucket::Queued,
        _ => Bucket::Pending,
    }
}

/// The [`Phase`] a live job-table state projects to — used to lift a job
/// table into a [`crossgrid::trace::replay::ReplayState`] so the recovery
/// invariants can compare it against the event stream's fold.
pub fn phase_of(state: &JobState) -> Phase {
    match state {
        JobState::Submitted => Phase::Submitted,
        JobState::Matching => Phase::Matching,
        JobState::Scheduled { .. } => Phase::Dispatched,
        JobState::BrokerQueued => Phase::Queued,
        JobState::Running { .. } => Phase::Running,
        JobState::Done => Phase::Finished,
        JobState::Failed { .. } => Phase::Failed,
    }
}
