//! Policy conformance suite: every registered [`PolicyKind`] must satisfy
//! the selection contracts whatever the grid or job stream —
//!
//! 1. a dispatched job lands only inside its matched candidate set;
//! 2. the parallel matcher's outcome vector is bit-identical at every
//!    worker-thread count from 1 through 8;
//! 3. NaN scores are discarded (never preferred) and winners are drawn
//!    from the exact `total_cmp`-equal tie group of the maximum score;
//! 4. crash-recovery replay under a non-default policy lands every job in
//!    the same terminal bucket as the uncrashed run.
//!
//! Grids, signals and job streams are generated from property-test seeds,
//! so each case is a fresh random world that reproduces deterministically.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crossgrid::broker::{filter_candidates, Candidate};
use crossgrid::broker::{
    select_detailed_with, BrokerConfig, CrossBroker, JobId, JobRecord, JobState, MatchOutcome,
    MatchRequest, ParallelMatcher, PolicyKind, PolicySignals, ShardedJobTable, SiteSignals,
    DEFAULT_SHARDS,
};
use crossgrid::jdl::{Ad, JobDescription};
use crossgrid::net::{FaultSchedule, Link, LinkProfile};
use crossgrid::prelude::*;
use crossgrid::sim::SimRng;
use crossgrid::site::{MembershipState, Policy, SiteConfig};
use crossgrid::trace::journal::{open_journal, Journal, JournalConfig};
use crossgrid::trace::replay::Bucket;
use crossgrid::trace::CrashPlan;
use proptest::prelude::*;

mod common;
use common::bucket_of;

/// A random grid: `n` sites with random free-CPU counts (zero included)
/// and mixed batch-queue acceptance.
fn random_ads(seed: u64, n: usize) -> Vec<(usize, Ad)> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            let mut ad = Ad::new();
            ad.set_str("Site", format!("s{i}"))
                .set_int("FreeCpus", rng.index(5) as i64)
                .set_bool("AcceptsQueued", rng.chance(0.7));
            (i, ad)
        })
        .collect()
}

/// Random per-site signals: queue depths, forecasts, RTTs and lease-failure
/// streaks, all finite (NaN enters only through job ranks).
fn random_signals(seed: u64, n: usize) -> PolicySignals {
    let mut rng = SimRng::new(seed ^ 0x5167_4A15);
    let mut signals = PolicySignals::new();
    for i in 0..n {
        signals.set(
            i,
            SiteSignals {
                queue_depth: rng.index(6) as i64,
                queue_forecast: rng.f64() * 5.0,
                rtt_s: rng.f64() * 0.05,
                lease_failures: rng.index(3) as u32,
                staleness_s: rng.f64() * 600.0,
            },
        );
    }
    signals
}

/// A random job stream: interactive MPI jobs of random width racing batch
/// singletons, with a sprinkling of per-job JDL `SelectionPolicy`
/// overrides (valid and unknown spellings both).
fn random_requests(seed: u64, n: usize) -> Vec<MatchRequest> {
    let mut rng = SimRng::new(seed ^ 0x4A0B);
    (0..n)
        .map(|i| {
            let user = format!("u{}", rng.index(5));
            let mut src = if rng.chance(0.5) {
                let nodes = 1 + rng.index(3);
                format!(
                    r#"Executable = "iapp"; JobType = {{"interactive","mpich-p4"}};
                       NodeNumber = {nodes}; User = "{user}";"#
                )
            } else {
                format!(r#"Executable = "bapp"; JobType = "batch"; User = "{user}";"#)
            };
            if rng.chance(0.2) {
                let name = *rng.choose(&[
                    "free-cpus-rank",
                    "queue-forecast",
                    "network-proximity",
                    "lease-backoff",
                    "not-a-policy", // unknown: must fall back, never crash
                ]);
                src.push_str(&format!(r#" SelectionPolicy = "{name}";"#));
            }
            MatchRequest {
                id: JobId(i as u64),
                job: JobDescription::parse(&src).unwrap(),
            }
        })
        .collect()
}

fn run(
    kind: PolicyKind,
    seed: u64,
    requests: &[MatchRequest],
    sites: usize,
    threads: usize,
) -> (Vec<(JobId, MatchOutcome)>, BTreeMap<u64, String>) {
    let log = EventLog::new(requests.len() * 4 + sites + 16);
    let table: ShardedJobTable<JobRecord> = ShardedJobTable::new(DEFAULT_SHARDS);
    let engine = ParallelMatcher::new(random_ads(seed, sites), seed)
        .with_policy(kind)
        .with_signals(random_signals(seed, sites));
    let outcomes = engine.run(requests, threads, &log, &table);
    let buckets = table
        .snapshot()
        .iter()
        .map(|(id, r)| (id.0, format!("{:?}", bucket_of(&r.state))))
        .collect();
    (outcomes, buckets)
}

proptest! {
    /// Contract 1: whatever the policy, a dispatched job's site is a
    /// member of its matched candidate set, queued jobs are batch, and
    /// no-resources jobs are interactive.
    #[test]
    fn dispatches_stay_inside_the_matched_candidate_set(
        seed in any::<u64>(),
        sites in 3usize..24,
        jobs in 1usize..80,
    ) {
        let requests = random_requests(seed, jobs);
        let ads = random_ads(seed, sites);
        let sets: Vec<BTreeSet<usize>> = requests
            .iter()
            .map(|req| {
                filter_candidates(&req.job, &ads, req.job.is_interactive())
                    .into_iter()
                    .map(|c| c.site_index)
                    .collect()
            })
            .collect();
        for kind in PolicyKind::ALL {
            let (outcomes, _) = run(kind, seed, &requests, sites, 1);
            for (i, (id, outcome)) in outcomes.iter().enumerate() {
                match outcome {
                    MatchOutcome::Dispatched { site_index, .. } => prop_assert!(
                        sets[i].contains(site_index),
                        "{}: job {id:?} dispatched outside its candidate set",
                        kind.name()
                    ),
                    MatchOutcome::Queued => prop_assert!(!requests[i].job.is_interactive()),
                    MatchOutcome::NoResources => prop_assert!(requests[i].job.is_interactive()),
                }
            }
        }
    }

    /// Contract 2: thread count is invisible in the outcome vector and in
    /// the per-job terminal buckets, for every policy.
    #[test]
    fn thread_counts_one_through_eight_are_bit_identical(
        seed in any::<u64>(),
        sites in 3usize..20,
        jobs in 1usize..60,
    ) {
        let requests = random_requests(seed, jobs);
        for kind in PolicyKind::ALL {
            let baseline = run(kind, seed, &requests, sites, 1);
            for threads in 2usize..=8 {
                let sharded = run(kind, seed, &requests, sites, threads);
                prop_assert_eq!(
                    &sharded.0, &baseline.0,
                    "{}: outcomes diverged at {} threads", kind.name(), threads
                );
                prop_assert_eq!(
                    &sharded.1, &baseline.1,
                    "{}: buckets diverged at {} threads", kind.name(), threads
                );
            }
        }
    }

    /// Contract 3: `select_detailed_with` under every policy discards
    /// exactly the NaN-scored candidates, and the winner's score is
    /// `total_cmp`-equal to the maximum across the comparable ones.
    #[test]
    fn nan_scores_are_discarded_and_winners_come_from_the_exact_tie_group(
        seed in any::<u64>(),
        ranks in prop::collection::vec(
            prop::sample::select(vec![
                f64::NAN, f64::INFINITY, f64::NEG_INFINITY,
                -1.5, 0.0, 0.5, 1.0, 1.0, 2.0, 2.0, 7.25,
            ]),
            1usize..12,
        ),
    ) {
        let candidates: Vec<Candidate> = ranks
            .iter()
            .enumerate()
            .map(|(i, &rank)| Candidate {
                site_index: i,
                site: format!("s{i}"),
                rank,
                free_cpus: 1 + (i as i64 % 4),
            })
            .collect();
        let signals = random_signals(seed, candidates.len());
        for kind in PolicyKind::ALL {
            let policy = kind.policy();
            let scores: Vec<f64> = candidates
                .iter()
                .map(|c| policy.score(c, &signals.get(c.site_index)))
                .collect();
            let mut rng = SimRng::new(seed);
            let selection =
                select_detailed_with(policy, &signals, &candidates, &mut rng);
            // Finite signals: a score is NaN exactly when the rank is.
            let nan_sites: BTreeSet<usize> = scores
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_nan())
                .map(|(i, _)| i)
                .collect();
            let discarded: BTreeSet<usize> = selection
                .nan_discarded
                .iter()
                .map(|c| c.site_index)
                .collect();
            prop_assert_eq!(&discarded, &nan_sites, "{}", kind.name());
            let best = scores.iter().copied().filter(|s| !s.is_nan()).reduce(f64::max);
            match (best, &selection.winner) {
                (None, None) => {}
                (Some(best), Some(winner)) => {
                    let ties: BTreeSet<usize> = scores
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.total_cmp(&best).is_eq())
                        .map(|(i, _)| i)
                        .collect();
                    prop_assert!(
                        ties.contains(&winner.site_index),
                        "{}: winner outside the exact tie group", kind.name()
                    );
                }
                (best, winner) => prop_assert!(
                    false,
                    "{}: winner {:?} but best comparable score {:?}",
                    kind.name(), winner, best
                ),
            }
            // Same seed, same inputs: the draw is reproducible.
            let mut rng2 = SimRng::new(seed);
            let again = select_detailed_with(policy, &signals, &candidates, &mut rng2);
            prop_assert_eq!(
                again.winner.as_ref().map(|c| c.site_index),
                selection.winner.as_ref().map(|c| c.site_index)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Contract 4: crash-recovery replay under a non-default policy.
// ---------------------------------------------------------------------------

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cg-polconf-{}-{name}.journal", std::process::id()));
    p
}

fn policy_config(kind: PolicyKind) -> BrokerConfig {
    BrokerConfig {
        max_resubmissions: 10,
        selection_policy: kind,
        ..BrokerConfig::default()
    }
}

fn world() -> (Vec<SiteHandle>, Link) {
    let handles = ["alpha", "beta"]
        .iter()
        .map(|name| {
            let site = Site::new(SiteConfig {
                name: (*name).into(),
                nodes: 2,
                policy: Policy::Fifo,
                ..SiteConfig::default()
            });
            SiteHandle {
                site,
                broker_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
                ui_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
            }
        })
        .collect();
    (
        handles,
        Link::with_faults(LinkProfile::wan_mds(), FaultSchedule::none()),
    )
}

fn drive(sim: &mut Sim, broker: &CrossBroker) {
    let exclusive = || {
        JobDescription::parse(
            r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "exclusive";
               User = "alice"; SelectionPolicy = "queue-forecast";"#,
        )
        .unwrap()
    };
    for _ in 0..2 {
        broker.submit(sim, exclusive(), SimDuration::from_secs(10));
    }
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(45), move |sim| {
        b.submit(sim, exclusive(), SimDuration::from_secs(10));
    });
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(120), move |sim| {
        let batch =
            JobDescription::parse(r#"Executable = "bapp"; JobType = "batch"; User = "bob";"#)
                .unwrap();
        b.submit(sim, batch, SimDuration::from_secs(20));
    });
}

fn journaled_run(path: &PathBuf, kind: PolicyKind, crash_after: Option<u64>) -> (u64, bool) {
    let _ = std::fs::remove_file(path);
    let mut sim = Sim::new(11);
    let (handles, mds) = world();
    let broker = CrossBroker::new(&mut sim, handles, mds, policy_config(kind));
    let log = broker.event_log();
    log.set_journal(Journal::create(path, JournalConfig::default()).unwrap());
    if let Some(k) = crash_after {
        log.arm_crash(CrashPlan { after_event_seq: k });
    }
    drive(&mut sim, &broker);
    sim.run_until(SimTime::from_secs(600));
    if let Some(j) = log.journal() {
        j.sync().unwrap();
    }
    (log.recorded(), log.crashed())
}

/// The kill-point sweep under a non-default engine policy (and a per-job
/// JDL override on every interactive job): recovery must land every
/// journaled job in the bucket of the uncrashed run. A stride keeps the
/// sweep affordable; the full every-event sweep lives in `crash_recovery`.
#[test]
fn recovery_under_non_default_policy_reproduces_the_uncrashed_buckets() {
    let kind = PolicyKind::QueueForecast;
    let base = tmp("base");
    let (total, crashed) = journaled_run(&base, kind, None);
    assert!(!crashed);
    assert!(total > 15, "reference scenario too small: {total} events");

    let baseline = open_journal(&base).unwrap().replay_state().unwrap();
    assert_eq!(baseline.jobs.len(), 4);
    let mut base_buckets: BTreeMap<u64, Bucket> = BTreeMap::new();
    for (id, rj) in &baseline.jobs {
        assert!(
            rj.phase.is_terminal(),
            "job {id} not terminal: {:?}",
            rj.phase
        );
        base_buckets.insert(*id, rj.phase.bucket());
    }

    let crash = tmp("crash");
    for k in (0..total).step_by(5) {
        let (_, crashed) = journaled_run(&crash, kind, Some(k));
        assert!(crashed, "kill point {k} of {total} must fire");
        let loaded = open_journal(&crash).unwrap();
        let expected = loaded.replay_state().unwrap();
        let mut sim = Sim::new(9_000 + k);
        let (handles, mds) = world();
        let (broker, report) =
            CrossBroker::recover(&mut sim, handles, mds, policy_config(kind), &loaded).unwrap();
        sim.run_until(report.crash_at + SimDuration::from_secs(600));
        assert!(
            report.violations.is_empty(),
            "k={k}: recovery invariants violated: {:?}",
            report.violations
        );
        for (id, rj) in &expected.jobs {
            let state = broker.record(JobId(*id)).state;
            assert!(
                matches!(state, JobState::Done | JobState::Failed { .. }),
                "k={k}: job {id} never reached a terminal state: {state:?}"
            );
            let want = if !rj.phase.is_terminal() && (rj.jdl.is_none() || rj.runtime_ns.is_none()) {
                Bucket::Errored
            } else {
                base_buckets[id]
            };
            assert_eq!(
                bucket_of(&state),
                want,
                "k={k}: job {id} diverged from the uncrashed run: {state:?}"
            );
        }
    }
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&crash);
}

/// Builds a world where alpha earns a lease-failure streak the honest way:
/// a job pinned to alpha selects it while the link is still up, then the
/// GRAM submission pipeline dies when alpha's outage opens at t = 4 s —
/// `GramEvent::Failed` books one failure against the `lease-backoff`
/// signal. Beta exists so the grid is not degenerate; the pin keeps the
/// resubmission from landing anywhere.
fn streak_world() -> (Sim, CrossBroker) {
    let mut sim = Sim::new(11);
    let outage =
        FaultSchedule::from_windows(vec![(SimTime::from_secs(4), SimTime::from_secs(1_000))]);
    let handles = ["alpha", "beta"]
        .iter()
        .map(|name| {
            let site = Site::new(SiteConfig {
                name: (*name).into(),
                nodes: 2,
                policy: Policy::Fifo,
                ..SiteConfig::default()
            });
            let faults = if *name == "alpha" {
                outage.clone()
            } else {
                FaultSchedule::none()
            };
            SiteHandle {
                site,
                broker_link: Link::with_faults(LinkProfile::campus(), faults.clone()),
                ui_link: Link::with_faults(LinkProfile::campus(), faults),
            }
        })
        .collect();
    let mds = Link::with_faults(LinkProfile::wan_mds(), FaultSchedule::none());
    let broker = CrossBroker::new(
        &mut sim,
        handles,
        mds,
        policy_config(PolicyKind::LeaseBackoff),
    );
    let pinned = JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "exclusive";
           User = "carol"; Requirements = other.Site == "alpha";"#,
    )
    .unwrap();
    broker.submit(&mut sim, pinned, SimDuration::from_secs(5));
    sim.run_until(SimTime::from_secs(60));
    (sim, broker)
}

/// Contract for the `lease-backoff` input signal: a `Dead` obituary wipes
/// the site's failure streak (the obituary supersedes per-dispatch
/// bookkeeping), while `Suspect` alone leaves it untouched.
#[test]
fn dead_obituary_resets_the_lease_backoff_streak() {
    let (mut sim, broker) = streak_world();
    assert_eq!(
        broker.lease_failure_streak(0),
        1,
        "the failed submission must have extended alpha's streak"
    );
    let index = broker.index();
    for _ in 0..3 {
        index.report_query(&mut sim, 0, false);
    }
    assert_eq!(index.membership_state(0), MembershipState::Suspect);
    assert_eq!(
        broker.lease_failure_streak(0),
        1,
        "Suspect alone must not wipe the streak"
    );
    for _ in 0..3 {
        index.report_query(&mut sim, 0, false);
    }
    assert_eq!(index.membership_state(0), MembershipState::Dead);
    assert_eq!(
        broker.lease_failure_streak(0),
        0,
        "the Dead obituary must reset the streak"
    );
}

/// The rejoin side of the same contract: a streak earned before the
/// outage says nothing about the recovered site, so `Rejoined` resets it
/// and `lease-backoff` stops steering work away from a healthy member.
#[test]
fn rejoin_resets_the_lease_backoff_streak() {
    let (mut sim, broker) = streak_world();
    let index = broker.index();
    for _ in 0..3 {
        index.report_query(&mut sim, 0, false);
    }
    assert_eq!(index.membership_state(0), MembershipState::Suspect);
    assert_eq!(broker.lease_failure_streak(0), 1);
    index.report_query(&mut sim, 0, true);
    assert_eq!(index.membership_state(0), MembershipState::Rejoined);
    assert_eq!(
        broker.lease_failure_streak(0),
        0,
        "the rejoin must reset the streak"
    );
}
