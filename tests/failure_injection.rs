//! Failure-injection integration tests: dead links, mid-pipeline outages,
//! agent death, and an information-system blackout.

use crossgrid::jdl::JobDescription;
use crossgrid::net::{FaultSchedule, Link, LinkProfile};
use crossgrid::prelude::*;
use crossgrid::site::{LocalJobId, Policy, SiteConfig};

fn one_site_broker(
    sim: &mut Sim,
    site_faults: FaultSchedule,
    mds_faults: FaultSchedule,
) -> (CrossBroker, Site) {
    let site = Site::new(SiteConfig {
        name: "only".into(),
        nodes: 2,
        policy: Policy::Fifo,
        ..SiteConfig::default()
    });
    let handles = vec![SiteHandle {
        site: site.clone(),
        broker_link: Link::with_faults(LinkProfile::campus(), site_faults.clone()),
        ui_link: Link::with_faults(LinkProfile::campus(), site_faults),
    }];
    let broker = CrossBroker::new(
        sim,
        handles,
        Link::with_faults(LinkProfile::wan_mds(), mds_faults),
        BrokerConfig::default(),
    );
    (broker, site)
}

fn exclusive_job() -> JobDescription {
    JobDescription::parse(
        r#"Executable = "i"; JobType = "interactive"; MachineAccess = "exclusive"; User = "u";"#,
    )
    .unwrap()
}

#[test]
fn mds_blackout_degrades_to_the_last_snapshot_while_fresh() {
    use crossgrid::trace::Event;

    let mut sim = Sim::new(1);
    let blackout = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(3_600))]);
    let (broker, _) = one_site_broker(&mut sim, FaultSchedule::none(), blackout);
    let id = broker.submit(&mut sim, exclusive_job(), SimDuration::from_secs(60));
    sim.run_until(SimTime::from_secs(600));
    // The broker's own snapshot is fresh, so matchmaking degrades to it
    // instead of failing the job: the site link is healthy and the job
    // completes on stale-but-bounded information.
    assert!(
        matches!(broker.record(id).state, JobState::Done),
        "degraded match must carry the job: {:?}",
        broker.record(id).state
    );
    let events = broker.event_log().snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::DegradedMatch { job, .. } if job == id.0)),
        "the fallback must be announced in the trace"
    );
}

#[test]
fn mds_blackout_beyond_the_staleness_bound_fails_cleanly() {
    let mut sim = Sim::new(1);
    let blackout = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(3_600))]);
    let site = Site::new(SiteConfig {
        name: "only".into(),
        nodes: 2,
        policy: Policy::Fifo,
        ..SiteConfig::default()
    });
    let handles = vec![SiteHandle {
        site: site.clone(),
        broker_link: Link::new(LinkProfile::campus()),
        ui_link: Link::new(LinkProfile::campus()),
    }];
    // A snapshot older than the trust bound is no basis for matchmaking.
    let broker = CrossBroker::new(
        &mut sim,
        handles,
        Link::with_faults(LinkProfile::wan_mds(), blackout),
        BrokerConfig {
            degraded_max_staleness: SimDuration::from_secs(50),
            ..BrokerConfig::default()
        },
    );
    let broker2 = broker.clone();
    let id = std::rc::Rc::new(std::cell::RefCell::new(None));
    let id2 = std::rc::Rc::clone(&id);
    // Submit at t=100: the initial snapshot (t=0) is 100 s old, past the
    // 50 s bound, and the next index refresh has not happened yet.
    sim.schedule_at(SimTime::from_secs(100), move |sim| {
        *id2.borrow_mut() = Some(broker2.submit(sim, exclusive_job(), SimDuration::from_secs(60)));
    });
    sim.run_until(SimTime::from_secs(250));
    let id = id.borrow().unwrap();
    match broker.record(id).state {
        JobState::Failed { reason } => assert!(
            reason.contains("information system"),
            "wrong failure: {reason}"
        ),
        other => panic!("expected failure, got {other:?}"),
    }
    assert_eq!(broker.stats().failed, 1);
}

#[test]
fn site_link_outage_during_submission_fails_the_job() {
    let mut sim = Sim::new(2);
    // The site link dies 2 s in — during the GRAM pipeline — and stays dead.
    let outage =
        FaultSchedule::from_windows(vec![(SimTime::from_secs(2), SimTime::from_secs(10_000))]);
    let (broker, _) = one_site_broker(&mut sim, outage, FaultSchedule::none());
    let id = broker.submit(&mut sim, exclusive_job(), SimDuration::from_secs(60));
    sim.run_until(SimTime::from_secs(2_000));
    assert!(
        matches!(broker.record(id).state, JobState::Failed { .. }),
        "{:?}",
        broker.record(id).state
    );
}

#[test]
fn transient_outage_before_submission_does_not_break_later_jobs() {
    let mut sim = Sim::new(3);
    // Outage covers t=0–60 s; a job submitted at t=120 must work normally.
    let outage = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(60))]);
    let (broker, _) = one_site_broker(&mut sim, outage, FaultSchedule::none());
    let early = broker.submit(&mut sim, exclusive_job(), SimDuration::from_secs(30));
    sim.run_until(SimTime::from_secs(120));
    let broker2 = broker.clone();
    let late_id = std::rc::Rc::new(std::cell::RefCell::new(None));
    let late_id2 = std::rc::Rc::clone(&late_id);
    sim.schedule_now(move |sim| {
        *late_id2.borrow_mut() =
            Some(broker2.submit(sim, exclusive_job(), SimDuration::from_secs(30)));
    });
    sim.run_until(SimTime::from_secs(2_000));
    let late = late_id.borrow().unwrap();
    assert!(
        matches!(broker.record(late).state, JobState::Done),
        "late job must succeed: {:?}",
        broker.record(late).state
    );
    // The early one failed (its pipeline hit the outage) — but cleanly.
    assert!(matches!(
        broker.record(early).state,
        JobState::Failed { .. } | JobState::Done
    ));
}

#[test]
fn agent_killed_by_site_is_removed_from_the_pool() {
    let mut sim = Sim::new(4);
    let (broker, site) = one_site_broker(&mut sim, FaultSchedule::none(), FaultSchedule::none());
    broker.predeploy_agent(&mut sim, 0, |_, ok| assert!(ok));
    sim.run_until(SimTime::from_secs(300));
    assert_eq!(broker.agent_count(), 1);
    assert_eq!(broker.free_interactive_slots(), 1);

    // The site drains the agent's carrier job (id 0: first submitted).
    let killed_at = sim.now();
    assert!(site.lrms().kill(&mut sim, LocalJobId(0), "maintenance"));
    sim.run_until(killed_at + SimDuration::from_secs(10));
    assert_eq!(broker.agent_count(), 0, "dead agent pruned immediately");
    assert_eq!(broker.free_interactive_slots(), 0);

    // §5.2: "new agents will be submitted when possible" — the broker
    // proactively redeploys a replacement after its redeploy delay.
    sim.run_until(killed_at + SimDuration::from_secs(300));
    assert_eq!(broker.agent_count(), 1, "replacement agent redeployed");
    assert!(broker.stats().agents_deployed >= 2);

    // A shared job arriving now uses the replacement directly.
    let shared = JobDescription::parse(
        r#"Executable = "i"; JobType = "interactive"; MachineAccess = "shared";
           PerformanceLoss = 10; User = "u";"#,
    )
    .unwrap();
    let id = broker.submit(&mut sim, shared, SimDuration::from_secs(30));
    sim.run_until(killed_at + SimDuration::from_secs(1_200));
    assert!(
        matches!(broker.record(id).state, JobState::Done),
        "{:?}",
        broker.record(id).state
    );
}

#[test]
fn agent_redeploy_breaker_stops_crash_loops() {
    let mut sim = Sim::new(6);
    let (broker, site) = one_site_broker(&mut sim, FaultSchedule::none(), FaultSchedule::none());
    broker.predeploy_agent(&mut sim, 0, |_, ok| assert!(ok));
    sim.run_until(SimTime::from_secs(300));

    // A hostile site keeps killing whatever glide-in lands on it.
    let lrms = site.lrms().clone();
    fn killer(sim: &mut Sim, lrms: crossgrid::site::BackendHandle, next_id: u64) {
        sim.schedule_in(SimDuration::from_secs(60), move |sim| {
            // Kill any running carrier (ids increase with each redeploy).
            for id in 0..=next_id {
                lrms.kill(sim, LocalJobId(id), "hostile site");
            }
            if next_id < 40 {
                killer(sim, lrms, next_id + 1);
            }
        });
    }
    killer(&mut sim, lrms, 0);
    sim.run_until(SimTime::from_secs(20_000));
    // The breaker (budget 3) stops the loop: deployments are bounded, not 40.
    let deployed = broker.stats().agents_deployed;
    assert!(
        (2..=6).contains(&deployed),
        "redeploy breaker must bound deployments, got {deployed}"
    );
    assert_eq!(broker.agent_count(), 0);
}

#[test]
fn reliable_streaming_model_survives_what_fast_loses() {
    // The §4 contrast at the model level: same outage, both modes.
    use crossgrid::console::{reliable_deliver, ReliableOutcome, RetryPolicy};
    use crossgrid::net::Dir;

    let outage = FaultSchedule::from_windows(vec![(SimTime::from_nanos(1), SimTime::from_secs(8))]);

    // Fast mode: a plain send during the outage is simply lost.
    let mut sim = Sim::new(5);
    let link = Link::with_faults(LinkProfile::campus(), outage.clone());
    let fast_result = std::rc::Rc::new(std::cell::RefCell::new(None));
    {
        let r = std::rc::Rc::clone(&fast_result);
        sim.schedule_at(SimTime::from_secs(1), move |sim| {
            let link2 = link.clone();
            link2.send(sim, Dir::AToB, 1_000, move |_, res| {
                *r.borrow_mut() = Some(res.is_err());
            });
        });
    }
    sim.run();
    assert_eq!(
        *fast_result.borrow(),
        Some(true),
        "fast mode loses the data"
    );

    // Reliable mode: spooled and retried until the link returns.
    let mut sim = Sim::new(5);
    let link = Link::with_faults(LinkProfile::campus(), outage);
    let outcome = std::rc::Rc::new(std::cell::RefCell::new(None));
    {
        let o = std::rc::Rc::clone(&outcome);
        sim.schedule_at(SimTime::from_secs(1), move |sim| {
            reliable_deliver(
                sim,
                link.clone(),
                Dir::AToB,
                1_000,
                RetryPolicy {
                    interval: SimDuration::from_secs(2),
                    max_retries: 30,
                },
                move |_, out| *o.borrow_mut() = Some(out),
            );
        });
    }
    sim.run();
    let got = outcome.borrow().unwrap();
    match got {
        ReliableOutcome::Delivered { retries } => assert!(retries >= 1),
        ReliableOutcome::Aborted => panic!("reliable mode must deliver, got Aborted"),
    }
}

#[test]
fn agent_death_during_dispatch_resubmits_with_backoff() {
    use crossgrid::trace::Event;

    let mut sim = Sim::new(11);
    let (broker, site) = one_site_broker(&mut sim, FaultSchedule::none(), FaultSchedule::none());
    broker.predeploy_agent(&mut sim, 0, |_, ok| assert!(ok));
    sim.run_until(SimTime::from_secs(300));
    assert_eq!(broker.agent_count(), 1);

    // Submit a shared job, then kill the agent's carrier inside the ~3.9 s
    // delegation window — the sandbox arrives at a dead agent. The broker
    // must treat that as a race (resubmit with backoff), not a job failure.
    let submitted_at = sim.now();
    let shared = JobDescription::parse(
        r#"Executable = "i"; JobType = "interactive"; MachineAccess = "shared";
           PerformanceLoss = 10; User = "u";"#,
    )
    .unwrap();
    let id = broker.submit(&mut sim, shared, SimDuration::from_secs(30));
    let lrms = site.lrms().clone();
    sim.schedule_at(submitted_at + SimDuration::from_millis(500), move |sim| {
        assert!(lrms.kill(sim, LocalJobId(0), "drained mid-dispatch"));
    });
    sim.run_until(submitted_at + SimDuration::from_secs(1_800));

    assert!(
        matches!(broker.record(id).state, JobState::Done),
        "job must survive the dispatch race: {:?}",
        broker.record(id).state
    );
    assert!(
        broker.stats().resubmissions >= 1,
        "death during dispatch must go through resubmission"
    );

    let events = broker.event_log().snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::JobBackoff { job, .. } if job == id.0)),
        "resubmission must be paced by a JobBackoff event"
    );
    let violations = check_invariants(&events);
    assert!(violations.is_empty(), "{violations:?}");
}
