//! Model-checked interleavings of the broker's two hot critical sections —
//! always-on mirrors of the algorithms, explored exhaustively by the
//! `loom` deterministic-schedule shim.
//!
//! These tests run in tier-1 (no special cfg): they model the *algorithms*
//! — gap-free seq allocation as `EventLog` implements it, and per-shard
//! locking as `ShardedJobTable` implements it — with the shim's own
//! primitives, so every schedule of the critical sections is visited. The
//! companion `loom_model.rs` tests in `cg-trace` and `crossbroker` run the
//! *real types* under `--cfg cg_loom` (CI's model-check job).
//!
//! Two kinds of assertion matter here:
//! - the correct algorithm holds its invariant under EVERY interleaving;
//! - a deliberately broken variant (two-phase read-then-write allocation)
//!   is CAUGHT — proving the explorer actually distinguishes schedules
//!   rather than replaying one.

use loom::sync::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The `EventLog` allocation algorithm: each writer takes the lock once and
/// allocates its whole contiguous batch under it (`record_many`). Under
/// every interleaving, seqs must come out gap-free, duplicate-free, and
/// per-batch contiguous.
#[test]
fn seq_allocation_is_gap_free_under_every_interleaving() {
    const WRITERS: usize = 2;
    const BATCH: u64 = 2;
    let iterations = loom::model(|| {
        let next_seq = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..WRITERS)
            .map(|_| {
                let next_seq = Arc::clone(&next_seq);
                loom::thread::spawn(move || {
                    // One lock hold per batch, exactly like LogInner::append
                    // driven by record_many.
                    let mut seq = next_seq.lock().unwrap();
                    let start = *seq;
                    *seq += BATCH;
                    (start..start + BATCH).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            let batch = h.join().unwrap();
            // Contiguity within the batch is the record_many contract.
            assert!(
                batch.windows(2).all(|w| w[1] == w[0] + 1),
                "batch not contiguous: {batch:?}"
            );
            all.extend(batch);
        }
        let distinct: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len(), "duplicate seqs: {all:?}");
        assert_eq!(
            distinct,
            (0..(WRITERS as u64) * BATCH).collect::<BTreeSet<u64>>(),
            "gap in allocated seqs"
        );
    });
    assert!(
        iterations > 1,
        "expected the explorer to visit multiple interleavings, got {iterations}"
    );
}

/// The explorer has teeth: split the allocation into read-unlock-write (the
/// classic lost-update shape) and the exploration MUST surface a schedule
/// where two writers allocate the same seq. If this test ever fails, the
/// shim has stopped distinguishing schedules and the green result above
/// means nothing.
#[test]
fn explorer_catches_two_phase_allocation_race() {
    let saw_duplicate = AtomicBool::new(false);
    let saw_distinct = AtomicBool::new(false);
    loom::model(|| {
        let next_seq = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let next_seq = Arc::clone(&next_seq);
                loom::thread::spawn(move || {
                    // Broken on purpose: the read and the increment are two
                    // separate critical sections.
                    let read = *next_seq.lock().unwrap();
                    loom::thread::yield_now();
                    *next_seq.lock().unwrap() = read + 1;
                    read
                })
            })
            .collect();
        let seqs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        if seqs[0] == seqs[1] {
            saw_duplicate.store(true, Ordering::Relaxed);
        } else {
            saw_distinct.store(true, Ordering::Relaxed);
        }
    });
    assert!(
        saw_distinct.load(Ordering::Relaxed),
        "serial schedule missed"
    );
    assert!(
        saw_duplicate.load(Ordering::Relaxed),
        "no schedule produced the lost-update duplicate: the explorer is not exploring"
    );
}

/// The `ShardedJobTable` contract, mirrored: writers hold one shard lock at
/// a time, `for_each` locks shards strictly one at a time. Each shard read
/// is atomic (no torn values), but the traversal is NOT a cross-shard
/// snapshot — and the exploration must exhibit exactly the documented set
/// of observable states, including the torn-across-shards one.
#[test]
fn shard_traversal_is_per_shard_atomic_but_not_a_snapshot() {
    use std::sync::Mutex as StdMutex;
    let observed: StdMutex<BTreeSet<Vec<u64>>> = StdMutex::new(BTreeSet::new());
    loom::model(|| {
        let shards: Arc<Vec<Mutex<Vec<u64>>>> =
            Arc::new((0..2).map(|_| Mutex::new(Vec::new())).collect());
        let writer = {
            let shards = Arc::clone(&shards);
            loom::thread::spawn(move || {
                // Two inserts, two independent lock holds — like
                // ShardedJobTable::insert on ids hashing to different shards.
                shards[0].lock().unwrap().push(10);
                shards[1].lock().unwrap().push(11);
            })
        };
        let reader = {
            let shards = Arc::clone(&shards);
            loom::thread::spawn(move || {
                // for_each: one shard lock at a time, in shard order.
                let mut seen = Vec::new();
                for s in shards.iter() {
                    seen.extend(s.lock().unwrap().iter().copied());
                }
                seen
            })
        };
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        observed.lock().unwrap().insert(seen);
    });
    let observed = observed.into_inner().unwrap();
    let expected: BTreeSet<Vec<u64>> = [
        vec![],       // reader ran first
        vec![10],     // between the two inserts
        vec![11],     // torn: shard 0 read before insert, shard 1 after
        vec![10, 11], // reader ran last
    ]
    .into_iter()
    .collect();
    assert_eq!(
        observed, expected,
        "exhaustive exploration must exhibit exactly the documented observable states"
    );
}
