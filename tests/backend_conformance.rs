//! Backend conformance harness: one parameterized suite proving every
//! execution backend — the sim LRMS, the in-process thread pool, and the
//! external-process runner — satisfies the same contract:
//!
//! - dispatch-latency ordering of the job lifecycle,
//! - kill-during-queue semantics (terminal, never started),
//! - disposition retention, including across rejoin reconciliation,
//! - `accepts_queued_jobs` agreement with the published machine ad,
//! - whole-stream invariant rules 1–8 + 5b on a full broker run,
//! - same-seed replay identity (real execution never perturbs the sim),
//! - `LrmsStats` balance under arbitrary interleavings (proptest),
//!
//! plus the 1/4/8-thread `ParallelMatcher` sweep under every backend label.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crossgrid::broker::{MatchRequest, ParallelMatcher, ShardedJobTable, DEFAULT_SHARDS};
use crossgrid::jdl::Ad;
use crossgrid::net::FaultSchedule;
use crossgrid::prelude::*;
use crossgrid::site::{
    BackendError, BackendHandle, BackendSpec, LocalDisposition, LocalJobId, LocalJobSpec,
    LrmsEvent, Policy,
};
use crossgrid::trace::replay::{Bucket, ReplayState};
use crossgrid::trace::{check_recovery_invariants, TimedEvent};
use proptest::prelude::*;

mod common;
use common::{all_backend_specs, bucket_of, check_cores};

const SEED: u64 = 7;

fn latency() -> SimDuration {
    SimDuration::from_millis(1_500)
}

fn build(spec: &BackendSpec, policy: Policy, nodes: usize) -> BackendHandle {
    spec.build(policy, nodes, latency(), 64)
        .expect("conformance specs are structurally valid")
}

/// Per-job lifecycle recording: `(job, tag, nanos)` per callback delivery.
type Lifecycle = Rc<RefCell<Vec<(u64, &'static str, u64)>>>;

fn tag(ev: &LrmsEvent) -> &'static str {
    match ev {
        LrmsEvent::Queued => "queued",
        LrmsEvent::Started { .. } => "started",
        LrmsEvent::Finished => "finished",
        LrmsEvent::Killed { .. } => "killed",
    }
}

fn submit_recorded(
    backend: &BackendHandle,
    sim: &mut Sim,
    runtime: SimDuration,
    trace: &Lifecycle,
) -> LocalJobId {
    let t = Rc::clone(trace);
    backend.submit(sim, LocalJobSpec::simple(runtime), move |sim, id, ev| {
        t.borrow_mut().push((id.0, tag(ev), sim.now().as_nanos()));
    })
}

fn events_of(trace: &Lifecycle, id: LocalJobId) -> Vec<(&'static str, u64)> {
    trace
        .borrow()
        .iter()
        .filter(|(j, _, _)| *j == id.0)
        .map(|(_, t, at)| (*t, *at))
        .collect()
}

// ---------------------------------------------------------------------------
// Construction and dispatch-latency ordering
// ---------------------------------------------------------------------------

#[test]
fn invalid_capacity_is_a_typed_error_for_every_backend() {
    for spec in all_backend_specs() {
        assert!(
            matches!(
                spec.build(Policy::Fifo, 0, latency(), 64),
                Err(BackendError::ZeroNodes)
            ),
            "{spec:?}: zero nodes must be rejected"
        );
    }
    assert!(matches!(
        BackendSpec::ThreadPool { threads: 0 }.build(Policy::Fifo, 2, latency(), 64),
        Err(BackendError::ZeroThreads)
    ));
    assert!(matches!(
        BackendSpec::Process {
            program: String::new()
        }
        .build(Policy::Fifo, 2, latency(), 64),
        Err(BackendError::EmptyProgram)
    ));
    assert!(
        Site::try_new(SiteConfig {
            nodes: 0,
            ..SiteConfig::default()
        })
        .is_err(),
        "Site::try_new must propagate backend construction errors"
    );
}

#[test]
fn dispatch_latency_orders_every_lifecycle() {
    for spec in all_backend_specs() {
        let mut sim = Sim::new(11);
        let backend = build(&spec, Policy::Fifo, 2);
        let trace: Lifecycle = Rc::new(RefCell::new(Vec::new()));
        let ids: Vec<LocalJobId> = (0..3)
            .map(|_| submit_recorded(&backend, &mut sim, SimDuration::from_secs(5), &trace))
            .collect();
        sim.run_until(SimTime::from_secs(60));
        backend.quiesce();

        let mut finish_of_first_wave = u64::MAX;
        for (i, id) in ids.iter().enumerate() {
            let evs = events_of(&trace, *id);
            assert_eq!(
                evs.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                vec!["queued", "started", "finished"],
                "{spec:?}: job {i} lifecycle out of order: {evs:?}"
            );
            let queued_at = evs[0].1;
            let started_at = evs[1].1;
            assert!(
                started_at >= queued_at + latency().as_nanos(),
                "{spec:?}: job {i} started {started_at} before its dispatch \
                 latency elapsed (queued {queued_at})"
            );
            if i < 2 {
                finish_of_first_wave = finish_of_first_wave.min(evs[2].1);
            } else {
                // Two nodes: the third job cannot start until a first-wave
                // job has freed its node.
                assert!(
                    started_at >= finish_of_first_wave,
                    "{spec:?}: job 2 started at {started_at} while both \
                     nodes were still busy (first free at {finish_of_first_wave})"
                );
            }
        }
        let stats = backend.stats();
        assert_eq!(stats.submitted, 3, "{spec:?}");
        assert_eq!(stats.finished, 3, "{spec:?}");
        assert_eq!(stats.killed, 0, "{spec:?}");
    }
}

#[test]
fn kill_during_queue_is_terminal_and_never_starts() {
    for spec in all_backend_specs() {
        let mut sim = Sim::new(13);
        let backend = build(&spec, Policy::Fifo, 1);
        let trace: Lifecycle = Rc::new(RefCell::new(Vec::new()));
        let a = submit_recorded(&backend, &mut sim, SimDuration::from_secs(100), &trace);
        let b = submit_recorded(&backend, &mut sim, SimDuration::from_secs(10), &trace);

        // `b` is still queued behind `a` at t=5 s; kill it there.
        let killer = backend.clone();
        sim.schedule_at(SimTime::from_secs(5), move |sim| {
            assert!(killer.kill(sim, b, "conformance"), "queued kill must land");
            assert_eq!(killer.disposition(b), Some(LocalDisposition::Killed));
            assert_eq!(killer.queue_depth(), 0);
        });
        sim.run_until(SimTime::from_secs(300));
        backend.quiesce();

        assert_eq!(
            events_of(&trace, b)
                .iter()
                .map(|(t, _)| *t)
                .collect::<Vec<_>>(),
            vec!["queued", "killed"],
            "{spec:?}: a queue-killed job must never start"
        );
        assert_eq!(backend.disposition(a), Some(LocalDisposition::Finished));
        let stats = backend.stats();
        assert_eq!((stats.submitted, stats.finished, stats.killed), (2, 1, 1));
        assert!(
            !backend.kill(&mut sim, LocalJobId(99), "unknown"),
            "{spec:?}: killing an unknown job must report it"
        );
    }
}

// ---------------------------------------------------------------------------
// Disposition retention
// ---------------------------------------------------------------------------

#[test]
fn disposition_retention_evicts_oldest_for_every_backend() {
    for spec in all_backend_specs() {
        let mut sim = Sim::new(17);
        let backend = spec
            .build(Policy::Fifo, 1, SimDuration::ZERO, 4)
            .expect("valid spec");
        let ids: Vec<LocalJobId> = (0..10)
            .map(|_| {
                backend.submit(
                    &mut sim,
                    LocalJobSpec::simple(SimDuration::from_secs(1)),
                    |_, _, _| {},
                )
            })
            .collect();
        sim.run_until(SimTime::from_secs(60));
        backend.quiesce();

        for id in &ids[..6] {
            assert_eq!(
                backend.disposition(*id),
                None,
                "{spec:?}: evicted disposition resurfaced"
            );
        }
        for id in &ids[6..] {
            assert_eq!(
                backend.disposition(*id),
                Some(LocalDisposition::Finished),
                "{spec:?}: recent disposition evicted"
            );
        }
        assert_eq!(backend.stats().finished, 10, "{spec:?}");
    }
}

// ---------------------------------------------------------------------------
// Admission-policy agreement with the published ad
// ---------------------------------------------------------------------------

#[test]
fn accepts_queued_agrees_with_the_published_machine_ad() {
    for spec in all_backend_specs() {
        let site = Site::try_new(SiteConfig {
            name: "conf".into(),
            nodes: 1,
            backend: spec.clone(),
            ..SiteConfig::default()
        })
        .expect("valid spec");
        let mut sim = Sim::new(19);
        let published = |site: &Site| {
            site.machine_ad()
                .get("AcceptsQueued")
                .and_then(crossgrid::jdl::Value::as_bool)
                .expect("AcceptsQueued is published as a bool")
        };

        assert!(site.backend().accepts_queued_jobs(), "{spec:?}: fresh site");
        assert!(published(&site), "{spec:?}: fresh ad must accept");

        // One running + four queued jobs saturate the bounded queue
        // (4 × nodes): the backend and its ad must close together.
        for _ in 0..5 {
            site.backend().submit(
                &mut sim,
                LocalJobSpec::simple(SimDuration::from_secs(500)),
                |_, _, _| {},
            );
        }
        sim.run_until(SimTime::from_secs(10));
        assert!(
            !site.backend().accepts_queued_jobs(),
            "{spec:?}: queue at 4×nodes must refuse admission"
        );
        assert!(
            !published(&site),
            "{spec:?}: the ad must publish the refusal the co-allocation \
             filter keys on"
        );
        site.backend().quiesce();
    }
}

// ---------------------------------------------------------------------------
// Rejoin reconciliation (broker-level retention regression)
// ---------------------------------------------------------------------------

fn outage() -> FaultSchedule {
    FaultSchedule::from_windows(vec![(SimTime::from_secs(20), SimTime::from_secs(1_300))])
}

fn exclusive() -> crossgrid::jdl::JobDescription {
    crossgrid::jdl::JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "exclusive"; User = "alice";"#,
    )
    .unwrap()
}

/// A dispatched job finishes at the site while its link is down, so the
/// GRAM completion message is lost; once the site rejoins, the broker's
/// reconciliation poll must find the (recent, retained) disposition and
/// terminate the job. Run per backend; a retention cap of 4 pins the
/// regression from the unbounded-retention fix.
#[test]
fn rejoin_reconciliation_finds_recent_dispositions() {
    for spec in all_backend_specs() {
        let site = Site::try_new(SiteConfig {
            name: "alpha".into(),
            nodes: 2,
            policy: Policy::Fifo,
            backend: spec.clone(),
            disposition_retention: 4,
            ..SiteConfig::default()
        })
        .expect("valid spec");
        let backend = site.backend().clone();
        let handles = vec![SiteHandle {
            site,
            broker_link: Link::with_faults(LinkProfile::campus(), outage()),
            ui_link: Link::with_faults(LinkProfile::campus(), outage()),
        }];
        let mds = Link::with_faults(LinkProfile::wan_mds(), FaultSchedule::none());
        let mut sim = Sim::new(SEED);
        let broker = CrossBroker::new(
            &mut sim,
            handles,
            mds,
            BrokerConfig {
                publish_faults: vec![outage()],
                ..BrokerConfig::default()
            },
        );
        // Dispatched before the outage (t≈5 s), finishes inside it
        // (t≈310 s): the completion message dies on the downed link.
        let id = broker.submit(&mut sim, exclusive(), SimDuration::from_secs(300));

        let mid_outage: Rc<RefCell<Option<JobState>>> = Rc::new(RefCell::new(None));
        let probe = Rc::clone(&mid_outage);
        let b = broker.clone();
        sim.schedule_at(SimTime::from_secs(1_000), move |_| {
            *probe.borrow_mut() = Some(b.record(id).state);
        });
        sim.run_until(SimTime::from_secs(2_400));
        backend.quiesce();

        let stranded = mid_outage.borrow().clone().expect("probe fired");
        assert!(
            !matches!(stranded, JobState::Done | JobState::Failed { .. }),
            "{spec:?}: at t=1000 s the broker cannot yet know the outcome \
             (got {stranded:?}) — otherwise this test proves nothing"
        );
        assert_eq!(
            broker.record(id).state,
            JobState::Done,
            "{spec:?}: rejoin reconciliation must deliver the retained \
             disposition"
        );
        assert_eq!(backend.stats().finished, 1, "{spec:?}");
    }
}

// ---------------------------------------------------------------------------
// Full-broker invariants + same-seed replay identity
// ---------------------------------------------------------------------------

fn grid_world(spec: &BackendSpec) -> (Vec<SiteHandle>, Link) {
    let handles = ["alpha", "beta"]
        .iter()
        .map(|name| {
            let site = Site::try_new(SiteConfig {
                name: (*name).into(),
                nodes: 2,
                policy: Policy::Fifo,
                backend: spec.clone(),
                ..SiteConfig::default()
            })
            .expect("valid spec");
            SiteHandle {
                site,
                broker_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
                ui_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
            }
        })
        .collect();
    (
        handles,
        Link::with_faults(LinkProfile::wan_mds(), FaultSchedule::none()),
    )
}

fn shared() -> crossgrid::jdl::JobDescription {
    crossgrid::jdl::JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "shared";
           PerformanceLoss = 10; User = "bob";"#,
    )
    .unwrap()
}

fn broken() -> crossgrid::jdl::JobDescription {
    crossgrid::jdl::JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "exclusive";
           User = "mallory"; Requirements = frob(1);"#,
    )
    .unwrap()
}

fn grid_run(spec: &BackendSpec, seed: u64) -> (Vec<TimedEvent>, Vec<JobRecord>, ReplayState) {
    let mut sim = Sim::new(seed);
    let (handles, mds) = grid_world(spec);
    let broker = CrossBroker::new(
        &mut sim,
        handles,
        mds,
        BrokerConfig {
            max_resubmissions: 10,
            ..BrokerConfig::default()
        },
    );
    for _ in 0..2 {
        broker.submit(&mut sim, exclusive(), SimDuration::from_secs(10));
    }
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(1), move |sim| {
        b.submit(sim, broken(), SimDuration::from_secs(10));
    });
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(45), move |sim| {
        b.submit(sim, exclusive(), SimDuration::from_secs(10));
    });
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(120), move |sim| {
        b.submit(sim, shared(), SimDuration::from_secs(20));
    });
    sim.run_until(SimTime::from_secs(600));
    let state = broker.replay_state();
    (broker.event_log().snapshot(), broker.records(), state)
}

/// Blanks the per-backend label so streams from different backends can be
/// compared byte-for-byte: everything except the label must be identical.
fn neutral(mut e: TimedEvent) -> TimedEvent {
    if let Event::JobDispatched { backend, .. } = &mut e.event {
        *backend = String::new();
    }
    e
}

#[test]
fn full_grid_obeys_invariants_and_replays_bit_identically() {
    let mut bucket_sets: Vec<BTreeMap<u64, Bucket>> = Vec::new();
    let mut neutral_streams: Vec<Vec<TimedEvent>> = Vec::new();
    for spec in all_backend_specs() {
        let (events, records, recovered) = grid_run(&spec, SEED);
        assert_eq!(records.len(), 5, "{spec:?}");

        // Rules 1–5 + 5b on the whole stream.
        let violations = check_invariants(&events);
        assert!(violations.is_empty(), "{spec:?}: {violations:?}");

        // Rules 6–8: the stream's fold and the broker's live projection
        // (job table + spool watermarks) agree. Rule 6's agent clause
        // models a crash — glide-in agents never survive one, so an agent
        // alive on both sides is flagged. No crash happened here, so drop
        // the registry from the recovered view to keep the clause out of
        // a comparison it was never written for.
        let mut expected = ReplayState::default();
        for ev in &events {
            expected.apply(ev);
        }
        let mut recovered = recovered;
        recovered.agents.clear();
        let violations = check_recovery_invariants(&[], &expected, &recovered);
        assert!(violations.is_empty(), "{spec:?}: {violations:?}");

        // Dispatch events carry this backend's label.
        let mut dispatches = 0;
        for e in &events {
            if let Event::JobDispatched { backend, .. } = &e.event {
                assert_eq!(backend, spec.kind().as_str(), "{spec:?}");
                dispatches += 1;
            }
        }
        assert!(dispatches >= 4, "{spec:?}: workload barely dispatched");

        // Same-seed replay identity: a second run is bit-identical.
        let (replay, _, _) = grid_run(&spec, SEED);
        assert_eq!(events, replay, "{spec:?}: same-seed run diverged");

        bucket_sets.push(
            records
                .iter()
                .map(|r| (r.id.0, bucket_of(&r.state)))
                .collect(),
        );
        neutral_streams.push(events.into_iter().map(neutral).collect());
    }

    // Cross-backend: real execution must not perturb the sim at all — the
    // streams are identical once the dispatch label is blanked, and every
    // job lands in the same terminal bucket.
    for (i, spec) in all_backend_specs().iter().enumerate().skip(1) {
        assert_eq!(
            bucket_sets[i], bucket_sets[0],
            "{spec:?}: terminal buckets diverged from the sim backend"
        );
        assert_eq!(
            neutral_streams[i], neutral_streams[0],
            "{spec:?}: event stream diverged from the sim backend"
        );
    }
}

// ---------------------------------------------------------------------------
// ParallelMatcher sweep under every backend label
// ---------------------------------------------------------------------------

fn match_ads(n: usize) -> Vec<(usize, Ad)> {
    (0..n)
        .map(|i| {
            let mut ad = Ad::new();
            ad.set_str("Site", format!("s{i}"))
                .set_int("FreeCpus", (i % 5) as i64)
                .set_bool("AcceptsQueued", i % 3 != 0);
            (i, ad)
        })
        .collect()
}

fn match_requests(n: usize) -> Vec<MatchRequest> {
    (0..n)
        .map(|i| {
            let nodes = 1 + i % 3;
            let user = format!("u{}", i % 7);
            let src = if i % 2 == 0 {
                format!(
                    r#"Executable = "iapp"; JobType = {{"interactive","mpich-p4"}};
                       NodeNumber = {nodes}; User = "{user}";"#
                )
            } else {
                format!(r#"Executable = "bapp"; JobType = "batch"; User = "{user}";"#)
            };
            MatchRequest {
                id: JobId(i as u64),
                job: crossgrid::jdl::JobDescription::parse(&src).unwrap(),
            }
        })
        .collect()
}

#[test]
fn matcher_sweep_is_thread_invariant_under_every_backend_label() {
    if check_cores() < 4 {
        eprintln!("skipping matcher sweep: needs >= 4 cores (CG_CHECK_CORES to override)");
        return;
    }
    let reqs = match_requests(120);
    for spec in all_backend_specs() {
        let label = spec.kind().as_str();
        let run = |threads: usize| {
            let log = EventLog::new(reqs.len() * 4 + 32);
            let table = ShardedJobTable::new(DEFAULT_SHARDS);
            let engine = ParallelMatcher::new(match_ads(12), SEED).with_backend_label(label);
            let outcomes = engine.run(&reqs, threads, &log, &table);
            let buckets: BTreeMap<u64, Bucket> = table
                .snapshot()
                .iter()
                .map(|(id, r)| (id.0, bucket_of(&r.state)))
                .collect();
            (outcomes, buckets, log.snapshot())
        };

        let (outcomes1, buckets1, events1) = run(1);
        let violations = check_invariants(&events1);
        assert!(violations.is_empty(), "{label}: {violations:?}");
        let mut dispatches = 0;
        for e in &events1 {
            if let Event::JobDispatched { backend, .. } = &e.event {
                assert_eq!(backend, label);
                dispatches += 1;
            }
        }
        assert!(dispatches > 0, "{label}: sweep never dispatched");

        for threads in [4, 8] {
            let (outcomes, buckets, events) = run(threads);
            assert_eq!(
                outcomes, outcomes1,
                "{label}: outcomes at {threads} threads"
            );
            assert_eq!(buckets, buckets1, "{label}: buckets at {threads} threads");
            let violations = check_invariants(&events);
            assert!(violations.is_empty(), "{label}@{threads}: {violations:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Stats balance under arbitrary interleavings
// ---------------------------------------------------------------------------

proptest! {
    /// At every step of an arbitrary submit/kill/complete interleaving,
    /// `submitted = queued + dispatching + running + finished + killed` —
    /// a job is in exactly one of those states at any instant, on every
    /// backend.
    #[test]
    fn stats_balance_under_arbitrary_interleavings(
        ops in prop::collection::vec((0u8..3u8, 1u64..40u64), 1..25),
        seed in 1u64..1_000u64,
    ) {
        for spec in all_backend_specs() {
            let mut sim = Sim::new(seed);
            let backend = build(&spec, Policy::FifoBackfill, 2);
            let known: Rc<RefCell<Vec<LocalJobId>>> = Rc::new(RefCell::new(Vec::new()));
            let imbalances: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, &(kind, x)) in ops.iter().enumerate() {
                let at = SimTime::from_secs(i as u64 * 7 + x);
                let b = backend.clone();
                let known = Rc::clone(&known);
                let imbalances = Rc::clone(&imbalances);
                sim.schedule_at(at, move |sim| {
                    let pick = |ks: &[LocalJobId]| {
                        if ks.is_empty() {
                            None
                        } else {
                            Some(ks[x as usize % ks.len()])
                        }
                    };
                    match kind {
                        0 => {
                            let id = b.submit(
                                sim,
                                LocalJobSpec::simple(SimDuration::from_secs(x)),
                                |_, _, _| {},
                            );
                            known.borrow_mut().push(id);
                        }
                        1 => {
                            if let Some(id) = pick(&known.borrow()) {
                                b.kill(sim, id, "interleaving");
                            }
                        }
                        _ => {
                            if let Some(id) = pick(&known.borrow()) {
                                b.complete(sim, id);
                            }
                        }
                    }
                    let s = b.stats();
                    let live =
                        (b.queue_depth() + b.dispatching_count() + b.running_count()) as u64;
                    if s.submitted != live + s.finished + s.killed {
                        imbalances.borrow_mut().push(format!(
                            "op {i} ({kind},{x}): submitted {} != live {live} + \
                             finished {} + killed {}",
                            s.submitted, s.finished, s.killed
                        ));
                    }
                });
            }
            sim.run_until(SimTime::from_secs(25 * 7 + 100));
            backend.quiesce();
            prop_assert!(
                imbalances.borrow().is_empty(),
                "{:?}: {:?}",
                spec,
                imbalances.borrow()
            );
            let s = backend.stats();
            let live = (backend.queue_depth()
                + backend.dispatching_count()
                + backend.running_count()) as u64;
            prop_assert_eq!(
                s.submitted,
                live + s.finished + s.killed,
                "{:?}: final balance", spec
            );
        }
    }
}
