//! Integration tests of `cgrun lint`: the submit-time JDL analyzer driven
//! through the real binary over the checked-in fixture files, asserting
//! span accuracy, stable error codes, and exit statuses.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(rel: &str) -> String {
    let p: PathBuf = [env!("CARGO_MANIFEST_DIR"), "examples", "jdl", rel]
        .iter()
        .collect();
    p.to_string_lossy().into_owned()
}

fn lint(files: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cgrun"))
        .arg("lint")
        .args(files)
        .output()
        .unwrap()
}

#[test]
fn clean_fixtures_lint_quietly() {
    let out = lint(&[
        &fixture("figure2.jdl"),
        &fixture("batch.jdl"),
        &fixture("shared_interactive.jdl"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("3 file(s) clean"), "{stdout}");
    assert!(!stdout.contains("error["), "{stdout}");
    assert!(!stdout.contains("warning["), "{stdout}");
}

#[test]
fn unknown_attribute_reports_e101_with_span() {
    let out = lint(&[&fixture("bad/unknown_attr.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("error[E101]"), "{stdout}");
    assert!(stdout.contains("unknown_attr.jdl:4:16"), "{stdout}");
    assert!(stdout.contains("other.FreeCpu"), "{stdout}");
    assert!(stdout.contains("sites advertise"), "{stdout}");
}

#[test]
fn type_mismatch_reports_e102_at_the_operator() {
    let out = lint(&[&fixture("bad/type_mismatch.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("error[E102]"), "{stdout}");
    assert!(stdout.contains("type_mismatch.jdl:4:31"), "{stdout}");
}

#[test]
fn unsatisfiable_requirements_reports_e108() {
    let out = lint(&[&fixture("bad/unsat.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("error[E108]"), "{stdout}");
    assert!(stdout.contains("can never match"), "{stdout}");
    assert!(stdout.contains("FreeCpus"), "{stdout}");
}

#[test]
fn non_numeric_rank_reports_e107() {
    let out = lint(&[&fixture("bad/rank_not_numeric.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("error[E107]"), "{stdout}");
    assert!(stdout.contains("rank_not_numeric.jdl:4:14"), "{stdout}");
}

#[test]
fn selection_policy_fixture_lints_clean() {
    let out = lint(&[&fixture("policy_forecast.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("1 file(s) clean"), "{stdout}");
}

#[test]
fn unknown_selection_policy_warns_w207_but_exits_zero() {
    let out = lint(&[&fixture("warn/policy_unknown.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Advisory only: the broker falls back to its default policy, so the
    // lint gate must NOT fail the file — CI treats exit 0 + warning text
    // as "clean with notes".
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("warning[W207]"), "{stdout}");
    assert!(stdout.contains("policy_unknown.jdl:6:1"), "{stdout}");
    assert!(stdout.contains("falls back"), "{stdout}");
    assert!(stdout.contains("0 error(s), 1 warning(s)"), "{stdout}");
}

#[test]
fn wrong_typed_selection_policy_is_an_error() {
    let out = lint(&[&fixture("bad/policy_wrong_type.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("error[E102]"), "{stdout}");
    assert!(stdout.contains("policy_wrong_type.jdl:4"), "{stdout}");
    // The wrong type is a hard error, never the advisory unknown-name path.
    assert!(!stdout.contains("W207"), "{stdout}");
}

#[test]
fn mixed_batch_still_fails_and_counts_both() {
    let out = lint(&[&fixture("figure2.jdl"), &fixture("bad/unsat.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("1 error(s)"), "{stdout}");
}

#[test]
fn usage_and_missing_file_exit_2() {
    let out = lint(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&["/nonexistent/nope.jdl"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn diagnostics_render_a_caret_under_the_offending_column() {
    let out = lint(&[&fixture("bad/unknown_attr.jdl")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The source line and a caret line beneath it.
    assert!(
        stdout.contains("4 | Requirements = other.FreeCpu > 1;"),
        "{stdout}"
    );
    let caret_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with('|') && l.contains('^'))
        .expect("caret line");
    // Column 16 → caret under `other`.
    assert_eq!(caret_line.find('^'), Some("  | ".len() + 15), "{stdout}");
}

/// The ads the examples construct — the quickstart JDL and the synthetic
/// workload population the `grid_day`/`trace_stream` examples submit — must
/// all pass the analyzer that now gates broker submit.
#[test]
fn example_ads_are_analyzer_clean() {
    use crossgrid::jdl::JobDescription;
    use crossgrid::sim::{SimDuration, SimRng, SimTime};
    use crossgrid::workloads::{poisson_arrivals, JobMix};

    let quickstart = JobDescription::parse(
        r#"
        Executable     = "hep_event_display";
        JobType        = "interactive";
        MachineAccess  = "exclusive";
        StreamingMode  = "reliable";
        User           = "alice";
    "#,
    )
    .unwrap();
    let a = quickstart.analyze();
    assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);

    let mut rng = SimRng::new(7);
    let arrivals = poisson_arrivals(
        &mut rng,
        &JobMix::default(),
        SimDuration::from_secs(60),
        SimTime::from_secs(4 * 3_600),
    );
    assert!(!arrivals.is_empty());
    for arr in &arrivals {
        let a = arr.job.analyze();
        assert!(
            !a.has_errors(),
            "workload job rejected: {:?}",
            a.diagnostics
        );
    }
}
