//! Cross-crate end-to-end: the full 18-site testbed under mixed load,
//! exercised through the facade crate.

use crossgrid::handles_from_scenario;
use crossgrid::prelude::*;
use crossgrid::sim::SimRng;
use crossgrid::workloads::{poisson_arrivals, JobMix};

fn run_day(seed: u64, hours: u64) -> (CrossBroker, Vec<JobRecord>) {
    let mut sim = Sim::new(seed);
    let mut rng = SimRng::new(seed ^ 0xABCD);
    let scenario = crossgrid_testbed(&mut rng, false);
    let broker = CrossBroker::new(
        &mut sim,
        handles_from_scenario(&scenario),
        scenario.mds_link(),
        BrokerConfig::default(),
    );
    let horizon = SimTime::from_secs(hours * 3_600);
    for arrival in poisson_arrivals(
        &mut rng,
        &JobMix::default(),
        SimDuration::from_secs(180),
        horizon,
    ) {
        let broker2 = broker.clone();
        let job = arrival.job.clone();
        let runtime = arrival.runtime;
        sim.schedule_at(arrival.at, move |sim| {
            broker2.submit(sim, job, runtime);
        });
    }
    sim.run_until(horizon + SimDuration::from_secs(6 * 3_600));
    let records = broker.records();
    (broker, records)
}

#[test]
fn every_job_reaches_a_terminal_state() {
    let (broker, records) = run_day(1, 4);
    assert!(!records.is_empty());
    for r in &records {
        assert!(
            matches!(r.state, JobState::Done | JobState::Failed { .. }),
            "{}: non-terminal state after drain: {:?}",
            r.id,
            r.state
        );
    }
    let stats = broker.stats();
    assert_eq!(
        stats.submitted,
        (stats.finished + stats.failed + stats.rejected),
        "accounting closes: {stats:?}"
    );
}

#[test]
fn timestamps_are_causally_ordered() {
    let (_, records) = run_day(2, 4);
    for r in &records {
        if let (Some(d), Some(s)) = (r.discovered_at, r.selected_at) {
            assert!(d >= r.submitted_at);
            assert!(s >= d);
        }
        if let (Some(disp), Some(start)) = (r.dispatched_at, r.started_at) {
            assert!(start >= disp, "{}: started before dispatch", r.id);
        }
        if let (Some(start), Some(fin)) = (r.started_at, r.finished_at) {
            assert!(fin >= start);
        }
    }
}

#[test]
fn interactive_jobs_start_faster_than_batch_on_average() {
    let (_, records) = run_day(3, 6);
    // Shared-path interactive jobs have selection_s == 0 (combined step).
    let shared: Vec<f64> = records
        .iter()
        .filter(|r| r.selection_s() == Some(0.0))
        .filter_map(|r| r.response_s())
        .collect();
    let matched: Vec<f64> = records
        .iter()
        .filter(|r| r.selection_s().is_some_and(|s| s > 0.0))
        .filter_map(|r| r.response_s())
        .collect();
    assert!(
        shared.len() > 3,
        "need shared-path samples, got {}",
        shared.len()
    );
    assert!(matched.len() > 3);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&shared) < mean(&matched) / 2.0,
        "shared {:.1}s vs matched {:.1}s — the paper's headline result",
        mean(&shared),
        mean(&matched)
    );
}

/// The lifecycle event stream of a full simulated day satisfies the
/// broker-wide invariants: every dispatch was preceded by a lease for the
/// same job, no job reaches two terminal states, spool acks never run ahead
/// of appends, and every yielded batch task is restored once its
/// interactive guest departs.
#[test]
fn event_stream_invariants_hold_over_a_day() {
    let (broker, records) = run_day(5, 24);
    assert!(!records.is_empty());
    let log = broker.event_log();
    assert_eq!(
        log.dropped(),
        0,
        "ring too small for the day: {} events recorded",
        log.recorded()
    );
    let events = log.snapshot();
    assert!(
        events.len() > 100,
        "expected a rich stream, got {} events",
        events.len()
    );
    let violations = check_invariants(&events);
    assert!(
        violations.is_empty(),
        "{} invariant violations, first: {}",
        violations.len(),
        violations[0]
    );
    // The metrics registry counted every recorded event.
    let metrics = broker.metrics();
    let counted: u64 = metrics
        .counter_names()
        .iter()
        .filter(|n| n.starts_with("events."))
        .map(|n| metrics.counter(n))
        .sum();
    assert_eq!(counted, log.recorded());
    // Every started job left a response-time sample.
    let stats = broker.stats();
    let response = metrics
        .histogram_stats("response_s")
        .expect("jobs started during the day");
    assert_eq!(response.count(), stats.started);
}

#[test]
fn identical_seeds_give_identical_days() {
    let (_, a) = run_day(7, 3);
    let (_, b) = run_day(7, 3);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.submitted_at, rb.submitted_at);
        assert_eq!(ra.started_at, rb.started_at);
        assert_eq!(ra.finished_at, rb.finished_at);
        assert_eq!(
            std::mem::discriminant(&ra.state),
            std::mem::discriminant(&rb.state)
        );
    }
}

#[test]
fn different_seeds_give_different_days() {
    let (_, a) = run_day(11, 3);
    let (_, b) = run_day(12, 3);
    let fingerprint = |rs: &[JobRecord]| -> Vec<Option<u64>> {
        rs.iter()
            .map(|r| r.started_at.map(|t| t.as_nanos()))
            .collect()
    };
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn nodes_are_returned_after_the_day() {
    let mut sim = Sim::new(21);
    let mut rng = SimRng::new(21);
    let scenario = crossgrid_testbed(&mut rng, false);
    let total_before: usize = scenario
        .sites
        .iter()
        .map(|(s, _)| s.lrms().free_nodes())
        .sum();
    let broker = CrossBroker::new(
        &mut sim,
        handles_from_scenario(&scenario),
        scenario.mds_link(),
        BrokerConfig::default(),
    );
    let horizon = SimTime::from_secs(2 * 3_600);
    for arrival in poisson_arrivals(
        &mut rng,
        &JobMix::default(),
        SimDuration::from_secs(300),
        horizon,
    ) {
        let broker2 = broker.clone();
        let job = arrival.job.clone();
        let runtime = arrival.runtime.min(SimDuration::from_secs(600));
        sim.schedule_at(arrival.at, move |sim| {
            broker2.submit(sim, job, runtime);
        });
    }
    sim.run_until(SimTime::from_secs(24 * 3_600));
    let total_after: usize = scenario
        .sites
        .iter()
        .map(|(s, _)| s.lrms().free_nodes())
        .sum();
    assert_eq!(
        total_before, total_after,
        "every node freed once the day drained (no leaked agents/jobs)"
    );
}
