//! Crash-recovery integration tests: the deterministic kill-point sweep
//! (crash after every journaled event, recover, and demand the same
//! terminal outcome per job), snapshot-bounded recovery, and journal
//! corruption fuzzing (torn tails and bit flips must surface as typed
//! errors, never panics or silent partial replays).

use std::collections::BTreeMap;
use std::path::PathBuf;

use crossgrid::broker::RecoveryReport;
use crossgrid::jdl::JobDescription;
use crossgrid::net::{FaultSchedule, Link, LinkProfile};
use crossgrid::prelude::*;
use crossgrid::site::{BackendSpec, Policy, SiteConfig};
use crossgrid::trace::journal::{
    open_journal, parse_journal, Journal, JournalConfig, JournalError,
};
use crossgrid::trace::replay::Bucket;
use crossgrid::trace::CrashPlan;

mod common;
use common::bucket_of;

const SEED: u64 = 7;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cg-crashrec-{}-{name}.journal", std::process::id()));
    p
}

fn config() -> BrokerConfig {
    // A generous resubmission budget keeps the reference scenario's outcome
    // independent of transient placement collisions, in the original run
    // and in every recovered epoch of the sweep.
    BrokerConfig {
        max_resubmissions: 10,
        ..BrokerConfig::default()
    }
}

fn world_with(backend: &BackendSpec) -> (Vec<SiteHandle>, Link) {
    let handles = ["alpha", "beta"]
        .iter()
        .map(|name| {
            let site = Site::new(SiteConfig {
                name: (*name).into(),
                nodes: 2,
                policy: Policy::Fifo,
                backend: backend.clone(),
                ..SiteConfig::default()
            });
            SiteHandle {
                site,
                broker_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
                ui_link: Link::with_faults(LinkProfile::campus(), FaultSchedule::none()),
            }
        })
        .collect();
    let mds = Link::with_faults(LinkProfile::wan_mds(), FaultSchedule::none());
    (handles, mds)
}

fn exclusive() -> JobDescription {
    JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "exclusive"; User = "alice";"#,
    )
    .unwrap()
}

fn shared() -> JobDescription {
    JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "shared";
           PerformanceLoss = 10; User = "bob";"#,
    )
    .unwrap()
}

/// Parses fine but fails submit-time static analysis (unknown function in
/// `Requirements`), so the broker rejects it deterministically in any world.
fn broken() -> JobDescription {
    JobDescription::parse(
        r#"Executable = "viz"; JobType = "interactive"; MachineAccess = "exclusive";
           User = "mallory"; Requirements = frob(1);"#,
    )
    .unwrap()
}

/// The reference scenario: two exclusive interactive jobs at t=0 (one per
/// site — exclusive submissions lease a whole site, so two is the most
/// this world runs concurrently), an analyzer-rejected job at t=1, a third
/// exclusive job at t=45 once the leases have lapsed, and a shared job at
/// t=120 that rides a freshly deployed glide-in agent. Every job's outcome
/// is capacity-independent, so any recovered epoch must reproduce it.
fn drive(sim: &mut Sim, broker: &CrossBroker) {
    for _ in 0..2 {
        broker.submit(sim, exclusive(), SimDuration::from_secs(10));
    }
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(1), move |sim| {
        b.submit(sim, broken(), SimDuration::from_secs(10));
    });
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(45), move |sim| {
        b.submit(sim, exclusive(), SimDuration::from_secs(10));
    });
    let b = broker.clone();
    sim.schedule_at(SimTime::from_secs(120), move |sim| {
        b.submit(sim, shared(), SimDuration::from_secs(20));
    });
}

/// Runs the reference scenario with a journal at `path`. Returns the total
/// event count and whether the armed kill point fired.
fn journaled_run(
    path: &PathBuf,
    crash_after: Option<u64>,
    snapshot_at: Option<u64>,
) -> (u64, bool) {
    journaled_run_with(path, crash_after, snapshot_at, &BackendSpec::Sim)
}

fn journaled_run_with(
    path: &PathBuf,
    crash_after: Option<u64>,
    snapshot_at: Option<u64>,
    backend: &BackendSpec,
) -> (u64, bool) {
    let _ = std::fs::remove_file(path);
    let mut sim = Sim::new(SEED);
    let (handles, mds) = world_with(backend);
    let broker = CrossBroker::new(&mut sim, handles, mds, config());
    let log = broker.event_log();
    log.set_journal(Journal::create(path, JournalConfig::default()).unwrap());
    if let Some(k) = crash_after {
        log.arm_crash(CrashPlan { after_event_seq: k });
    }
    if let Some(secs) = snapshot_at {
        let b = broker.clone();
        sim.schedule_at(SimTime::from_secs(secs), move |_sim| {
            b.journal_snapshot().unwrap();
        });
    }
    drive(&mut sim, &broker);
    sim.run_until(SimTime::from_secs(600));
    if let Some(j) = log.journal() {
        j.sync().unwrap();
    }
    (log.recorded(), log.crashed())
}

/// Recovers from `path` into a fresh world and runs it to quiescence.
fn recover_and_run(path: &PathBuf, seed: u64) -> (CrossBroker, RecoveryReport, Sim) {
    recover_and_run_with(path, seed, &BackendSpec::Sim)
}

fn recover_and_run_with(
    path: &PathBuf,
    seed: u64,
    backend: &BackendSpec,
) -> (CrossBroker, RecoveryReport, Sim) {
    let loaded = open_journal(path).unwrap();
    let mut sim = Sim::new(seed);
    let (handles, mds) = world_with(backend);
    let (broker, report) = CrossBroker::recover(&mut sim, handles, mds, config(), &loaded).unwrap();
    sim.run_until(report.crash_at + SimDuration::from_secs(600));
    (broker, report, sim)
}

#[test]
fn kill_point_sweep_recovers_identical_terminal_stats() {
    let base = tmp("sweep-base");
    let (total, crashed) = journaled_run(&base, None, None);
    assert!(!crashed);
    assert!(total > 20, "reference scenario too small: {total} events");

    let baseline = open_journal(&base).unwrap().replay_state().unwrap();
    assert_eq!(baseline.jobs.len(), 5);
    let mut base_buckets: BTreeMap<u64, Bucket> = BTreeMap::new();
    for (id, rj) in &baseline.jobs {
        assert!(
            rj.phase.is_terminal(),
            "baseline job {id} not terminal: {:?}",
            rj.phase
        );
        base_buckets.insert(*id, rj.phase.bucket());
    }
    assert_eq!(
        base_buckets
            .values()
            .filter(|b| **b == Bucket::Done)
            .count(),
        4,
        "healthy run: everything but the rejected job finishes: {:?}",
        baseline.jobs
    );

    let crash = tmp("sweep-crash");
    for k in 0..total {
        let (_, crashed) = journaled_run(&crash, Some(k), None);
        assert!(crashed, "kill point {k} of {total} must fire");

        let loaded = open_journal(&crash).unwrap();
        let expected = loaded.replay_state().unwrap();
        let (broker, report, _sim) = recover_and_run(&crash, 1_000 + k);
        assert!(
            report.violations.is_empty(),
            "k={k}: recovery invariants violated: {:?}",
            report.violations
        );

        for (id, rj) in &expected.jobs {
            let state = broker.record(JobId(*id)).state;
            assert!(
                matches!(state, JobState::Done | JobState::Failed { .. }),
                "k={k}: job {id} never reached a terminal state: {state:?}"
            );
            // A job whose JobAd commit record missed the journal was never
            // durably submitted: recovery aborts it. Every other journaled
            // job must end in the same bucket as the uncrashed run.
            let want = if !rj.phase.is_terminal() && (rj.jdl.is_none() || rj.runtime_ns.is_none()) {
                Bucket::Errored
            } else {
                base_buckets[id]
            };
            assert_eq!(
                bucket_of(&state),
                want,
                "k={k}: job {id} diverged from the uncrashed run: {state:?}"
            );
        }

        let new_epoch = crossgrid::trace::check_invariants(&broker.event_log().snapshot());
        assert!(
            new_epoch.is_empty(),
            "k={k}: new-epoch stream broken: {new_epoch:?}"
        );
    }
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&crash);
}

/// The kill-point sweep again, but with every site on the thread-pool
/// backend: real worker threads execute alongside the sim. By the sim-time
/// bridging rule they must not perturb the journal or recovery at all, so
/// the uncrashed run journals the same number of events as the sim run,
/// every job lands in the sim run's bucket, and a strided sweep of kill
/// points recovers (into a thread-pool world) to those same buckets.
#[test]
fn kill_point_sweep_is_backend_invariant_under_the_thread_pool() {
    let spec = BackendSpec::ThreadPool { threads: 2 };

    let sim_base = tmp("tp-sim-base");
    let (sim_total, _) = journaled_run(&sim_base, None, None);
    let sim_state = open_journal(&sim_base).unwrap().replay_state().unwrap();
    let base_buckets: BTreeMap<u64, Bucket> = sim_state
        .jobs
        .iter()
        .map(|(id, rj)| (*id, rj.phase.bucket()))
        .collect();

    let tp_base = tmp("tp-base");
    let (tp_total, crashed) = journaled_run_with(&tp_base, None, None, &spec);
    assert!(!crashed);
    assert_eq!(
        tp_total, sim_total,
        "the thread pool journaled a different event count than the sim"
    );
    let tp_state = open_journal(&tp_base).unwrap().replay_state().unwrap();
    assert_eq!(tp_state.jobs.len(), base_buckets.len());
    for (id, rj) in &tp_state.jobs {
        assert_eq!(
            rj.phase.bucket(),
            base_buckets[id],
            "job {id} diverged from the sim backend under the thread pool"
        );
    }

    // Strided sweep: enough kill points to cross every lifecycle phase
    // without re-running the full per-event sweep a second time.
    let crash = tmp("tp-crash");
    for k in (0..tp_total).step_by(5) {
        let (_, crashed) = journaled_run_with(&crash, Some(k), None, &spec);
        assert!(crashed, "kill point {k} of {tp_total} must fire");

        let expected = open_journal(&crash).unwrap().replay_state().unwrap();
        let (broker, report, _sim) = recover_and_run_with(&crash, 5_000 + k, &spec);
        assert!(
            report.violations.is_empty(),
            "k={k}: recovery invariants violated: {:?}",
            report.violations
        );
        for (id, rj) in &expected.jobs {
            let state = broker.record(JobId(*id)).state;
            let want = if !rj.phase.is_terminal() && (rj.jdl.is_none() || rj.runtime_ns.is_none()) {
                Bucket::Errored
            } else {
                base_buckets[id]
            };
            assert_eq!(
                bucket_of(&state),
                want,
                "k={k}: job {id} diverged from the sim-backend run: {state:?}"
            );
        }
    }
    let _ = std::fs::remove_file(&sim_base);
    let _ = std::fs::remove_file(&tp_base);
    let _ = std::fs::remove_file(&crash);
}

/// The churn world: alpha's gatekeeper link and MDS publication path share
/// one long outage window (so the failure detector sees both signals die
/// together), beta stays clean. Live queries suspect alpha fast (three
/// failed probes at ~47 s), but Suspect sites get exactly one probe per
/// sweep, so the query streak alone never reaches the dead threshold —
/// it is the missed refreshes (t = 300/600/900/1200) that harden alpha
/// to `Dead` at 1_200 s. The window ends at 1_300 s so the t = 1_500 s
/// refresh publishes cleanly and the uncrashed run journals the rejoin.
fn churn_outage() -> FaultSchedule {
    FaultSchedule::from_windows(vec![(SimTime::from_secs(20), SimTime::from_secs(1_300))])
}

fn churn_world() -> (Vec<SiteHandle>, Link) {
    let handles = ["alpha", "beta"]
        .iter()
        .map(|name| {
            let site = Site::new(SiteConfig {
                name: (*name).into(),
                nodes: 2,
                policy: Policy::Fifo,
                ..SiteConfig::default()
            });
            let faults = if *name == "alpha" {
                churn_outage()
            } else {
                FaultSchedule::none()
            };
            SiteHandle {
                site,
                broker_link: Link::with_faults(LinkProfile::campus(), faults.clone()),
                ui_link: Link::with_faults(LinkProfile::campus(), faults),
            }
        })
        .collect();
    let mds = Link::with_faults(LinkProfile::wan_mds(), FaultSchedule::none());
    (handles, mds)
}

fn churn_config() -> BrokerConfig {
    BrokerConfig {
        max_resubmissions: 10,
        publish_faults: vec![churn_outage(), FaultSchedule::none()],
        ..BrokerConfig::default()
    }
}

/// Exclusive interactive jobs thrown across the outage timeline: before it
/// (0 s), into the suspect window (45 s drives the three failed probes;
/// 300 s and 700 s keep probing without retries), while alpha is dead
/// (1_250 s — the site must vanish from the sweep), and after its rejoin
/// (1_600 s). Submissions are spaced past the 30 s exclusive lease so at
/// most one job is ever in flight: a kill point therefore resubmits at
/// most one job into the recovered epoch, and every job lands `Done` on
/// beta alone regardless of alpha's health.
fn churn_drive(sim: &mut Sim, broker: &CrossBroker) {
    broker.submit(sim, exclusive(), SimDuration::from_secs(10));
    for at in [45u64, 300, 700, 1_250, 1_600] {
        let b = broker.clone();
        sim.schedule_at(SimTime::from_secs(at), move |sim| {
            b.submit(sim, exclusive(), SimDuration::from_secs(10));
        });
    }
}

fn churn_journaled_run(path: &PathBuf, crash_after: Option<u64>) -> (u64, bool) {
    let _ = std::fs::remove_file(path);
    let mut sim = Sim::new(SEED);
    let (handles, mds) = churn_world();
    let broker = CrossBroker::new(&mut sim, handles, mds, churn_config());
    let log = broker.event_log();
    log.set_journal(Journal::create(path, JournalConfig::default()).unwrap());
    if let Some(k) = crash_after {
        log.arm_crash(CrashPlan { after_event_seq: k });
    }
    churn_drive(&mut sim, &broker);
    sim.run_until(SimTime::from_secs(2_400));
    if let Some(j) = log.journal() {
        j.sync().unwrap();
    }
    (log.recorded(), log.crashed())
}

#[test]
fn churn_kill_point_sweep_rebuilds_membership_from_the_journal() {
    use crossgrid::site::MembershipState;
    use crossgrid::trace::replay::SiteHealth;

    let base = tmp("churn-base");
    let (total, crashed) = churn_journaled_run(&base, None);
    assert!(!crashed);

    // The reference run must actually exercise the whole lifecycle, or the
    // sweep proves nothing about membership recovery.
    let loaded = open_journal(&base).unwrap();
    let kinds: Vec<&str> = loaded.events.iter().map(|e| e.event.kind()).collect();
    for needed in ["SiteSuspect", "SiteDead", "SiteRejoin", "QueryRetry"] {
        assert!(kinds.contains(&needed), "reference run never saw {needed}");
    }
    let baseline = loaded.replay_state().unwrap();
    assert_eq!(baseline.jobs.len(), 6);
    let mut base_buckets: BTreeMap<u64, Bucket> = BTreeMap::new();
    for (id, rj) in &baseline.jobs {
        assert!(
            rj.phase.is_terminal(),
            "baseline job {id} not terminal: {:?}",
            rj.phase
        );
        base_buckets.insert(*id, rj.phase.bucket());
    }
    assert!(
        baseline.site_health.is_empty(),
        "the outage ends inside the run: alpha must have rejoined"
    );

    let crash = tmp("churn-crash");
    let mut mid_outage_kill_points = 0usize;
    for k in 0..total {
        let (_, crashed) = churn_journaled_run(&crash, Some(k));
        assert!(crashed, "kill point {k} of {total} must fire");

        let loaded = open_journal(&crash).unwrap();
        let expected = loaded.replay_state().unwrap();
        let mut sim = Sim::new(3_000 + k);
        let (handles, mds) = churn_world();
        let (broker, report) =
            CrossBroker::recover(&mut sim, handles, mds, churn_config(), &loaded).unwrap();
        assert!(
            report.violations.is_empty(),
            "k={k}: recovery invariants violated: {:?}",
            report.violations
        );

        // Before the recovered epoch runs: the failure detector's verdicts
        // must be rebuilt exactly as the journal last saw them.
        let index = broker.index();
        for (site, health) in &expected.site_health {
            let i = ["alpha", "beta"]
                .iter()
                .position(|n| n == site)
                .unwrap_or_else(|| panic!("k={k}: unknown site {site} in the health registry"));
            let want = match health {
                SiteHealth::Suspect => MembershipState::Suspect,
                SiteHealth::Dead => MembershipState::Dead,
            };
            assert_eq!(
                index.membership_state(i),
                want,
                "k={k}: {site} membership not rebuilt from the journal"
            );
            assert!(
                !index.is_schedulable(i),
                "k={k}: {site} schedulable while {want:?}"
            );
            mid_outage_kill_points += 1;
        }
        if expected.site_health.is_empty() {
            assert!(
                index.is_schedulable(0) && index.is_schedulable(1),
                "k={k}: healthy sites must come back schedulable"
            );
        }

        // The recovered epoch must converge to the uncrashed run's buckets.
        sim.run_until(report.crash_at + SimDuration::from_secs(2_400));
        for (id, rj) in &expected.jobs {
            let state = broker.record(JobId(*id)).state;
            assert!(
                matches!(state, JobState::Done | JobState::Failed { .. }),
                "k={k}: job {id} never reached a terminal state: {state:?}"
            );
            let want = if !rj.phase.is_terminal() && (rj.jdl.is_none() || rj.runtime_ns.is_none()) {
                Bucket::Errored
            } else {
                base_buckets[id]
            };
            assert_eq!(
                bucket_of(&state),
                want,
                "k={k}: job {id} diverged from the uncrashed run: {state:?}"
            );
        }
        let new_epoch = crossgrid::trace::check_invariants(&broker.event_log().snapshot());
        assert!(
            new_epoch.is_empty(),
            "k={k}: new-epoch stream broken: {new_epoch:?}"
        );
    }
    assert!(
        mid_outage_kill_points > 0,
        "no kill point landed while alpha was Suspect/Dead — the sweep is vacuous"
    );
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&crash);
}

#[test]
fn snapshot_bounds_the_replayed_tail() {
    let base = tmp("snap-base");
    let (total, _) = journaled_run(&base, None, Some(60));
    let baseline = open_journal(&base).unwrap().replay_state().unwrap();

    // Crash near the end: well after the t=60 s snapshot was written.
    let crash = tmp("snap-crash");
    let k = total - 3;
    let (_, crashed) = journaled_run(&crash, Some(k), Some(60));
    assert!(crashed);

    let loaded = open_journal(&crash).unwrap();
    let snap = loaded.snapshot.as_ref().expect("snapshot present");
    assert!(
        loaded.events.iter().all(|e| e.seq > snap.through_seq),
        "tail must start after the snapshot"
    );
    assert!(
        (loaded.events.len() as u64) < total,
        "snapshot did not bound the tail"
    );

    let (broker, report, _sim) = recover_and_run(&crash, 42);
    assert!(report.from_snapshot);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    for (id, rj) in &baseline.jobs {
        let state = broker.record(JobId(*id)).state;
        assert_eq!(
            bucket_of(&state),
            rj.phase.bucket(),
            "job {id} diverged across snapshot-bounded recovery"
        );
    }
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&crash);
}

#[test]
fn torn_tails_and_bit_flips_never_panic_and_corruption_is_typed() {
    let path = tmp("fuzz");
    journaled_run(&path, None, None);
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.len() > 1_000, "journal too small to fuzz");

    // Torn tails: every cut inside the final records, strided elsewhere.
    // Reopening must yield a clean (possibly shorter) journal or a typed
    // error — and folding whatever survived must not panic either.
    let dense_from = bytes.len().saturating_sub(600);
    for cut in (0..bytes.len()).filter(|i| *i >= dense_from || i % 7 == 0) {
        match parse_journal(&bytes[..cut]) {
            Ok(loaded) => {
                let _ = loaded.replay_state();
            }
            Err(JournalError::Corrupt { .. }) => {}
            Err(e) => panic!("cut={cut}: unexpected error kind: {e:?}"),
        }
    }

    // Bit flips: every flip is either caught by the CRC (typed Corrupt), or
    // lands in framing where it reads as a torn tail (shorter clean
    // journal). Nothing may panic, and the CRC must actually catch some.
    let mut corrupt = 0usize;
    for pos in (8..bytes.len()).step_by(11) {
        for bit in [0u8, 3, 7] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            match parse_journal(&mutated) {
                Ok(loaded) => {
                    let _ = loaded.replay_state();
                }
                Err(JournalError::Corrupt { .. }) => corrupt += 1,
                Err(e) => panic!("pos={pos} bit={bit}: unexpected error kind: {e:?}"),
            }
        }
    }
    assert!(
        corrupt > 0,
        "no bit flip tripped the CRC — framing is not actually checked"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovery_from_a_healthy_complete_journal_is_a_no_op_rebuild() {
    let path = tmp("complete");
    let (total, crashed) = journaled_run(&path, None, None);
    assert!(!crashed);

    let (broker, report, _sim) = recover_and_run(&path, 99);
    assert_eq!(report.jobs, 5);
    assert_eq!(
        report.terminal, 5,
        "complete journal: nothing left in flight"
    );
    assert_eq!(report.requeued + report.resubmitted + report.aborted, 0);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.tail_events, total);
    let stats = broker.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.finished, 4);
    assert_eq!(stats.rejected, 1);
    let _ = std::fs::remove_file(&path);
}
