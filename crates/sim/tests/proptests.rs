//! Property tests for the simulation engine's core invariants.

use cg_sim::{Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always execute in nondecreasing time order, whatever the
    /// schedule pattern, including events scheduled from inside handlers.
    #[test]
    fn execution_order_is_monotone(delays in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut sim = Sim::new(0);
        let times: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let times = Rc::clone(&times);
            sim.schedule_in(SimDuration::from_nanos(d), move |sim| {
                times.borrow_mut().push(sim.now().as_nanos());
                // Half the handlers schedule a follow-up.
                if d % 2 == 0 {
                    let times = Rc::clone(&times);
                    sim.schedule_in(SimDuration::from_nanos(d / 2 + 1), move |sim| {
                        times.borrow_mut().push(sim.now().as_nanos());
                    });
                }
            });
        }
        sim.run();
        let times = times.borrow();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The clock after a drained run equals the max scheduled instant.
    #[test]
    fn final_clock_is_latest_event(delays in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut sim = Sim::new(0);
        for &d in &delays {
            sim.schedule_in(SimDuration::from_nanos(d), |_| {});
        }
        sim.run();
        prop_assert_eq!(sim.now().as_nanos(), *delays.iter().max().unwrap());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_is_exact(spec in prop::collection::vec((0u64..10_000, any::<bool>()), 1..100)) {
        let mut sim = Sim::new(0);
        let fired: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let mut cancel_ids = Vec::new();
        let mut kept = Vec::new();
        for (i, &(d, cancel)) in spec.iter().enumerate() {
            let fired = Rc::clone(&fired);
            let id = sim.schedule_in(SimDuration::from_nanos(d), move |_| {
                fired.borrow_mut().push(i);
            });
            if cancel {
                cancel_ids.push(id);
            } else {
                kept.push(i);
            }
        }
        for id in cancel_ids {
            prop_assert!(sim.cancel(id));
        }
        sim.run();
        let mut got = fired.borrow().clone();
        got.sort_unstable();
        prop_assert_eq!(got, kept);
    }

    /// Same seed, same model: identical event count and final clock.
    /// Different seeds: the randomized model diverges (almost surely).
    #[test]
    fn determinism_under_seed(seed in any::<u64>(), n in 1u32..50) {
        fn run(seed: u64, n: u32) -> (u64, SimTime) {
            let mut sim = Sim::new(seed);
            fn arrival(sim: &mut Sim, left: u32) {
                if left == 0 { return; }
                let d = sim.rng().exp(1.0);
                sim.schedule_in(d, move |sim| arrival(sim, left - 1));
            }
            sim.schedule_now(move |sim| arrival(sim, n));
            sim.run();
            (sim.events_executed(), sim.now())
        }
        prop_assert_eq!(run(seed, n), run(seed, n));
    }

    /// Horizon splitting is transparent: running to t then to the end visits
    /// the same number of events as running straight through.
    #[test]
    fn run_until_composes(delays in prop::collection::vec(0u64..1_000, 1..100), split in 0u64..1_000) {
        let build = |sim: &mut Sim, delays: &[u64]| {
            for &d in delays {
                sim.schedule_in(SimDuration::from_nanos(d), |_| {});
            }
        };
        let mut whole = Sim::new(0);
        build(&mut whole, &delays);
        whole.run();

        let mut split_sim = Sim::new(0);
        build(&mut split_sim, &delays);
        split_sim.run_until(SimTime::from_nanos(split));
        split_sim.run();

        prop_assert_eq!(whole.events_executed(), split_sim.events_executed());
        prop_assert_eq!(whole.now().as_nanos(), split_sim.now().as_nanos());
    }
}
