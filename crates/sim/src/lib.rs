//! # cg-sim — deterministic discrete-event simulation engine
//!
//! Foundation of the CrossGrid reproduction. The paper's evaluation ran on an
//! 18-site European testbed; this crate provides the substitute substrate: a
//! single-threaded, seeded, integer-nanosecond discrete-event simulator whose
//! runs are bit-for-bit reproducible.
//!
//! Pieces:
//! - [`SimTime`] / [`SimDuration`] — integer-nanosecond clock.
//! - [`Sim`] — the event loop; events are `FnOnce(&mut Sim)` closures,
//!   time ties break on schedule order.
//! - [`SimRng`] — seeded random stream with the distributions the models use
//!   (exponential, normal, log-normal, Pareto), all implemented locally so an
//!   upstream library change can never shift experiment outputs.
//! - [`OnlineStats`] / [`SampleSet`] / [`Histogram`] / [`TimeSeries`] —
//!   measurement collection.
//! - [`Resource`] — counted capacity with a FIFO wait queue (CPUs, queue
//!   slots).
//!
//! ```
//! use cg_sim::{Sim, SimDuration, SampleSet};
//! use std::{cell::RefCell, rc::Rc};
//!
//! let mut sim = Sim::new(0xC0FFEE);
//! let rtts = Rc::new(RefCell::new(SampleSet::new()));
//!
//! // A ping: a message leaves now, the reply arrives one jittered RTT later.
//! for _ in 0..100 {
//!     let sent = sim.now();
//!     let rtt = sim.rng().normal_duration(0.030, 0.002);
//!     let rtts2 = Rc::clone(&rtts);
//!     sim.schedule_in(rtt, move |sim| {
//!         rtts2.borrow_mut().record_duration(sim.now() - sent);
//!     });
//! }
//! sim.run();
//! assert_eq!(rtts.borrow().len(), 100);
//! assert!((rtts.borrow().mean() - 0.030).abs() < 0.002);
//! ```

#![warn(missing_docs)]

mod engine;
mod resource;
mod rng;
mod stats;
mod time;

pub use engine::{EventId, RunOutcome, Sim};
pub use resource::Resource;
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, SampleSet, TimeSeries};
pub use time::{SimDuration, SimTime};
