//! Deterministic random streams and the distributions the models need.
//!
//! Only `rand`'s uniform primitives are used; every other distribution
//! (exponential, normal, log-normal, Pareto) is derived here so the workspace
//! needs no extra crates and the sampling algorithms are pinned — a library
//! upgrade can never silently change experiment outputs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A seeded random stream. One per simulation; components that need their own
/// independent stream should [`fork`](SimRng::fork) it.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream. The child's seed is drawn from this
    /// stream, so fork order matters — fork everything up front in model
    /// construction, not lazily.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        if lo == hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty, matching `gen_range`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0) requested");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed duration with the given mean (in seconds).
    /// Mean ≤ 0 returns zero.
    pub fn exp(&mut self, mean_secs: f64) -> SimDuration {
        if mean_secs <= 0.0 {
            return SimDuration::ZERO;
        }
        // Inverse CDF; 1-u avoids ln(0).
        let u = self.f64();
        SimDuration::from_secs_f64(-mean_secs * (1.0 - u).ln())
    }

    /// Standard normal via Box–Muller (one value per call; we do not cache the
    /// pair so the stream stays a simple function of draw count).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Normally distributed duration, truncated below at zero.
    pub fn normal_duration(&mut self, mean_secs: f64, std_dev_secs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.normal(mean_secs, std_dev_secs))
    }

    /// Log-normal with given median and sigma (of the underlying normal);
    /// a good model for long-tailed middleware latencies.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.std_normal()).exp()
    }

    /// Log-normally distributed duration.
    pub fn log_normal_duration(&mut self, median_secs: f64, sigma: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.log_normal(median_secs, sigma))
    }

    /// Pareto with scale `xm` and shape `alpha` (heavy-tailed sizes).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        xm / u.powf(1.0 / alpha)
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Raw `u64` (for deriving sub-seeds outside the sim).
    pub fn u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn determinism_and_fork_independence() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        let xs: Vec<f64> = (0..10).map(|_| a.f64()).collect();
        let ys: Vec<f64> = (0..10).map(|_| b.f64()).collect();
        assert_eq!(xs, ys);

        let mut parent = SimRng::new(1);
        let mut child = parent.fork();
        let px: Vec<f64> = (0..10).map(|_| parent.f64()).collect();
        let cx: Vec<f64> = (0..10).map(|_| child.f64()).collect();
        assert_ne!(px, cx);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(5);
        for _ in 0..1_000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn exp_mean_is_right() {
        let mut rng = SimRng::new(7);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.exp(2.0).as_secs_f64()).collect();
        let (mean, _) = sample_stats(&samples);
        assert!((mean - 2.0).abs() < 0.05, "exp mean {mean} far from 2.0");
        assert_eq!(rng.exp(0.0), SimDuration::ZERO);
        assert_eq!(rng.exp(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn normal_moments_are_right() {
        let mut rng = SimRng::new(11);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.normal(10.0, 3.0)).collect();
        let (mean, sd) = sample_stats(&samples);
        assert!((mean - 10.0).abs() < 0.1, "normal mean {mean}");
        assert!((sd - 3.0).abs() < 0.1, "normal sd {sd}");
    }

    #[test]
    fn normal_duration_truncates_at_zero() {
        let mut rng = SimRng::new(13);
        for _ in 0..1_000 {
            // Mean 0, huge sd: about half of raw draws are negative.
            let d = rng.normal_duration(0.0, 10.0);
            assert!(d.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn log_normal_median_is_right() {
        let mut rng = SimRng::new(17);
        let mut samples: Vec<f64> = (0..20_001).map(|_| rng.log_normal(5.0, 0.5)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 5.0).abs() < 0.2, "log-normal median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::new(19);
        for _ in 0..1_000 {
            assert!(rng.pareto(3.0, 2.0) >= 3.0);
        }
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!(
            (2_700..3_300).contains(&hits),
            "chance(0.3) hit {hits}/10000"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(29);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100-element shuffle left input untouched");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SimRng::new(31);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
