//! The event loop.
//!
//! [`Sim`] owns a priority queue of scheduled events. Each event is a boxed
//! `FnOnce(&mut Sim)` so handlers can schedule further events, advance
//! statistics, or mutate components captured as `Rc<RefCell<_>>`. Ties in time
//! break on the monotonically increasing sequence number, which makes the
//! execution order a pure function of the schedule calls — runs with the same
//! seed are identical.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Handle for a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (unique per simulation run).
    pub fn raw(self) -> u64 {
        self.0
    }
}

type Action = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    time: SimTime,
    id: EventId,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.id).cmp(&(other.time, other.id))
    }
}

/// Outcome of [`Sim::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The configured event budget was exhausted (runaway guard).
    BudgetExhausted,
}

/// A deterministic discrete-event simulation.
///
/// ```
/// use cg_sim::{Sim, SimDuration};
///
/// let mut sim = Sim::new(42);
/// sim.schedule_in(SimDuration::from_secs(5), |sim| {
///     assert_eq!(sim.now().as_secs_f64(), 5.0);
/// });
/// sim.run();
/// assert_eq!(sim.now().as_secs_f64(), 5.0);
/// ```
pub struct Sim {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Reverse<Entry>>,
    cancelled: HashSet<EventId>,
    rng: SimRng,
    executed: u64,
    event_budget: u64,
    trace: Option<Box<dyn FnMut(SimTime, EventId)>>,
}

impl Sim {
    /// Creates a simulation whose random stream is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            rng: SimRng::new(seed),
            executed: 0,
            event_budget: u64::MAX,
            trace: None,
        }
    }

    /// Caps the total number of events executed; exceeding it stops the run
    /// with [`RunOutcome::BudgetExhausted`]. A guard against runaway models.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Installs a hook invoked before each event executes (debug tracing).
    pub fn set_trace(&mut self, hook: impl FnMut(SimTime, EventId) + 'static) {
        self.trace = Some(Box::new(hook));
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled-but-unswept).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// The simulation's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is always
    /// a model bug and silently clamping would hide it.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            id,
            action: Box::new(action),
        }));
        id
    }

    /// Schedules `action` after `delay` of simulated time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, action)
    }

    /// Schedules `action` to run at the current instant, after all events
    /// already scheduled for this instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut Sim) + 'static) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet fired
    /// (cancelling an already-executed or already-cancelled event is a no-op).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Runs until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs events with `time <= horizon`. On return the clock reads either
    /// the time of the last executed event (drained) or `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            let next_time = match self.heap.peek() {
                None => return RunOutcome::Drained,
                Some(Reverse(e)) => e.time,
            };
            if next_time > horizon {
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked entry vanished");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            if self.executed >= self.event_budget {
                self.now = entry.time;
                return RunOutcome::BudgetExhausted;
            }
            debug_assert!(entry.time >= self.now, "event heap returned past event");
            self.now = entry.time;
            self.executed += 1;
            if let Some(hook) = self.trace.as_mut() {
                hook(entry.time, entry.id);
            }
            (entry.action)(self);
        }
    }

    /// Runs a single event if one is pending; returns whether one ran.
    /// Cancelled entries are swept without counting as a step.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(Reverse(entry)) = self.heap.pop() else {
                return false;
            };
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.now = entry.time;
            self.executed += 1;
            if let Some(hook) = self.trace.as_mut() {
                hook(entry.time, entry.id);
            }
            (entry.action)(self);
            return true;
        }
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(3u64, 3u32), (1, 1), (2, 2)] {
            let log = Rc::clone(&log);
            sim.schedule_in(SimDuration::from_secs(delay), move |_| {
                log.borrow_mut().push(tag);
            });
        }
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..10u32 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more() {
        let mut sim = Sim::new(1);
        let count = Rc::new(RefCell::new(0u32));
        fn tick(sim: &mut Sim, count: Rc<RefCell<u32>>, left: u32) {
            *count.borrow_mut() += 1;
            if left > 0 {
                sim.schedule_in(SimDuration::from_millis(10), move |sim| {
                    tick(sim, count, left - 1);
                });
            }
        }
        let c = Rc::clone(&count);
        sim.schedule_now(move |sim| tick(sim, c, 4));
        sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(40));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(false));
        let f = Rc::clone(&fired);
        let id = sim.schedule_in(SimDuration::from_secs(1), move |_| *f.borrow_mut() = true);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut sim = Sim::new(1);
        assert!(!sim.cancel(EventId(999)));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(0u32));
        for s in [1u64, 2, 3] {
            let f = Rc::clone(&fired);
            sim.schedule_in(SimDuration::from_secs(s), move |_| *f.borrow_mut() += 1);
        }
        assert_eq!(
            sim.run_until(SimTime::from_secs(2)),
            RunOutcome::HorizonReached
        );
        assert_eq!(*fired.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*fired.borrow(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(1);
        sim.schedule_in(SimDuration::from_secs(5), |sim| {
            sim.schedule_at(SimTime::from_secs(1), |_| {});
        });
        sim.run();
    }

    #[test]
    fn event_budget_halts_runaway() {
        let mut sim = Sim::new(1);
        sim.set_event_budget(100);
        fn forever(sim: &mut Sim) {
            sim.schedule_in(SimDuration::from_nanos(1), forever);
        }
        sim.schedule_now(forever);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_executed(), 100);
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn trace_of(seed: u64) -> Vec<(u64, u64)> {
            let trace = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(seed);
            let t = Rc::clone(&trace);
            sim.set_trace(move |time, id| t.borrow_mut().push((time.as_nanos(), id.raw())));
            // A little model with randomized delays.
            fn arrival(sim: &mut Sim, left: u32) {
                if left == 0 {
                    return;
                }
                let d = sim.rng().exp(0.5);
                sim.schedule_in(d, move |sim| arrival(sim, left - 1));
            }
            sim.schedule_now(move |sim| arrival(sim, 50));
            sim.run();
            let out = trace.borrow().clone();
            out
        }
        assert_eq!(trace_of(7), trace_of(7));
        assert_ne!(trace_of(7), trace_of(8));
    }

    #[test]
    fn step_executes_one_event() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(0u32));
        for _ in 0..3 {
            let f = Rc::clone(&fired);
            sim.schedule_in(SimDuration::from_secs(1), move |_| *f.borrow_mut() += 1);
        }
        assert!(sim.step());
        assert_eq!(*fired.borrow(), 1);
        assert!(sim.step());
        assert!(sim.step());
        assert!(!sim.step());
    }
}
