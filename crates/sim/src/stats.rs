//! Measurement collection: online moments, sample sets with percentiles,
//! histograms, and time series — everything the experiment harnesses report.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance/min/max via Welford's algorithm. O(1) memory,
/// suitable for counters that live for millions of events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator (parallel reduction of Welford states).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Keeps every sample; supports exact percentiles. Use for experiment outputs
/// (thousands of points), not hot counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
}

impl SampleSet {
    /// An empty set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / self.samples.len() as f64)
            .sqrt()
    }

    /// Exact percentile by nearest-rank (`p` in `[0, 100]`). `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).floor() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Minimum. `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().min_by(f64::total_cmp)
    }

    /// Maximum. `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().max_by(f64::total_cmp)
    }

    /// One-line summary used by the harness tables.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={:.6} sd={:.6} min={:.6} p50={:.6} p95={:.6} max={:.6}",
            self.len(),
            self.mean(),
            self.std_dev(),
            self.min().unwrap(),
            self.median().unwrap(),
            self.percentile(95.0).unwrap(),
            self.max().unwrap(),
        )
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram range inverted");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// A `(time, value)` series, e.g. priority trajectories or queue lengths.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point at simulated time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs_f64(), value));
    }

    /// The collected points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time-weighted average of a piecewise-constant signal between the first
    /// and last recorded instants. `None` with fewer than two points.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            acc += w[0].1 * (w[1].0 - w[0].0);
        }
        let span = self.points.last().unwrap().0 - self.points[0].0;
        (span > 0.0).then(|| acc / span)
    }

    /// Writes the series as CSV rows (`t,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,value\n");
        for (t, v) in &self.points {
            out.push_str(&format!("{t},{v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty_is_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_equals_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);

        let mut empty = OnlineStats::new();
        empty.merge(&whole);
        assert!((empty.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn sample_set_percentiles() {
        let mut s = SampleSet::new();
        for x in 1..=100 {
            s.record(x as f64);
        }
        assert_eq!(s.median(), Some(50.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn sample_set_empty() {
        let s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.summary(), "n=0");
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 5.0, 9.99, -1.0, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn time_series_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(0), 1.0);
        ts.record(SimTime::from_secs(10), 3.0); // value 1.0 held for 10 s
        ts.record(SimTime::from_secs(20), 0.0); // value 3.0 held for 10 s
        assert_eq!(ts.time_weighted_mean(), Some(2.0));
        assert!(ts.to_csv().starts_with("t,value\n0,1\n"));
    }

    #[test]
    fn time_series_degenerate() {
        let mut ts = TimeSeries::new();
        assert_eq!(ts.time_weighted_mean(), None);
        ts.record(SimTime::ZERO, 5.0);
        assert_eq!(ts.time_weighted_mean(), None);
        ts.record(SimTime::ZERO, 6.0); // zero span
        assert_eq!(ts.time_weighted_mean(), None);
    }
}
