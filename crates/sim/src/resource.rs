//! Counted resources with FIFO wait queues — the building block for CPUs,
//! queue slots, and any other capacity-limited thing in the models.
//!
//! A [`Resource`] is a cheap clonable handle (`Rc<RefCell<_>>` inside; the
//! engine is single-threaded). `acquire` either grants immediately or parks
//! the continuation; `release` wakes the head of the queue at the current
//! simulated instant.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::Sim;
use crate::time::SimTime;

type Waiter = Box<dyn FnOnce(&mut Sim)>;

struct Inner {
    capacity: u64,
    in_use: u64,
    queue: VecDeque<(SimTime, Waiter)>,
    peak_queue: usize,
    grants: u64,
}

/// A counted resource. Clones share state.
#[derive(Clone)]
pub struct Resource {
    inner: Rc<RefCell<Inner>>,
}

impl Resource {
    /// Creates a resource with `capacity` units.
    ///
    /// # Panics
    /// Panics on zero capacity — a resource nothing can ever hold is a bug.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "resource with zero capacity");
        Resource {
            inner: Rc::new(RefCell::new(Inner {
                capacity,
                in_use: 0,
                queue: VecDeque::new(),
                peak_queue: 0,
                grants: 0,
            })),
        }
    }

    /// Requests one unit. If a unit is free it is granted and `then` runs via
    /// `schedule_now` (keeping the "handlers never re-enter" invariant);
    /// otherwise `then` is parked FIFO until a release.
    pub fn acquire(&self, sim: &mut Sim, then: impl FnOnce(&mut Sim) + 'static) {
        let mut inner = self.inner.borrow_mut();
        if inner.in_use < inner.capacity {
            inner.in_use += 1;
            inner.grants += 1;
            drop(inner);
            sim.schedule_now(then);
        } else {
            inner.queue.push_back((sim.now(), Box::new(then)));
            let depth = inner.queue.len();
            inner.peak_queue = inner.peak_queue.max(depth);
        }
    }

    /// Tries to take one unit without queueing. Returns whether it succeeded.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.in_use < inner.capacity {
            inner.in_use += 1;
            inner.grants += 1;
            true
        } else {
            false
        }
    }

    /// Returns one unit. If waiters are parked, the head is granted the unit
    /// and scheduled at the current instant.
    ///
    /// # Panics
    /// Panics if no unit is held — a double release is always a model bug.
    pub fn release(&self, sim: &mut Sim) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.in_use > 0, "release without matching acquire");
        if let Some((_, waiter)) = inner.queue.pop_front() {
            // Unit moves directly to the waiter; in_use stays constant.
            inner.grants += 1;
            drop(inner);
            sim.schedule_now(waiter);
        } else {
            inner.in_use -= 1;
        }
    }

    /// Units currently held.
    pub fn in_use(&self) -> u64 {
        self.inner.borrow().in_use
    }

    /// Units free right now.
    pub fn available(&self) -> u64 {
        let inner = self.inner.borrow();
        inner.capacity - inner.in_use
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.inner.borrow().capacity
    }

    /// Waiters currently parked.
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Deepest the wait queue has ever been.
    pub fn peak_queue(&self) -> usize {
        self.inner.borrow().peak_queue
    }

    /// Total grants issued (immediate + dequeued).
    pub fn grants(&self) -> u64 {
        self.inner.borrow().grants
    }
}

impl std::fmt::Debug for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Resource")
            .field("capacity", &inner.capacity)
            .field("in_use", &inner.in_use)
            .field("queued", &inner.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A job that holds the resource for `hold` then releases it, logging its tag.
    fn spawn_job(
        sim: &mut Sim,
        res: &Resource,
        tag: u32,
        hold: SimDuration,
        log: Rc<RefCell<Vec<(u32, f64)>>>,
    ) {
        let res2 = res.clone();
        res.acquire(sim, move |sim| {
            log.borrow_mut().push((tag, sim.now().as_secs_f64()));
            sim.schedule_in(hold, move |sim| res2.release(sim));
        });
    }

    #[test]
    fn grants_up_to_capacity_then_queues() {
        let mut sim = Sim::new(1);
        let res = Resource::new(2);
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..4 {
            spawn_job(
                &mut sim,
                &res,
                tag,
                SimDuration::from_secs(10),
                Rc::clone(&log),
            );
        }
        assert_eq!(res.queue_len(), 2);
        sim.run();
        // Jobs 0,1 start at t=0; 2,3 at t=10 when the first two release.
        let log = log.borrow();
        assert_eq!(log[0], (0, 0.0));
        assert_eq!(log[1], (1, 0.0));
        assert_eq!(log[2], (2, 10.0));
        assert_eq!(log[3], (3, 10.0));
        assert_eq!(res.in_use(), 0);
        assert_eq!(res.peak_queue(), 2);
        assert_eq!(res.grants(), 4);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut sim = Sim::new(1);
        let res = Resource::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            spawn_job(
                &mut sim,
                &res,
                tag,
                SimDuration::from_secs(1),
                Rc::clone(&log),
            );
        }
        sim.run();
        let order: Vec<u32> = log.borrow().iter().map(|&(t, _)| t).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_acquire_never_queues() {
        let res = Resource::new(1);
        assert!(res.try_acquire());
        assert!(!res.try_acquire());
        assert_eq!(res.queue_len(), 0);
        assert_eq!(res.available(), 0);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn double_release_panics() {
        let mut sim = Sim::new(1);
        let res = Resource::new(1);
        res.release(&mut sim);
    }

    #[test]
    fn release_hands_unit_directly_to_waiter() {
        let mut sim = Sim::new(1);
        let res = Resource::new(1);
        assert!(res.try_acquire());
        let got = Rc::new(RefCell::new(false));
        let g = Rc::clone(&got);
        res.acquire(&mut sim, move |_| *g.borrow_mut() = true);
        assert_eq!(res.queue_len(), 1);
        res.release(&mut sim);
        assert_eq!(res.in_use(), 1, "unit transferred, not freed");
        sim.run();
        assert!(*got.borrow());
    }

    #[test]
    fn available_tracks_state() {
        let res = Resource::new(3);
        assert_eq!(res.available(), 3);
        res.try_acquire();
        res.try_acquire();
        assert_eq!(res.available(), 1);
        assert_eq!(res.capacity(), 3);
    }
}
