//! Simulated time.
//!
//! All simulation time is kept in integer **nanoseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible: no floating-point
//! accumulation error can reorder two events between runs. Conversions to and
//! from `f64` seconds exist only at the measurement boundary (statistics,
//! report printing).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (measurement boundary only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero; values larger
    /// than the representable range clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Whole nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (measurement boundary only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float factor, rounding to the nearest
    /// nanosecond. Used by scaling models (e.g. CPU-share dilation).
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 500);
        assert_eq!(t - SimDuration::from_millis(500), SimTime::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn float_conversions_round() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(1e30);
        assert_eq!(d, SimDuration::MAX);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_dilates() {
        let d = SimDuration::from_secs(1).mul_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from_secs(3), SimTime::ZERO, SimTime::from_secs(1)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3));
    }
}
