//! Property tests on the network substrate.

use cg_net::{Dir, FaultSchedule, Link, LinkProfile};
use cg_sim::{Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn windows_strategy() -> impl Strategy<Value = Vec<(SimTime, SimTime)>> {
    prop::collection::vec((0u64..10_000, 0u64..10_000), 0..20).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, b)| (SimTime::from_secs(a), SimTime::from_secs(b)))
            .collect()
    })
}

/// Reference implementation: linear scan over the raw (unmerged) windows.
fn naive_is_down(raw: &[(SimTime, SimTime)], t: SimTime) -> bool {
    raw.iter().any(|&(s, e)| s < e && s <= t && t < e)
}

proptest! {
    /// The merged, binary-searched schedule answers exactly like a naive
    /// linear scan over the raw windows.
    #[test]
    fn fault_schedule_matches_naive(raw in windows_strategy(), probes in prop::collection::vec(0u64..11_000, 0..50)) {
        let schedule = FaultSchedule::from_windows(raw.clone());
        for p in probes {
            let t = SimTime::from_secs(p);
            prop_assert_eq!(schedule.is_down(t), naive_is_down(&raw, t), "at t={}", p);
        }
    }

    /// `up_at` returns an instant that is actually up, and is the earliest
    /// such instant at or after the probe.
    #[test]
    fn up_at_is_the_outage_end(raw in windows_strategy(), probe in 0u64..11_000) {
        let schedule = FaultSchedule::from_windows(raw);
        let t = SimTime::from_secs(probe);
        match schedule.up_at(t) {
            None => prop_assert!(!schedule.is_down(t)),
            Some(end) => {
                prop_assert!(schedule.is_down(t));
                prop_assert!(!schedule.is_down(end));
                prop_assert!(end > t);
            }
        }
    }

    /// Windows are sorted and disjoint after merging.
    #[test]
    fn merged_windows_are_canonical(raw in windows_strategy()) {
        let schedule = FaultSchedule::from_windows(raw);
        for w in schedule.windows().windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap or disorder: {w:?}");
        }
        for &(s, e) in schedule.windows() {
            prop_assert!(s < e);
        }
    }

    /// On a clean link, every message is delivered exactly once, and
    /// per-direction deliveries are in send order.
    #[test]
    fn clean_link_delivers_everything_in_order(
        sizes in prop::collection::vec(0u64..100_000, 1..40),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let link = Link::new(LinkProfile::wan_ifca());
        let deliveries: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &bytes) in sizes.iter().enumerate() {
            let d = Rc::clone(&deliveries);
            link.send(&mut sim, Dir::AToB, bytes, move |_, r| {
                r.unwrap();
                d.borrow_mut().push(i);
            });
        }
        sim.run();
        let got = deliveries.borrow().clone();
        prop_assert_eq!(got, (0..sizes.len()).collect::<Vec<_>>());
        prop_assert_eq!(link.stats().delivered, sizes.len() as u64);
        prop_assert_eq!(link.stats().failed, 0);
    }

    /// Every send gets exactly one outcome even across arbitrary outages:
    /// delivered + failed == sent.
    #[test]
    fn outcomes_are_exhaustive_under_faults(
        sizes in prop::collection::vec(1u64..10_000, 1..30),
        raw in windows_strategy(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let link = Link::with_faults(LinkProfile::campus(), FaultSchedule::from_windows(raw));
        let outcomes = Rc::new(RefCell::new(0u64));
        for (i, &bytes) in sizes.iter().enumerate() {
            let o = Rc::clone(&outcomes);
            let link2 = link.clone();
            // Spread sends over time so some hit outages.
            sim.schedule_at(SimTime::from_secs(i as u64 * 500), move |sim| {
                link2.send(sim, Dir::AToB, bytes, move |_, _| {
                    *o.borrow_mut() += 1;
                });
            });
        }
        sim.run();
        prop_assert_eq!(*outcomes.borrow(), sizes.len() as u64);
        let stats = link.stats();
        prop_assert_eq!(stats.delivered + stats.failed, sizes.len() as u64);
    }
}
