//! Property tests on the network substrate.

use cg_net::{Dir, FaultSchedule, Link, LinkProfile};
use cg_sim::{Sim, SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn windows_strategy() -> impl Strategy<Value = Vec<(SimTime, SimTime)>> {
    prop::collection::vec((0u64..10_000, 0u64..10_000), 0..20).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, b)| (SimTime::from_secs(a), SimTime::from_secs(b)))
            .collect()
    })
}

/// Reference implementation: linear scan over the raw (unmerged) windows.
fn naive_is_down(raw: &[(SimTime, SimTime)], t: SimTime) -> bool {
    raw.iter().any(|&(s, e)| s < e && s <= t && t < e)
}

/// The canonical-shape invariant every constructor must uphold: windows
/// sorted, non-overlapping (no touching either — touching windows merge),
/// and `start < end`.
fn assert_canonical(schedule: &FaultSchedule) {
    for w in schedule.windows().windows(2) {
        assert!(w[0].1 <= w[1].0, "overlap or disorder: {w:?}");
    }
    for &(s, e) in schedule.windows() {
        assert!(s < e, "degenerate window: [{s:?}, {e:?})");
    }
}

proptest! {
    /// The merged, binary-searched schedule answers exactly like a naive
    /// linear scan over the raw windows.
    #[test]
    fn fault_schedule_matches_naive(raw in windows_strategy(), probes in prop::collection::vec(0u64..11_000, 0..50)) {
        let schedule = FaultSchedule::from_windows(raw.clone());
        for p in probes {
            let t = SimTime::from_secs(p);
            prop_assert_eq!(schedule.is_down(t), naive_is_down(&raw, t), "at t={}", p);
        }
    }

    /// `up_at` returns an instant that is actually up, and is the earliest
    /// such instant at or after the probe.
    #[test]
    fn up_at_is_the_outage_end(raw in windows_strategy(), probe in 0u64..11_000) {
        let schedule = FaultSchedule::from_windows(raw);
        let t = SimTime::from_secs(probe);
        match schedule.up_at(t) {
            None => prop_assert!(!schedule.is_down(t)),
            Some(end) => {
                prop_assert!(schedule.is_down(t));
                prop_assert!(!schedule.is_down(end));
                prop_assert!(end > t);
            }
        }
    }

    /// Windows are sorted and disjoint after merging.
    #[test]
    fn merged_windows_are_canonical(raw in windows_strategy()) {
        let schedule = FaultSchedule::from_windows(raw);
        assert_canonical(&schedule);
    }

    /// Every constructor — explicit windows, periodic, random — emits the
    /// same canonical shape: sorted, non-overlapping, `start < end`.
    #[test]
    fn every_constructor_is_canonical(
        raw in windows_strategy(),
        first in 0u64..5_000,
        period in 0u64..600,
        down in 0u64..600,
        horizon in 0u64..20_000,
        seed in any::<u64>(),
        mean_up in 1u64..5_000,
        mean_down in 1u64..2_000,
    ) {
        assert_canonical(&FaultSchedule::from_windows(raw));
        assert_canonical(&FaultSchedule::periodic(
            SimTime::from_secs(first),
            SimDuration::from_secs(period),
            SimDuration::from_secs(down),
            SimTime::from_secs(horizon),
        ));
        let mut rng = SimRng::new(seed);
        assert_canonical(&FaultSchedule::random(
            &mut rng,
            SimDuration::from_secs(mean_up),
            SimDuration::from_secs(mean_down),
            SimTime::from_secs(horizon),
        ));
    }

    /// `next_transition` returns the earliest instant strictly after the
    /// probe where `is_down` flips, and `None` exactly when the state
    /// never changes again.
    #[test]
    fn next_transition_is_the_first_state_flip(raw in windows_strategy(), probe in 0u64..11_000) {
        let schedule = FaultSchedule::from_windows(raw);
        let t = SimTime::from_secs(probe);
        let state = schedule.is_down(t);
        match schedule.next_transition(t) {
            None => {
                // No flip ever again: the last window (if any) is behind us.
                prop_assert!(!state, "a down state must always end");
                prop_assert!(schedule
                    .windows()
                    .last()
                    .is_none_or(|&(_, e)| e <= t));
            }
            Some(flip) => {
                prop_assert!(flip > t);
                prop_assert_ne!(schedule.is_down(flip), state);
                // Nothing flips in between: windows are second-aligned
                // here, so probing each second is exhaustive.
                for s in probe + 1..flip.as_secs_f64() as u64 {
                    prop_assert_eq!(schedule.is_down(SimTime::from_secs(s)), state);
                }
            }
        }
    }

    /// On a clean link, every message is delivered exactly once, and
    /// per-direction deliveries are in send order.
    #[test]
    fn clean_link_delivers_everything_in_order(
        sizes in prop::collection::vec(0u64..100_000, 1..40),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let link = Link::new(LinkProfile::wan_ifca());
        let deliveries: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &bytes) in sizes.iter().enumerate() {
            let d = Rc::clone(&deliveries);
            link.send(&mut sim, Dir::AToB, bytes, move |_, r| {
                r.unwrap();
                d.borrow_mut().push(i);
            });
        }
        sim.run();
        let got = deliveries.borrow().clone();
        prop_assert_eq!(got, (0..sizes.len()).collect::<Vec<_>>());
        prop_assert_eq!(link.stats().delivered, sizes.len() as u64);
        prop_assert_eq!(link.stats().failed, 0);
    }

    /// Every send gets exactly one outcome even across arbitrary outages:
    /// delivered + failed == sent.
    #[test]
    fn outcomes_are_exhaustive_under_faults(
        sizes in prop::collection::vec(1u64..10_000, 1..30),
        raw in windows_strategy(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let link = Link::with_faults(LinkProfile::campus(), FaultSchedule::from_windows(raw));
        let outcomes = Rc::new(RefCell::new(0u64));
        for (i, &bytes) in sizes.iter().enumerate() {
            let o = Rc::clone(&outcomes);
            let link2 = link.clone();
            // Spread sends over time so some hit outages.
            sim.schedule_at(SimTime::from_secs(i as u64 * 500), move |sim| {
                link2.send(sim, Dir::AToB, bytes, move |_, _| {
                    *o.borrow_mut() += 1;
                });
            });
        }
        sim.run();
        prop_assert_eq!(*outcomes.borrow(), sizes.len() as u64);
        let stats = link.stats();
        prop_assert_eq!(stats.delivered + stats.failed, sizes.len() as u64);
    }
}
