//! Session-level transport: connection establishment with a configurable
//! handshake, and request/response RPC on top of [`Link`].
//!
//! The number of handshake legs is the knob that differentiates transports in
//! the paper's comparison: plain TCP (3 legs), ssh (TCP + key exchange), and
//! GSI-secured channels (TCP + TLS-style exchange + proxy-certificate
//! verification) all pay different setup costs, and Glogin pays the GSI cost
//! on its data path too.

use cg_sim::{Sim, SimDuration};
use serde::{Deserialize, Serialize};

use crate::link::{Dir, Link, NetError};

/// Handshake shape for establishing a session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HandshakeProfile {
    /// Alternating message legs exchanged before the session is usable
    /// (TCP SYN/SYN-ACK/ACK = 3).
    pub legs: u32,
    /// Bytes carried by each leg (certificates make GSI legs fat).
    pub leg_bytes: u64,
    /// Fixed CPU time spent at each end (crypto, certificate checks), seconds.
    pub cpu_s: f64,
}

impl HandshakeProfile {
    /// Plain TCP three-way handshake.
    pub fn tcp() -> Self {
        HandshakeProfile {
            legs: 3,
            leg_bytes: 60,
            cpu_s: 50e-6,
        }
    }

    /// GSI-lite: TCP + TLS-style exchange + proxy-certificate verification.
    /// Used by the Grid Console ("all the network communications are
    /// GSI-enabled", §4).
    pub fn gsi() -> Self {
        HandshakeProfile {
            legs: 9,
            leg_bytes: 1_800, // certificate chains
            cpu_s: 18e-3,     // 2006-era RSA verification
        }
    }
}

/// An established session over a link.
///
/// Sessions do not own the link; several sessions can multiplex one link
/// (each MPICH-G2 subjob's Console Agent holds its own session to the shadow
/// over the same site-to-UI path).
#[derive(Clone)]
pub struct Session {
    link: Link,
    /// Direction of client→server traffic.
    dir: Dir,
}

impl Session {
    /// Establishes a session: runs the handshake legs in alternating
    /// directions, then hands the session to `on`. Any failed leg aborts
    /// with the underlying error.
    pub fn connect(
        sim: &mut Sim,
        link: Link,
        dir: Dir,
        handshake: HandshakeProfile,
        on: impl FnOnce(&mut Sim, Result<Session, NetError>) + 'static,
    ) {
        fn leg(
            sim: &mut Sim,
            link: Link,
            dir: Dir,
            hs: HandshakeProfile,
            left: u32,
            leg_dir: Dir,
            on: impl FnOnce(&mut Sim, Result<Session, NetError>) + 'static,
        ) {
            if left == 0 {
                let session = Session { link, dir };
                sim.schedule_now(move |sim| on(sim, Ok(session)));
                return;
            }
            let cpu = SimDuration::from_secs_f64(hs.cpu_s);
            let bytes = hs.leg_bytes;
            let link2 = link.clone();
            link.send(sim, leg_dir, bytes, move |sim, r| match r {
                Err(e) => on(sim, Err(e)),
                Ok(()) => {
                    // Endpoint processing before answering the next leg.
                    sim.schedule_in(cpu, move |sim| {
                        leg(sim, link2, dir, hs, left - 1, leg_dir.flip(), on);
                    });
                }
            });
        }
        let first = dir;
        let legs = handshake.legs;
        leg(sim, link, dir, handshake, legs, first, on);
    }

    /// Sends client→server.
    pub fn send(
        &self,
        sim: &mut Sim,
        bytes: u64,
        on: impl FnOnce(&mut Sim, Result<(), NetError>) + 'static,
    ) {
        self.link.send(sim, self.dir, bytes, on);
    }

    /// Sends server→client.
    pub fn send_back(
        &self,
        sim: &mut Sim,
        bytes: u64,
        on: impl FnOnce(&mut Sim, Result<(), NetError>) + 'static,
    ) {
        self.link.send(sim, self.dir.flip(), bytes, on);
    }

    /// The underlying link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Client→server direction.
    pub fn dir(&self) -> Dir {
        self.dir
    }
}

/// One request/response exchange: request travels `dir`, the server spends
/// `service` processing, the response returns. `on` receives the first error
/// or `Ok` at response delivery.
pub fn rpc_call(
    sim: &mut Sim,
    link: &Link,
    dir: Dir,
    req_bytes: u64,
    resp_bytes: u64,
    service: SimDuration,
    on: impl FnOnce(&mut Sim, Result<(), NetError>) + 'static,
) {
    let link2 = link.clone();
    link.send(sim, dir, req_bytes, move |sim, r| match r {
        Err(e) => on(sim, Err(e)),
        Ok(()) => {
            let link3 = link2.clone();
            sim.schedule_in(service, move |sim| {
                link3.send(sim, dir.flip(), resp_bytes, move |sim, r| on(sim, r));
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSchedule;
    use crate::profile::LinkProfile;
    use cg_sim::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn tcp_connect_takes_about_one_and_a_half_rtts() {
        let mut sim = Sim::new(1);
        let link = Link::new(LinkProfile::wan_ifca());
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        Session::connect(
            &mut sim,
            link,
            Dir::AToB,
            HandshakeProfile::tcp(),
            move |sim, r| {
                assert!(r.is_ok());
                *d.borrow_mut() = Some(sim.now());
            },
        );
        sim.run();
        let t = done.borrow().unwrap().as_secs_f64();
        // 3 legs ≈ 1.5 RTT ≈ 42 ms on the IFCA path (+ jitter + cpu).
        assert!((0.025..0.12).contains(&t), "tcp connect took {t}s");
    }

    #[test]
    fn gsi_connect_is_much_slower_than_tcp() {
        let time_for = |hs: HandshakeProfile| {
            let mut sim = Sim::new(2);
            let link = Link::new(LinkProfile::wan_ifca());
            let done = Rc::new(RefCell::new(None));
            let d = Rc::clone(&done);
            Session::connect(&mut sim, link, Dir::AToB, hs, move |sim, r| {
                assert!(r.is_ok());
                *d.borrow_mut() = Some(sim.now());
            });
            sim.run();
            let t = done.borrow().unwrap();
            t.as_secs_f64()
        };
        let tcp = time_for(HandshakeProfile::tcp());
        let gsi = time_for(HandshakeProfile::gsi());
        assert!(gsi > 2.0 * tcp, "gsi {gsi} tcp {tcp}");
    }

    #[test]
    fn connect_fails_when_link_is_down() {
        let mut sim = Sim::new(1);
        let faults = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(60))]);
        let link = Link::with_faults(LinkProfile::campus(), faults);
        let result = Rc::new(RefCell::new(None));
        let r = Rc::clone(&result);
        Session::connect(
            &mut sim,
            link,
            Dir::AToB,
            HandshakeProfile::tcp(),
            move |_, res| {
                *r.borrow_mut() = Some(res.map(|_| ()));
            },
        );
        sim.run();
        assert_eq!(*result.borrow(), Some(Err(NetError::LinkDown)));
    }

    #[test]
    fn session_round_trip_works_both_ways() {
        let mut sim = Sim::new(3);
        let link = Link::new(LinkProfile::campus());
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = Rc::clone(&log);
        Session::connect(
            &mut sim,
            link,
            Dir::AToB,
            HandshakeProfile::tcp(),
            move |sim, r| {
                let s = r.unwrap();
                let s2 = s.clone();
                let log3 = Rc::clone(&log2);
                s.send(sim, 100, move |sim, r| {
                    r.unwrap();
                    log3.borrow_mut().push("request-at-server");
                    let log4 = Rc::clone(&log3);
                    s2.send_back(sim, 200, move |_, r| {
                        r.unwrap();
                        log4.borrow_mut().push("response-at-client");
                    });
                });
            },
        );
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec!["request-at-server", "response-at-client"]
        );
    }

    #[test]
    fn rpc_call_includes_service_time() {
        let mut sim = Sim::new(4);
        let link = Link::new(LinkProfile::loopback());
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        rpc_call(
            &mut sim,
            &link,
            Dir::AToB,
            100,
            100,
            SimDuration::from_secs(2),
            move |sim, r| {
                r.unwrap();
                *d.borrow_mut() = Some(sim.now());
            },
        );
        sim.run();
        let t = done.borrow().unwrap().as_secs_f64();
        assert!((2.0..2.01).contains(&t), "rpc took {t}s");
    }

    #[test]
    fn rpc_propagates_request_failure() {
        let mut sim = Sim::new(5);
        let faults = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(60))]);
        let link = Link::with_faults(LinkProfile::campus(), faults);
        let result = Rc::new(RefCell::new(None));
        let r = Rc::clone(&result);
        rpc_call(
            &mut sim,
            &link,
            Dir::AToB,
            10,
            10,
            SimDuration::ZERO,
            move |_, res| {
                *r.borrow_mut() = Some(res);
            },
        );
        sim.run();
        assert_eq!(*result.borrow(), Some(Err(NetError::LinkDown)));
    }
}
