//! A bidirectional simulated link: profile + fault schedule + in-order
//! delivery bookkeeping.
//!
//! `Link` is a cheap clonable handle. Messages sent in one direction are
//! delivered in send order (TCP-stream discipline): each delivery is clamped
//! to be no earlier than the previous one in that direction.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use cg_sim::{Sim, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::fault::FaultSchedule;
use crate::profile::LinkProfile;

/// Direction of travel over a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// From the A endpoint to the B endpoint.
    AToB,
    /// From the B endpoint to the A endpoint.
    BToA,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::AToB => Dir::BToA,
            Dir::BToA => Dir::AToB,
        }
    }
}

/// Why a network operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetError {
    /// The link was down when the operation started.
    LinkDown,
    /// The link went down while the message was in flight.
    BrokenMidTransfer,
    /// The remote side did not answer within the deadline.
    Timeout,
    /// Authentication (GSI-lite handshake) was rejected.
    AuthFailed,
    /// Nothing is listening at the remote endpoint.
    ConnectionRefused,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetError::LinkDown => "link down",
            NetError::BrokenMidTransfer => "link failed mid-transfer",
            NetError::Timeout => "timeout",
            NetError::AuthFailed => "authentication failed",
            NetError::ConnectionRefused => "connection refused",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

/// Per-link traffic counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages successfully delivered.
    pub delivered: u64,
    /// Messages that failed (link down or broken mid-transfer).
    pub failed: u64,
    /// Payload bytes successfully delivered.
    pub bytes: u64,
}

struct Inner {
    profile: LinkProfile,
    faults: FaultSchedule,
    /// Per-direction last scheduled delivery instant (stream ordering).
    last_delivery: [SimTime; 2],
    stats: LinkStats,
    /// How long a sender takes to notice a dead link (TCP timeout analogue).
    fail_detect: SimDuration,
}

/// A bidirectional point-to-point link. Clones share state.
#[derive(Clone)]
pub struct Link {
    inner: Rc<RefCell<Inner>>,
}

impl Link {
    /// Creates a link with the given profile and no outages.
    pub fn new(profile: LinkProfile) -> Self {
        Link::with_faults(profile, FaultSchedule::none())
    }

    /// Creates a link with a fault schedule.
    pub fn with_faults(profile: LinkProfile, faults: FaultSchedule) -> Self {
        Link {
            inner: Rc::new(RefCell::new(Inner {
                profile,
                faults,
                last_delivery: [SimTime::ZERO; 2],
                stats: LinkStats::default(),
                fail_detect: SimDuration::from_millis(200),
            })),
        }
    }

    /// Overrides how long senders take to detect a dead link.
    pub fn set_fail_detect(&self, d: SimDuration) {
        self.inner.borrow_mut().fail_detect = d;
    }

    /// The link's profile (cloned; profiles are small).
    pub fn profile(&self) -> LinkProfile {
        self.inner.borrow().profile.clone()
    }

    /// Is the link down at `t`?
    pub fn is_down(&self, t: SimTime) -> bool {
        self.inner.borrow().faults.is_down(t)
    }

    /// When the outage covering `t` ends, if one does.
    pub fn up_at(&self, t: SimTime) -> Option<SimTime> {
        self.inner.borrow().faults.up_at(t)
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> LinkStats {
        self.inner.borrow().stats
    }

    /// Sends `bytes` in direction `dir`. Exactly one of the outcomes is
    /// scheduled:
    /// - delivered: `on` runs with `Ok(())` at the (in-order) delivery instant;
    /// - link down at send time: `on` runs with `Err(LinkDown)` after the
    ///   failure-detection delay;
    /// - link fails while in flight: `on` runs with `Err(BrokenMidTransfer)`
    ///   at the moment the outage starts.
    ///
    /// The callback runs on the **receiving** side for `Ok`, on the sending
    /// side for `Err` — model code decides what those mean.
    pub fn send(
        &self,
        sim: &mut Sim,
        dir: Dir,
        bytes: u64,
        on: impl FnOnce(&mut Sim, Result<(), NetError>) + 'static,
    ) {
        let now = sim.now();
        let mut inner = self.inner.borrow_mut();
        if inner.faults.is_down(now) {
            inner.stats.failed += 1;
            let detect = inner.fail_detect;
            drop(inner);
            sim.schedule_in(detect, move |sim| on(sim, Err(NetError::LinkDown)));
            return;
        }
        let flight = inner.profile.one_way(sim.rng(), bytes);
        let slot = match dir {
            Dir::AToB => 0,
            Dir::BToA => 1,
        };
        let arrival = (now + flight).max(inner.last_delivery[slot]);
        if !inner.faults.clear_between(now, arrival) {
            // The outage interrupts this transfer; the sender learns when the
            // outage begins (its TCP stream resets).
            inner.stats.failed += 1;
            let fail_at = inner
                .faults
                .next_outage_after(now)
                .map(|(s, _)| s)
                .unwrap_or(arrival);
            drop(inner);
            sim.schedule_at(fail_at.max(now), move |sim| {
                on(sim, Err(NetError::BrokenMidTransfer));
            });
            return;
        }
        inner.last_delivery[slot] = arrival;
        inner.stats.delivered += 1;
        inner.stats.bytes += bytes;
        drop(inner);
        sim.schedule_at(arrival, move |sim| on(sim, Ok(())));
    }

    /// Round-trip sample for sizing handshakes (no delivery bookkeeping).
    pub fn rtt_sample(&self, sim: &mut Sim, req_bytes: u64, resp_bytes: u64) -> SimDuration {
        let profile = self.inner.borrow().profile.clone();
        profile.round_trip(sim.rng(), req_bytes, resp_bytes)
    }
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Link")
            .field("profile", &inner.profile.name)
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_sim::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn delivery_happens_after_one_way_delay() {
        let mut sim = Sim::new(1);
        let link = Link::new(LinkProfile::loopback());
        let delivered = Rc::new(RefCell::new(None));
        let d = Rc::clone(&delivered);
        link.send(&mut sim, Dir::AToB, 100, move |sim, r| {
            assert!(r.is_ok());
            *d.borrow_mut() = Some(sim.now());
        });
        sim.run();
        let t = delivered.borrow().unwrap();
        assert!(t > SimTime::ZERO);
        assert!(t.as_secs_f64() < 1e-3, "loopback delivery took {t}");
        assert_eq!(link.stats().delivered, 1);
        assert_eq!(link.stats().bytes, 100);
    }

    #[test]
    fn same_direction_messages_deliver_in_order() {
        let mut sim = Sim::new(7);
        // High jitter relative to latency would reorder without clamping.
        let mut p = LinkProfile::campus();
        p.jitter_s = p.base_latency_s; // extreme jitter
        let link = Link::with_faults(p, FaultSchedule::none());
        let arrivals: Rc<RefCell<Vec<(u32, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..50u32 {
            let a = Rc::clone(&arrivals);
            link.send(&mut sim, Dir::AToB, 10, move |sim, r| {
                assert!(r.is_ok());
                a.borrow_mut().push((i, sim.now()));
            });
        }
        sim.run();
        let arrivals = arrivals.borrow();
        for w in arrivals.windows(2) {
            assert!(w[0].0 < w[1].0, "messages arrived out of order");
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn send_during_outage_fails_with_link_down() {
        let mut sim = Sim::new(1);
        let faults = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(10))]);
        let link = Link::with_faults(LinkProfile::campus(), faults);
        let result = Rc::new(RefCell::new(None));
        let r2 = Rc::clone(&result);
        link.send(&mut sim, Dir::AToB, 10, move |_, r| {
            *r2.borrow_mut() = Some(r);
        });
        sim.run();
        assert_eq!(*result.borrow(), Some(Err(NetError::LinkDown)));
        assert_eq!(link.stats().failed, 1);
        // The error surfaced after the detection delay, not instantly.
        assert!(sim.now() >= SimTime::ZERO + SimDuration::from_millis(200));
    }

    #[test]
    fn outage_mid_transfer_breaks_the_send() {
        let mut sim = Sim::new(1);
        // Outage begins 1 µs after the send; WAN latency is ms-scale, so the
        // message is in flight when the link dies.
        let faults =
            FaultSchedule::from_windows(vec![(SimTime::from_nanos(1_000), SimTime::from_secs(5))]);
        let link = Link::with_faults(LinkProfile::wan_ifca(), faults);
        let result = Rc::new(RefCell::new(None));
        let r2 = Rc::clone(&result);
        link.send(&mut sim, Dir::AToB, 10_000, move |_, r| {
            *r2.borrow_mut() = Some(r);
        });
        sim.run();
        assert_eq!(*result.borrow(), Some(Err(NetError::BrokenMidTransfer)));
    }

    #[test]
    fn opposite_directions_do_not_serialize_each_other() {
        let mut sim = Sim::new(3);
        let link = Link::new(LinkProfile::campus());
        let times: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        for dir in [Dir::AToB, Dir::BToA] {
            let t = Rc::clone(&times);
            link.send(&mut sim, dir, 1_000_000, move |sim, r| {
                assert!(r.is_ok());
                t.borrow_mut().push(sim.now());
            });
        }
        sim.run();
        let times = times.borrow();
        // Both large transfers complete at roughly the same instant — full
        // duplex, no head-of-line blocking across directions.
        let diff = (times[0].as_secs_f64() - times[1].as_secs_f64()).abs();
        assert!(diff < 0.05 * times[0].as_secs_f64().max(times[1].as_secs_f64()) + 1e-3);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::AToB.flip(), Dir::BToA);
        assert_eq!(Dir::BToA.flip(), Dir::AToB);
    }
}
