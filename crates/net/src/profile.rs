//! Link profiles: the latency/bandwidth/jitter/loss parameters of a path.
//!
//! Two calibrated presets reproduce the paper's scenarios (§6): the *campus
//! grid* (submission and execution machines on the 100 Mbps university
//! network) and the *wide-area* path between the UAB department and the IFCA
//! centre in Santander over the Spanish academic Internet. Constants are
//! inputs to the models, documented here, and swept by the ablation benches.

use cg_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Static description of a network path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Human-readable name used in reports.
    pub name: String,
    /// One-way propagation + switching delay, seconds.
    pub base_latency_s: f64,
    /// Jitter: standard deviation added to each one-way latency, seconds.
    pub jitter_s: f64,
    /// Usable bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Probability that a datagram-level message is lost (TCP-like transports
    /// retransmit, paying an extra RTT; see [`LinkProfile::one_way`]).
    pub loss_prob: f64,
    /// Fixed per-message processing cost at each endpoint, seconds
    /// (kernel + NIC; not middleware, which the higher layers add).
    pub per_msg_overhead_s: f64,
}

impl LinkProfile {
    /// The campus-grid scenario: submission and execution machines connected
    /// by the 100 Mbps university LAN (paper §6, first scenario).
    pub fn campus() -> Self {
        LinkProfile {
            name: "campus".into(),
            base_latency_s: 200e-6, // 0.2 ms one-way across campus switches
            jitter_s: 40e-6,
            bandwidth_bps: 100e6,
            loss_prob: 1e-5,
            per_msg_overhead_s: 30e-6,
        }
    }

    /// The wide-area scenario: UAB (Barcelona) to IFCA (Santander) over the
    /// Spanish academic Internet (paper §6, second scenario).
    pub fn wan_ifca() -> Self {
        LinkProfile {
            name: "wan-ifca".into(),
            base_latency_s: 14e-3, // ~28 ms RTT Barcelona–Santander
            jitter_s: 2.5e-3,      // shared backbone: visible variance
            bandwidth_bps: 20e6,   // per-flow share of the academic backbone
            loss_prob: 2e-4,
            per_msg_overhead_s: 30e-6,
        }
    }

    /// Broker to the project-wide information system (the paper's MDS index
    /// lived in Germany while the broker ran in Spain).
    pub fn wan_mds() -> Self {
        LinkProfile {
            name: "wan-mds".into(),
            base_latency_s: 25e-3,
            jitter_s: 4e-3,
            bandwidth_bps: 10e6,
            loss_prob: 3e-4,
            per_msg_overhead_s: 30e-6,
        }
    }

    /// Same-host loopback, for calibration tests.
    pub fn loopback() -> Self {
        LinkProfile {
            name: "loopback".into(),
            base_latency_s: 10e-6,
            jitter_s: 1e-6,
            bandwidth_bps: 10e9,
            loss_prob: 0.0,
            per_msg_overhead_s: 2e-6,
        }
    }

    /// Serialization (transmission) time for a payload of `bytes`.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Samples a one-way delivery delay for `bytes`: latency + jitter +
    /// serialization + per-message overhead. Each sampled loss event costs one
    /// extra base RTT (TCP-like fast retransmit).
    pub fn one_way(&self, rng: &mut SimRng, bytes: u64) -> SimDuration {
        let latency = (self.base_latency_s + rng.normal(0.0, self.jitter_s)).max(0.0);
        let mut d = SimDuration::from_secs_f64(latency + self.per_msg_overhead_s)
            + self.serialization(bytes);
        let mut p = self.loss_prob;
        while rng.chance(p) {
            d += SimDuration::from_secs_f64(2.0 * self.base_latency_s);
            p *= p.min(0.5); // consecutive losses increasingly unlikely
            if p < 1e-12 {
                break;
            }
        }
        d
    }

    /// Samples a full round trip for a request/response of the given sizes.
    pub fn round_trip(&self, rng: &mut SimRng, req_bytes: u64, resp_bytes: u64) -> SimDuration {
        self.one_way(rng, req_bytes) + self.one_way(rng, resp_bytes)
    }

    /// Mean round-trip time for tiny messages (no serialization term).
    pub fn nominal_rtt(&self) -> SimDuration {
        SimDuration::from_secs_f64(2.0 * (self.base_latency_s + self.per_msg_overhead_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_linearly() {
        let p = LinkProfile::campus();
        let t1 = p.serialization(1_000);
        let t10 = p.serialization(10_000);
        assert_eq!(t10.as_nanos(), t1.as_nanos() * 10);
        // 10 KB over 100 Mbps = 0.8 ms.
        assert!((p.serialization(10_000).as_secs_f64() - 0.0008).abs() < 1e-9);
    }

    #[test]
    fn one_way_centers_on_nominal() {
        let p = LinkProfile::campus();
        let mut rng = SimRng::new(1);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| p.one_way(&mut rng, 10).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        let expected = p.base_latency_s + p.per_msg_overhead_s + p.serialization(10).as_secs_f64();
        assert!(
            (mean - expected).abs() < 0.1 * expected,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn wan_is_slower_than_campus() {
        let mut rng = SimRng::new(2);
        let campus: f64 = (0..1000)
            .map(|_| LinkProfile::campus().one_way(&mut rng, 1000).as_secs_f64())
            .sum();
        let wan: f64 = (0..1000)
            .map(|_| {
                LinkProfile::wan_ifca()
                    .one_way(&mut rng, 1000)
                    .as_secs_f64()
            })
            .sum();
        assert!(wan > 10.0 * campus, "wan {wan} campus {campus}");
    }

    #[test]
    fn wan_has_higher_variance() {
        let mut rng = SimRng::new(3);
        let sd = |p: &LinkProfile, rng: &mut SimRng| {
            let xs: Vec<f64> = (0..2000)
                .map(|_| p.one_way(rng, 10).as_secs_f64())
                .collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let c = sd(&LinkProfile::campus(), &mut rng);
        let w = sd(&LinkProfile::wan_ifca(), &mut rng);
        assert!(w > 10.0 * c, "wan sd {w} campus sd {c}");
    }

    #[test]
    fn round_trip_is_two_one_ways() {
        let p = LinkProfile::loopback();
        let mut rng = SimRng::new(4);
        let rt = p.round_trip(&mut rng, 100, 100);
        // Loopback has ~no jitter: RTT ≈ 2 × (latency + overhead + ser).
        let one = p.base_latency_s + p.per_msg_overhead_s + p.serialization(100).as_secs_f64();
        assert!((rt.as_secs_f64() - 2.0 * one).abs() < 1e-5);
    }

    #[test]
    fn nominal_rtt_matches_parameters() {
        let p = LinkProfile::wan_ifca();
        assert!((p.nominal_rtt().as_secs_f64() - 2.0 * (14e-3 + 30e-6)).abs() < 1e-9);
    }
}
