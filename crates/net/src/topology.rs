//! Named hosts and the links between them — the wiring plan of a scenario.
//!
//! The testbed scenarios (campus, 18-site CrossGrid) are built as a
//! [`Topology`]: a symmetric map from host pairs to [`Link`]s. Lookups are
//! order-insensitive; a missing pair is a configuration bug surfaced by
//! [`Topology::link`].

use std::collections::HashMap;
use std::fmt;

use crate::fault::FaultSchedule;
use crate::link::Link;
use crate::profile::LinkProfile;

/// Identifies a host in a scenario (UI machine, broker, gatekeepers, worker
/// nodes, the MDS index…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A set of hosts and the links wiring them together.
#[derive(Default)]
pub struct Topology {
    names: HashMap<HostId, String>,
    links: HashMap<(HostId, HostId), Link>,
    next_id: u32,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Registers a host and returns its id.
    pub fn add_host(&mut self, name: impl Into<String>) -> HostId {
        let id = HostId(self.next_id);
        self.next_id += 1;
        self.names.insert(id, name.into());
        id
    }

    /// The host's registered name.
    pub fn host_name(&self, id: HostId) -> &str {
        self.names
            .get(&id)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Wires two hosts with a fresh fault-free link of the given profile.
    pub fn connect(&mut self, a: HostId, b: HostId, profile: LinkProfile) -> Link {
        self.connect_with_faults(a, b, profile, FaultSchedule::none())
    }

    /// Wires two hosts with a fault schedule.
    pub fn connect_with_faults(
        &mut self,
        a: HostId,
        b: HostId,
        profile: LinkProfile,
        faults: FaultSchedule,
    ) -> Link {
        assert_ne!(a, b, "cannot link a host to itself");
        let link = Link::with_faults(profile, faults);
        self.links.insert(Self::key(a, b), link.clone());
        link
    }

    /// The link between two hosts, if wired.
    pub fn try_link(&self, a: HostId, b: HostId) -> Option<Link> {
        self.links.get(&Self::key(a, b)).cloned()
    }

    /// The link between two hosts.
    ///
    /// # Panics
    /// Panics when the pair is not wired — scenarios must wire every path they
    /// use, and silently inventing a link would hide scenario bugs.
    pub fn link(&self, a: HostId, b: HostId) -> Link {
        self.try_link(a, b).unwrap_or_else(|| {
            panic!(
                "no link between {} and {}",
                self.host_name(a),
                self.host_name(b)
            )
        })
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.names.len()
    }

    /// Number of wired links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    fn key(a: HostId, b: HostId) -> (HostId, HostId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_symmetric() {
        let mut topo = Topology::new();
        let ui = topo.add_host("ui");
        let wn = topo.add_host("wn");
        topo.connect(ui, wn, LinkProfile::campus());
        assert!(topo.try_link(ui, wn).is_some());
        assert!(topo.try_link(wn, ui).is_some());
        // Both directions resolve to the same shared link state.
        let l1 = topo.link(ui, wn);
        let l2 = topo.link(wn, ui);
        assert_eq!(l1.profile().name, l2.profile().name);
    }

    #[test]
    fn missing_link_is_none() {
        let mut topo = Topology::new();
        let a = topo.add_host("a");
        let b = topo.add_host("b");
        assert!(topo.try_link(a, b).is_none());
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn link_panics_on_missing_pair() {
        let mut topo = Topology::new();
        let a = topo.add_host("a");
        let b = topo.add_host("b");
        topo.link(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot link a host to itself")]
    fn self_link_rejected() {
        let mut topo = Topology::new();
        let a = topo.add_host("a");
        topo.connect(a, a, LinkProfile::campus());
    }

    #[test]
    fn names_and_counts() {
        let mut topo = Topology::new();
        let a = topo.add_host("broker");
        let b = topo.add_host("site-1");
        let c = topo.add_host("site-2");
        topo.connect(a, b, LinkProfile::campus());
        topo.connect(a, c, LinkProfile::wan_ifca());
        assert_eq!(topo.host_count(), 3);
        assert_eq!(topo.link_count(), 2);
        assert_eq!(topo.host_name(a), "broker");
        assert_eq!(topo.host_name(HostId(99)), "<unknown>");
    }
}
