//! # cg-net — simulated network substrate
//!
//! Substitutes for the paper's physical networks: the campus LAN between
//! submission and execution machines, and the wide-area path to IFCA
//! (Santander) over the Spanish academic Internet. Provides:
//!
//! - [`LinkProfile`] — latency / jitter / bandwidth / loss parameters with
//!   calibrated `campus()` and `wan_ifca()` presets (paper §6 scenarios);
//! - [`FaultSchedule`] — injected outage windows (what the *reliable*
//!   streaming mode exists to survive);
//! - [`Link`] — a bidirectional path with in-order per-direction delivery,
//!   outage awareness, and traffic counters;
//! - [`Session`] / [`HandshakeProfile`] — connection establishment with
//!   TCP-like or GSI-like handshakes, and [`rpc_call`] for request/response
//!   exchanges;
//! - [`Topology`] — named hosts wired by links, the scenario plan.
//!
//! Everything runs on the [`cg_sim`] event loop and is deterministic under a
//! fixed seed.

#![warn(missing_docs)]

mod fault;
mod link;
mod profile;
mod topology;
mod transport;

pub use fault::FaultSchedule;
pub use link::{Dir, Link, LinkStats, NetError};
pub use profile::LinkProfile;
pub use topology::{HostId, Topology};
pub use transport::{rpc_call, HandshakeProfile, Session};
