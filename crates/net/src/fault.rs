//! Fault injection: scheduled network outages.
//!
//! The paper's *reliable* streaming mode exists precisely to survive
//! "temporal network failures" (§4). A [`FaultSchedule`] is a sorted list of
//! `[start, end)` outage windows that links consult before delivering.

use cg_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A set of non-overlapping outage windows, sorted by start time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// `(start, end)` pairs, `start < end`, non-overlapping, sorted.
    windows: Vec<(SimTime, SimTime)>,
}

impl FaultSchedule {
    /// A schedule with no outages.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds from explicit windows; sorts, validates, and merges overlaps.
    pub fn from_windows(mut windows: Vec<(SimTime, SimTime)>) -> Self {
        windows.retain(|&(s, e)| s < e);
        windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        FaultSchedule { windows: merged }
    }

    /// Periodic outages: down for `down` every `period`, starting at `first`.
    /// Generates windows up to `horizon`.
    ///
    /// Degenerate parameters are clamped instead of panicking: a `down`
    /// that reaches or exceeds `period` (or a zero `period`, which would
    /// otherwise never advance) collapses into one continuous outage
    /// `[first, horizon)`, and a zero `down` yields no outages at all.
    pub fn periodic(
        first: SimTime,
        period: SimDuration,
        down: SimDuration,
        horizon: SimTime,
    ) -> Self {
        if down.is_zero() || first >= horizon {
            return FaultSchedule::none();
        }
        if period.is_zero() || down >= period {
            // Windows would touch or overlap: the link is just down.
            return FaultSchedule::from_windows(vec![(first, horizon)]);
        }
        let mut windows = Vec::new();
        let mut t = first;
        while t < horizon {
            windows.push((t, t + down));
            t += period;
        }
        FaultSchedule::from_windows(windows)
    }

    /// Random outages: exponential up-times with mean `mean_up`, outage
    /// lengths exponential with mean `mean_down`, up to `horizon`.
    pub fn random(
        rng: &mut SimRng,
        mean_up: SimDuration,
        mean_down: SimDuration,
        horizon: SimTime,
    ) -> Self {
        let mut windows = Vec::new();
        let mut t = SimTime::ZERO + rng.exp(mean_up.as_secs_f64());
        while t < horizon {
            let down = rng
                .exp(mean_down.as_secs_f64())
                .max(SimDuration::from_millis(1));
            windows.push((t, t + down));
            t = t + down + rng.exp(mean_up.as_secs_f64());
        }
        FaultSchedule::from_windows(windows)
    }

    /// Is the link down at instant `t`?
    pub fn is_down(&self, t: SimTime) -> bool {
        // Binary search the last window starting at or before t.
        match self.windows.partition_point(|&(s, _)| s <= t) {
            0 => false,
            i => t < self.windows[i - 1].1,
        }
    }

    /// If down at `t`, the instant the current outage ends; otherwise `None`.
    pub fn up_at(&self, t: SimTime) -> Option<SimTime> {
        match self.windows.partition_point(|&(s, _)| s <= t) {
            0 => None,
            i => {
                let (_, end) = self.windows[i - 1];
                (t < end).then_some(end)
            }
        }
    }

    /// The next outage starting strictly after `t`, if any.
    pub fn next_outage_after(&self, t: SimTime) -> Option<(SimTime, SimTime)> {
        let i = self.windows.partition_point(|&(s, _)| s <= t);
        self.windows.get(i).copied()
    }

    /// The next instant strictly after `t` at which the up/down state
    /// changes: while down, the end of the current outage; while up, the
    /// start of the next one. `None` once the schedule is exhausted — the
    /// link stays up forever after its last window.
    pub fn next_transition(&self, t: SimTime) -> Option<SimTime> {
        match self.up_at(t) {
            Some(end) => Some(end),
            None => self.next_outage_after(t).map(|(s, _)| s),
        }
    }

    /// True if the whole span `[start, end)` is outage-free.
    pub fn clear_between(&self, start: SimTime, end: SimTime) -> bool {
        if self.is_down(start) {
            return false;
        }
        match self.next_outage_after(start) {
            Some((s, _)) => s >= end,
            None => true,
        }
    }

    /// The outage windows.
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }

    /// Total downtime within `[0, horizon)`.
    pub fn total_downtime(&self, horizon: SimTime) -> SimDuration {
        self.windows
            .iter()
            .take_while(|&&(s, _)| s < horizon)
            .map(|&(s, e)| e.min(horizon).saturating_since(s))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_is_always_up() {
        let f = FaultSchedule::none();
        assert!(!f.is_down(t(0)));
        assert!(!f.is_down(t(1_000_000)));
        assert_eq!(f.up_at(t(5)), None);
        assert!(f.clear_between(t(0), t(100)));
    }

    #[test]
    fn window_membership_is_half_open() {
        let f = FaultSchedule::from_windows(vec![(t(10), t(20))]);
        assert!(!f.is_down(t(9)));
        assert!(f.is_down(t(10)));
        assert!(f.is_down(t(19)));
        assert!(!f.is_down(t(20)));
        assert_eq!(f.up_at(t(15)), Some(t(20)));
        assert_eq!(f.up_at(t(25)), None);
    }

    #[test]
    fn overlapping_windows_merge() {
        let f = FaultSchedule::from_windows(vec![(t(10), t(20)), (t(15), t(30)), (t(40), t(50))]);
        assert_eq!(f.windows(), &[(t(10), t(30)), (t(40), t(50))]);
        // Inverted windows are dropped.
        let g = FaultSchedule::from_windows(vec![(t(5), t(5)), (t(7), t(6))]);
        assert!(g.windows().is_empty());
    }

    #[test]
    fn periodic_generates_expected_windows() {
        let f = FaultSchedule::periodic(
            t(100),
            SimDuration::from_secs(60),
            SimDuration::from_secs(5),
            t(300),
        );
        assert_eq!(
            f.windows(),
            &[
                (t(100), t(105)),
                (t(160), t(165)),
                (t(220), t(225)),
                (t(280), t(285))
            ]
        );
        assert_eq!(f.total_downtime(t(300)), SimDuration::from_secs(20));
    }

    #[test]
    fn periodic_clamps_degenerate_parameters() {
        // down == period: back-to-back windows are one continuous outage.
        let f = FaultSchedule::periodic(
            t(10),
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
            t(100),
        );
        assert_eq!(f.windows(), &[(t(10), t(100))]);
        // down > period likewise (used to assert/panic).
        let f = FaultSchedule::periodic(
            t(10),
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            t(100),
        );
        assert_eq!(f.windows(), &[(t(10), t(100))]);
        assert!(f.is_down(t(50)) && !f.is_down(t(100)));
        // Zero period must not loop forever; it is a continuous outage too.
        let f = FaultSchedule::periodic(t(0), SimDuration::ZERO, SimDuration::from_secs(1), t(40));
        assert_eq!(f.windows(), &[(t(0), t(40))]);
        // Zero down means no outages; first at/after horizon likewise.
        assert!(
            FaultSchedule::periodic(t(0), SimDuration::from_secs(5), SimDuration::ZERO, t(40))
                .windows()
                .is_empty()
        );
        assert!(FaultSchedule::periodic(
            t(40),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
            t(40)
        )
        .windows()
        .is_empty());
    }

    #[test]
    fn next_outage_and_clear_between() {
        let f = FaultSchedule::from_windows(vec![(t(10), t(20)), (t(40), t(50))]);
        assert_eq!(f.next_outage_after(t(0)), Some((t(10), t(20))));
        assert_eq!(f.next_outage_after(t(10)), Some((t(40), t(50))));
        assert_eq!(f.next_outage_after(t(60)), None);
        assert!(f.clear_between(t(20), t(40)));
        assert!(!f.clear_between(t(20), t(41)));
        assert!(!f.clear_between(t(15), t(16)));
        assert!(f.clear_between(t(50), t(1000)));
    }

    #[test]
    fn random_schedule_respects_horizon_and_sorting() {
        let mut rng = SimRng::new(9);
        let f = FaultSchedule::random(
            &mut rng,
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            t(10_000),
        );
        assert!(!f.windows().is_empty());
        for w in f.windows().windows(2) {
            assert!(w[0].1 <= w[1].0, "windows overlap or unsorted");
        }
        for &(s, e) in f.windows() {
            assert!(s < e);
            assert!(s < t(10_000));
        }
    }

    #[test]
    fn next_transition_walks_the_edges() {
        let f = FaultSchedule::from_windows(vec![(t(10), t(20)), (t(40), t(50))]);
        // Up before the first window: the next flip is its start.
        assert_eq!(f.next_transition(t(0)), Some(t(10)));
        // Down inside a window: the flip is its end — including at the
        // start instant itself.
        assert_eq!(f.next_transition(t(10)), Some(t(20)));
        assert_eq!(f.next_transition(t(19)), Some(t(20)));
        // Up in the gap: the next window's start.
        assert_eq!(f.next_transition(t(20)), Some(t(40)));
        // Past the last window: the state never changes again.
        assert_eq!(f.next_transition(t(50)), None);
        assert_eq!(FaultSchedule::none().next_transition(t(0)), None);
    }

    #[test]
    fn total_downtime_clips_at_horizon() {
        let f = FaultSchedule::from_windows(vec![(t(10), t(20))]);
        assert_eq!(f.total_downtime(t(15)), SimDuration::from_secs(5));
        assert_eq!(f.total_downtime(t(5)), SimDuration::ZERO);
    }
}
