//! Property tests for the static analyzer and the compiled matchmaking path:
//!
//! 1. Compilation (constant folding + own-ref substitution) preserves the
//!    raw evaluator's semantics *exactly* — same `Ok` value or same
//!    error-ness — on arbitrary expression trees, including ill-typed ones.
//! 2. The broker-facing projections agree: `CompiledExpr::matches` with
//!    `eval_requirement`, `CompiledExpr::rank` with `eval_rank`.
//! 3. Any ad the analyzer accepts (no `Error`-severity diagnostics) never
//!    raises an `EvalError` at match time, against machine ads that may be
//!    missing any subset of the advertised vocabulary.

use cg_jdl::{analyze_ad, Ad, BinOp, CompiledExpr, Ctx, Expr, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies: arbitrary (possibly ill-typed) expressions and ads
// ---------------------------------------------------------------------------

/// A small pool of attribute names so refs sometimes hit the generated ads
/// and sometimes dangle (evaluating to `undefined`).
const NAMES: &[&str] = &["Alpha", "Beta", "Gamma", "Delta", "Tags"];

fn small_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-40.0f64..40.0).prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        prop::sample::select(vec!["x", "y", "CROSSGRID", ""]).prop_map(|s| Value::Str(s.into())),
    ]
}

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        small_scalar(),
        prop::collection::vec(small_scalar(), 0..3).prop_map(Value::List),
    ]
}

/// An ad with a random subset of the name pool bound to random values.
fn ad_strategy() -> impl Strategy<Value = Ad> {
    prop::collection::vec((prop::sample::select(NAMES.to_vec()), small_value()), 0..4).prop_map(
        |attrs| {
            let mut ad = Ad::new();
            for (name, value) in attrs {
                ad.set(name, value);
            }
            ad
        },
    )
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-50i64..50).prop_map(Expr::Int),
        (-40.0f64..40.0).prop_map(Expr::Double),
        any::<bool>().prop_map(Expr::Bool),
        prop::sample::select(vec!["x", "CROSSGRID"]).prop_map(|s| Expr::Str(s.into())),
        Just(Expr::Undefined),
        prop::sample::select(NAMES.to_vec()).prop_map(|n| Expr::Ref {
            scope: None,
            name: n.into(),
        }),
        prop::sample::select(NAMES.to_vec()).prop_map(|n| Expr::Ref {
            scope: Some("other".into()),
            name: n.into(),
        }),
    ]
}

const OPS: &[BinOp] = &[
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
];

/// Arbitrary expression trees: every operator, negations, ternaries, calls
/// (known and unknown, right and wrong arity), over mixed-type leaves.
/// Many are ill-typed or divide by zero — the compiled path must reproduce
/// the raw walker's behaviour on those too, not just on clean inputs.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 48, 3, |inner| {
        prop_oneof![
            (
                prop::sample::select(OPS.to_vec()),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| Expr::Ternary(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
            (
                prop::sample::select(vec![
                    "member",
                    "isUndefined",
                    "floor",
                    "ceiling",
                    "round",
                    "abs",
                    "min",
                    "max",
                    "int",
                    "real",
                    "bogus",
                ]),
                prop::collection::vec(inner, 0..3),
            )
                .prop_map(|(f, args)| Expr::Call(f.into(), args)),
        ]
    })
}

/// Debug formatting gives exact structural comparison that also treats NaN
/// as equal to itself (both paths run the identical arithmetic kernels, so
/// equal inputs yield bit-identical floats).
fn canon(r: &Result<cg_jdl::Cv, cg_jdl::EvalError>) -> String {
    format!("{r:?}")
}

// ---------------------------------------------------------------------------
// Strategies: vocabulary-conforming job ads and machine ads
// ---------------------------------------------------------------------------

const INT_MACHINE_ATTRS: &[&str] = &[
    "TotalCpus",
    "FreeCpus",
    "QueueDepth",
    "MemoryMb",
    "StorageGb",
];

/// A machine ad advertising a random subset of the cg-site vocabulary, with
/// correctly-typed values. Missing attributes model partial MDS answers and
/// must surface as `undefined`, never as an `EvalError`.
fn machine_ad_strategy() -> impl Strategy<Value = Ad> {
    (
        (
            prop::collection::vec(any::<bool>(), 11..12),
            0i64..64,
            0i64..64,
        ),
        (0i64..20, 128i64..16384, 0i64..500),
        (
            0.5f64..4.0,
            any::<bool>(),
            prop::collection::vec(
                prop::sample::select(vec!["CROSSGRID", "MPI", "STORAGE", "HEP"]),
                0..3,
            ),
        ),
    )
        .prop_map(
            |((keep, total, free), (depth, mem, storage), (speed, queued, tags))| {
                let mut ad = Ad::new();
                let mut k = keep.into_iter();
                let mut put = |name: &str, v: Value| {
                    if k.next().unwrap_or(true) {
                        ad.set(name, v);
                    }
                };
                put("Site", Value::Str("cg-site".into()));
                put("Arch", Value::Str("i686".into()));
                put("OpSys", Value::Str("LINUX".into()));
                put("TotalCpus", Value::Int(total));
                put("FreeCpus", Value::Int(free));
                put("QueueDepth", Value::Int(depth));
                put("MemoryMb", Value::Int(mem));
                put("StorageGb", Value::Int(storage));
                put("SpeedFactor", Value::Double(speed));
                put("AcceptsQueued", Value::Bool(queued));
                put(
                    "Tags",
                    Value::List(tags.into_iter().map(|t| Value::Str(t.into())).collect()),
                );
                ad
            },
        )
}

/// Boolean-valued expressions over the machine vocabulary — the shapes real
/// `Requirements` clauses take. Type-correct by construction but free to
/// reference attributes the machine ad may not advertise.
fn requirements_strategy() -> impl Strategy<Value = Expr> {
    let cmp_ops = || {
        prop::sample::select(vec![
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ])
    };
    let other = |name: &str| Expr::Ref {
        scope: Some("other".into()),
        name: name.into(),
    };
    let leaf = prop_oneof![
        // Numeric comparison against an integer bound.
        (
            prop::sample::select(INT_MACHINE_ATTRS.to_vec()),
            cmp_ops(),
            0i64..32,
        )
            .prop_map(move |(attr, op, bound)| Expr::Bin(
                op,
                Box::new(other(attr)),
                Box::new(Expr::Int(bound)),
            )),
        // Speed factor against a double bound.
        (cmp_ops(), 0.5f64..4.0).prop_map(move |(op, bound)| Expr::Bin(
            op,
            Box::new(other("SpeedFactor")),
            Box::new(Expr::Double(bound)),
        )),
        // String equality on site identity attributes.
        (
            prop::sample::select(vec!["Site", "Arch", "OpSys"]),
            prop::sample::select(vec!["cg-site", "i686", "LINUX", "elsewhere"]),
        )
            .prop_map(move |(attr, s)| Expr::Bin(
                BinOp::Eq,
                Box::new(other(attr)),
                Box::new(Expr::Str(s.into())),
            )),
        // Direct boolean attribute.
        Just(other("AcceptsQueued")),
        // Presence probe — always defined, always boolean.
        prop::sample::select(vec![
            "Site",
            "FreeCpus",
            "SpeedFactor",
            "AcceptsQueued",
            "Tags",
        ])
        .prop_map(move |attr| Expr::Call("isUndefined".into(), vec![other(attr)])),
        // Tag membership.
        prop::sample::select(vec!["CROSSGRID", "MPI", "ABSENT"]).prop_map(move |tag| Expr::Call(
            "member".into(),
            vec![Expr::Str(tag.into()), other("Tags")],
        )),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::And,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::Or,
                Box::new(a),
                Box::new(b)
            )),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

/// Numeric-valued expressions over the machine vocabulary — `Rank` shapes.
fn rank_strategy() -> impl Strategy<Value = Expr> {
    let other = |name: &str| Expr::Ref {
        scope: Some("other".into()),
        name: name.into(),
    };
    let leaf = prop_oneof![
        prop::sample::select(INT_MACHINE_ATTRS.to_vec()).prop_map(other),
        Just(other("SpeedFactor")),
        (0i64..100).prop_map(Expr::Int),
        (0.0f64..10.0).prop_map(Expr::Double),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul]),
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call("max".into(), vec![a, b])),
            inner.prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

/// A vocabulary-conforming job ad with generated Requirements and Rank.
fn job_ad_strategy() -> impl Strategy<Value = Ad> {
    (
        requirements_strategy(),
        rank_strategy(),
        (any::<bool>(), 1i64..8).prop_map(|(some, n)| some.then_some(n)),
        (
            any::<bool>(),
            prop::sample::select(vec!["none", "reliable", "besteffort"]),
        )
            .prop_map(|(some, s)| some.then_some(s)),
    )
        .prop_map(|(req, rank, nodes, streaming)| {
            let mut ad = Ad::new();
            ad.set("Executable", Value::Str("app".into()));
            // NodeNumber > 1 needs a parallel job type to pass validation.
            if let Some(n) = nodes {
                ad.set(
                    "JobType",
                    Value::List(vec![
                        Value::Str("interactive".into()),
                        Value::Str("mpich-g2".into()),
                    ]),
                );
                ad.set("NodeNumber", Value::Int(n));
            } else {
                ad.set("JobType", Value::Str("batch".into()));
            }
            if let Some(s) = streaming {
                ad.set("StreamingMode", Value::Str(s.into()));
            }
            ad.set("Requirements", Value::Expr(req));
            ad.set("Rank", Value::Expr(rank));
            ad
        })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    /// Folding + own-ref substitution preserve `eval` exactly: the compiled
    /// expression produces the same `Ok` value (or the same error) as the
    /// raw tree walker, for arbitrary — including ill-typed — expressions.
    #[test]
    fn compilation_preserves_eval_semantics(
        e in expr_strategy(),
        own in ad_strategy(),
        other in ad_strategy(),
    ) {
        let compiled = CompiledExpr::compile(&e, &own);
        let raw = e.eval(Ctx { own: &own, other: &other });
        let fast = compiled.eval(&own, &other);
        prop_assert_eq!(canon(&raw), canon(&fast), "expr: {}", e);
    }

    /// The broker-facing projections agree with the raw walker's: a compiled
    /// requirement matches exactly when `eval_requirement` returns
    /// `Ok(true)`, and a compiled rank equals `eval_rank().unwrap_or(0.0)`.
    #[test]
    fn compilation_preserves_requirement_and_rank_semantics(
        e in expr_strategy(),
        own in ad_strategy(),
        other in ad_strategy(),
    ) {
        let compiled = CompiledExpr::compile(&e, &own);
        let ctx = Ctx { own: &own, other: &other };
        let raw_match = matches!(e.eval_requirement(ctx), Ok(true));
        prop_assert_eq!(raw_match, compiled.matches(&own, &other), "expr: {}", e);
        let raw_rank = e.eval_rank(ctx).unwrap_or(0.0);
        let fast_rank = compiled.rank(&own, &other);
        // Bit-compare via total ordering so NaN == NaN.
        prop_assert_eq!(raw_rank.to_bits(), fast_rank.to_bits(), "expr: {}", e);
    }

    /// Any job ad the analyzer accepts (no Error-severity diagnostics) never
    /// raises an `EvalError` at match time — neither through the raw walker
    /// nor through the compiled fast path — against machine ads that may be
    /// missing any subset of the advertised vocabulary.
    #[test]
    fn analyzer_accepted_ads_never_error_at_match_time(
        job in job_ad_strategy(),
        machine in machine_ad_strategy(),
    ) {
        let analysis = analyze_ad(&job, None, &cg_jdl::Schema::machine());
        if analysis.has_errors() {
            // Rejected at submit — never reaches matchmaking. (The generator
            // can produce statically unsatisfiable requirements, e.g.
            // `FreeCpus > 20 && FreeCpus < 10`; those are exactly the ads
            // the analyzer exists to stop.)
            return;
        }
        let ctx = Ctx { own: &job, other: &machine };
        if let Some(Value::Expr(req)) = job.get("Requirements") {
            prop_assert!(
                req.eval_requirement(ctx).is_ok(),
                "raw Requirements errored: {:?}",
                req.eval_requirement(ctx)
            );
        }
        if let Some(Value::Expr(rank)) = job.get("Rank") {
            prop_assert!(rank.eval_rank(ctx).is_ok());
        }
        if let Some(compiled) = &analysis.requirements {
            prop_assert!(compiled.eval(&job, &machine).is_ok());
        }
        if let Some(compiled) = &analysis.rank {
            prop_assert!(compiled.eval(&job, &machine).is_ok());
        }
    }
}
