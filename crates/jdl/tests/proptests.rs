//! Property tests: printing and reparsing are inverse operations, and the
//! expression evaluator is total and stable over the printed form.

use cg_jdl::{parse_ad, parse_expr, Ad, Ctx, Expr, Value};
use proptest::prelude::*;

/// Attribute names: identifiers that aren't keywords.
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,12}".prop_filter("keyword", |s| {
        !["true", "false", "undefined"].contains(&s.to_ascii_lowercase().as_str())
    })
}

/// Scalar values that print and reparse exactly.
fn scalar_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[ -~]{0,20}".prop_map(Value::Str),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        // Finite doubles with exact decimal round-trip via {x} formatting.
        (-1e9f64..1e9).prop_map(Value::Double),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    scalar_strategy().prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

/// Expressions built from integer literals and arithmetic/comparison/logic,
/// guaranteed well-typed by construction.
fn int_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (-1000i64..1000).prop_map(Expr::Int);
    leaf.prop_recursive(4, 32, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop::sample::select(vec!["+", "-", "*"]),
        )
            .prop_map(|(a, b, op)| {
                let op = match op {
                    "+" => cg_jdl::BinOp::Add,
                    "-" => cg_jdl::BinOp::Sub,
                    _ => cg_jdl::BinOp::Mul,
                };
                Expr::Bin(op, Box::new(a), Box::new(b))
            })
    })
}

proptest! {
    /// Ad print → strip brackets → reparse → identical ad.
    #[test]
    fn ad_print_parse_round_trip(
        attrs in prop::collection::vec((name_strategy(), value_strategy()), 0..8)
    ) {
        let mut ad = Ad::new();
        for (name, value) in attrs {
            ad.set(name, value);
        }
        let printed = ad.to_string();
        let inner = printed.trim().trim_start_matches('[').trim_end_matches(']');
        let reparsed = parse_ad(inner).unwrap();
        prop_assert_eq!(ad, reparsed);
    }

    /// Expression display → parse → identical evaluation.
    #[test]
    fn expr_display_parse_evaluation_stable(e in int_expr_strategy()) {
        let empty = Ad::new();
        let ctx = Ctx { own: &empty, other: &empty };
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        prop_assert_eq!(e.eval(ctx).unwrap(), reparsed.eval(ctx).unwrap());
    }

    /// The evaluator never panics on arbitrary well-formed integer arithmetic
    /// (wrapping semantics; division only by parser-produced literals).
    #[test]
    fn evaluator_is_total_on_int_arithmetic(e in int_expr_strategy()) {
        let empty = Ad::new();
        let ctx = Ctx { own: &empty, other: &empty };
        prop_assert!(e.eval(ctx).is_ok());
    }

    /// Lexing arbitrary bytes never panics (errors are fine).
    #[test]
    fn lexer_is_total(src in "[ -~\n\t]{0,200}") {
        let _ = cg_jdl::lex(&src);
    }

    /// Parsing arbitrary printable input never panics.
    #[test]
    fn parser_is_total(src in "[ -~\n\t]{0,200}") {
        let _ = parse_ad(&src);
        let _ = parse_expr(&src);
    }
}
