//! Recursive-descent parser for JDL attribute records and expressions.
//!
//! Grammar (after lexing):
//!
//! ```text
//! ad      := '[' attr* ']' | attr*
//! attr    := IDENT '=' value ';'
//! value   := list | expr
//! list    := '{' (value (',' value)*)? '}'
//! expr    := or ('?' expr ':' expr)?
//! or      := and ('||' and)*
//! and     := cmp ('&&' cmp)*
//! cmp     := add (CMPOP add)?
//! add     := mul (('+'|'-') mul)*
//! mul     := unary (('*'|'/'|'%') unary)*
//! unary   := ('!'|'-') unary | primary
//! primary := literal | IDENT ['.' IDENT] | IDENT '(' args ')' | '(' expr ')'
//! ```
//!
//! Plain literal values are stored as scalars; anything with structure is
//! stored as an unevaluated [`Expr`].
//!
//! The spanned entry points ([`parse_ad_spanned`]) additionally return a
//! [`Span`] tree that mirrors each expression's shape, so the static
//! analyzer in [`crate::analyze`] can attach line/column positions to
//! diagnostics about any subexpression.

use std::fmt;

use crate::ast::{Ad, Value};
use crate::expr::{BinOp, Expr};
use crate::lexer::{lex_spanned, LexError, Pos, Tok};

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Where (end-of-input errors point just past the last character).
    pub pos: Pos,
    /// What.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            message: e.message,
        }
    }
}

/// Source positions for an [`Expr`], mirroring its shape: `pos` locates the
/// node itself (operators point at the operator token) and `kids` line up
/// with the expression's children in evaluation order — `[cond, then, else]`
/// for a ternary, `[left, right]` for a binary operator, the argument list
/// for a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Position of this node in the source.
    pub pos: Pos,
    /// Child spans, in the same order as the expression's children.
    pub kids: Vec<Span>,
}

impl Span {
    /// A childless span at `pos`.
    pub fn leaf(pos: Pos) -> Span {
        Span {
            pos,
            kids: Vec::new(),
        }
    }

    /// A placeholder span (1:1) for expressions that never came from source
    /// text, e.g. ads built programmatically.
    pub fn synthetic() -> Span {
        Span::leaf(Pos { line: 1, col: 1 })
    }

    /// The `i`-th child span, falling back to `self` when the span tree is
    /// shallower than the expression (synthetic spans have no children).
    pub fn child(&self, i: usize) -> &Span {
        self.kids.get(i).unwrap_or(self)
    }
}

/// Positions for the attributes of a parsed ad: where each attribute name
/// appears and the [`Span`] tree of its value expression.
#[derive(Debug, Clone, Default)]
pub struct AdSpans {
    /// `(lowercased name, name position, value span)`; later duplicates win,
    /// matching [`Ad::set`] overwrite semantics.
    attrs: Vec<(String, Pos, Span)>,
}

impl AdSpans {
    fn record(&mut self, name: &str, name_pos: Pos, value: Span) {
        self.attrs
            .push((name.to_ascii_lowercase(), name_pos, value));
    }

    fn find(&self, name: &str) -> Option<&(String, Pos, Span)> {
        let lower = name.to_ascii_lowercase();
        self.attrs.iter().rev().find(|(n, _, _)| *n == lower)
    }

    /// Position of the attribute's name, case-insensitively.
    pub fn name_pos(&self, name: &str) -> Option<Pos> {
        self.find(name).map(|&(_, p, _)| p)
    }

    /// Span tree of the attribute's value, case-insensitively.
    pub fn value_span(&self, name: &str) -> Option<&Span> {
        self.find(name).map(|(_, _, s)| s)
    }
}

struct Parser {
    toks: Vec<(Tok, Pos)>,
    end: Pos,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn pos(&self) -> Pos {
        self.toks.get(self.i).map(|&(_, p)| p).unwrap_or(self.end)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(ParseError {
                pos: self.toks[self.i - 1].1,
                message: format!("expected {want}, found {t}"),
            }),
            None => Err(self.error(format!("expected {want}, found end of input"))),
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn parse_ad(&mut self) -> Result<(Ad, AdSpans), ParseError> {
        let bracketed = self.eat(&Tok::LBrace) && {
            // `[` is not a JDL token; EDG JDL optionally wraps ads in `[ ]`,
            // but our lexer maps both braces; accept `{ attrs }` too.
            true
        };
        let mut ad = Ad::new();
        let mut spans = AdSpans::default();
        loop {
            match self.peek() {
                None => {
                    if bracketed {
                        return Err(self.error("unterminated ad: missing `}`"));
                    }
                    break;
                }
                Some(Tok::RBrace) if bracketed => {
                    self.i += 1;
                    break;
                }
                Some(Tok::Ident(_)) => {
                    let name_pos = self.pos();
                    let Some(Tok::Ident(name)) = self.next() else {
                        unreachable!()
                    };
                    self.expect(Tok::Assign)?;
                    let (value, vsp) = self.parse_value()?;
                    self.expect(Tok::Semi)?;
                    spans.record(&name, name_pos, vsp);
                    ad.set(name, value);
                }
                Some(t) => return Err(self.error(format!("expected attribute name, found {t}"))),
            }
        }
        if self.peek().is_some() && !bracketed {
            return Err(self.error("trailing input after ad"));
        }
        Ok((ad, spans))
    }

    fn parse_value(&mut self) -> Result<(Value, Span), ParseError> {
        if self.peek() == Some(&Tok::LBrace) {
            return self.parse_list();
        }
        let (expr, sp) = self.parse_expr()?;
        Ok((simplify(expr), sp))
    }

    fn parse_list(&mut self) -> Result<(Value, Span), ParseError> {
        let list_pos = self.pos();
        self.expect(Tok::LBrace)?;
        let mut items = Vec::new();
        let mut kids = Vec::new();
        if !self.eat(&Tok::RBrace) {
            loop {
                let (v, sp) = self.parse_value()?;
                items.push(v);
                kids.push(sp);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(Tok::RBrace)?;
                break;
            }
        }
        Ok((
            Value::List(items),
            Span {
                pos: list_pos,
                kids,
            },
        ))
    }

    fn parse_expr(&mut self) -> Result<(Expr, Span), ParseError> {
        let (cond, csp) = self.parse_or()?;
        if self.eat(&Tok::Question) {
            let (a, asp) = self.parse_expr()?;
            self.expect(Tok::Colon)?;
            let (b, bsp) = self.parse_expr()?;
            let pos = csp.pos;
            Ok((
                Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
                Span {
                    pos,
                    kids: vec![csp, asp, bsp],
                },
            ))
        } else {
            Ok((cond, csp))
        }
    }

    fn parse_or(&mut self) -> Result<(Expr, Span), ParseError> {
        let (mut e, mut sp) = self.parse_and()?;
        loop {
            let op_pos = self.pos();
            if !self.eat(&Tok::Or) {
                return Ok((e, sp));
            }
            let (r, rsp) = self.parse_and()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
            sp = Span {
                pos: op_pos,
                kids: vec![sp, rsp],
            };
        }
    }

    fn parse_and(&mut self) -> Result<(Expr, Span), ParseError> {
        let (mut e, mut sp) = self.parse_cmp()?;
        loop {
            let op_pos = self.pos();
            if !self.eat(&Tok::And) {
                return Ok((e, sp));
            }
            let (r, rsp) = self.parse_cmp()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
            sp = Span {
                pos: op_pos,
                kids: vec![sp, rsp],
            };
        }
    }

    fn parse_cmp(&mut self) -> Result<(Expr, Span), ParseError> {
        let (e, sp) = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok((e, sp)),
        };
        let op_pos = self.pos();
        self.i += 1;
        let (r, rsp) = self.parse_add()?;
        Ok((
            Expr::Bin(op, Box::new(e), Box::new(r)),
            Span {
                pos: op_pos,
                kids: vec![sp, rsp],
            },
        ))
    }

    fn parse_add(&mut self) -> Result<(Expr, Span), ParseError> {
        let (mut e, mut sp) = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok((e, sp)),
            };
            let op_pos = self.pos();
            self.i += 1;
            let (r, rsp) = self.parse_mul()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
            sp = Span {
                pos: op_pos,
                kids: vec![sp, rsp],
            };
        }
    }

    fn parse_mul(&mut self) -> Result<(Expr, Span), ParseError> {
        let (mut e, mut sp) = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => return Ok((e, sp)),
            };
            let op_pos = self.pos();
            self.i += 1;
            let (r, rsp) = self.parse_unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
            sp = Span {
                pos: op_pos,
                kids: vec![sp, rsp],
            };
        }
    }

    fn parse_unary(&mut self) -> Result<(Expr, Span), ParseError> {
        let op_pos = self.pos();
        if self.eat(&Tok::Not) {
            let (e, sp) = self.parse_unary()?;
            return Ok((
                Expr::Not(Box::new(e)),
                Span {
                    pos: op_pos,
                    kids: vec![sp],
                },
            ));
        }
        if self.eat(&Tok::Minus) {
            // Fold negation into numeric literals.
            let (e, sp) = self.parse_unary()?;
            return Ok(match e {
                Expr::Int(n) => (Expr::Int(-n), Span::leaf(op_pos)),
                Expr::Double(x) => (Expr::Double(-x), Span::leaf(op_pos)),
                e => (
                    Expr::Neg(Box::new(e)),
                    Span {
                        pos: op_pos,
                        kids: vec![sp],
                    },
                ),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<(Expr, Span), ParseError> {
        let start = self.pos();
        match self.next() {
            Some(Tok::Str(s)) => Ok((Expr::Str(s), Span::leaf(start))),
            Some(Tok::Int(n)) => Ok((Expr::Int(n), Span::leaf(start))),
            Some(Tok::Double(x)) => Ok((Expr::Double(x), Span::leaf(start))),
            Some(Tok::Bool(b)) => Ok((Expr::Bool(b), Span::leaf(start))),
            Some(Tok::Undefined) => Ok((Expr::Undefined, Span::leaf(start))),
            Some(Tok::LParen) => {
                let (e, sp) = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok((e, sp))
            }
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    let mut kids = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            let (a, sp) = self.parse_expr()?;
                            args.push(a);
                            kids.push(sp);
                            if self.eat(&Tok::Comma) {
                                continue;
                            }
                            self.expect(Tok::RParen)?;
                            break;
                        }
                    }
                    return Ok((Expr::Call(name, args), Span { pos: start, kids }));
                }
                if self.eat(&Tok::Dot) {
                    match self.next() {
                        Some(Tok::Ident(attr)) => Ok((
                            Expr::Ref {
                                scope: Some(name.to_ascii_lowercase()),
                                name: attr,
                            },
                            Span::leaf(start),
                        )),
                        other => Err(self.error(format!(
                            "expected attribute name after `{name}.`, found {}",
                            other
                                .map(|t| t.to_string())
                                .unwrap_or_else(|| "end of input".into())
                        ))),
                    }
                } else {
                    Ok((Expr::Ref { scope: None, name }, Span::leaf(start)))
                }
            }
            Some(t) => Err(ParseError {
                pos: self.toks[self.i - 1].1,
                message: format!("expected a value, found {t}"),
            }),
            None => Err(self.error("expected a value, found end of input")),
        }
    }
}

/// Literal expressions collapse to scalar values; everything else stays an
/// unevaluated expression.
fn simplify(e: Expr) -> Value {
    match e {
        Expr::Str(s) => Value::Str(s),
        Expr::Int(n) => Value::Int(n),
        Expr::Double(x) => Value::Double(x),
        Expr::Bool(b) => Value::Bool(b),
        other => Value::Expr(other),
    }
}

fn parser(src: &str) -> Result<Parser, ParseError> {
    let (toks, end) = lex_spanned(src)?;
    Ok(Parser { toks, end, i: 0 })
}

/// Parses a complete attribute record.
pub fn parse_ad(src: &str) -> Result<Ad, ParseError> {
    parse_ad_spanned(src).map(|(ad, _)| ad)
}

/// Parses a complete attribute record, also returning source positions for
/// every attribute and its value expression — the input the static analyzer
/// needs to produce span-accurate diagnostics.
pub fn parse_ad_spanned(src: &str) -> Result<(Ad, AdSpans), ParseError> {
    parser(src)?.parse_ad()
}

/// Parses a standalone expression (e.g. a Requirements string).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    parse_expr_spanned(src).map(|(e, _)| e)
}

/// Parses a standalone expression along with its [`Span`] tree.
pub fn parse_expr_spanned(src: &str) -> Result<(Expr, Span), ParseError> {
    let mut p = parser(src)?;
    let (e, sp) = p.parse_expr()?;
    if p.peek().is_some() {
        return Err(p.error("trailing input after expression"));
    }
    Ok((e, sp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Ctx, Cv};

    #[test]
    fn parses_the_papers_figure_2() {
        let ad = parse_ad(
            r#"
            Executable = "interactive_mpich-g2_app";
            JobType = {"interactive", "mpich-g2"};
            NodeNumber = 2;
            Arguments = "-n";
        "#,
        )
        .unwrap();
        assert_eq!(
            ad.get("Executable").unwrap().as_str(),
            Some("interactive_mpich-g2_app")
        );
        assert_eq!(ad.get("NodeNumber").unwrap().as_i64(), Some(2));
        let jt = ad.get("JobType").unwrap().as_list().unwrap();
        assert_eq!(jt.len(), 2);
        assert_eq!(jt[0].as_str(), Some("interactive"));
        assert_eq!(jt[1].as_str(), Some("mpich-g2"));
    }

    #[test]
    fn parses_requirements_expression() {
        let ad = parse_ad(
            r#"
            Requirements = other.Arch == "i686" && other.FreeCpus >= NodeNumber;
            Rank = other.FreeCpus * 2 - other.LoadAvg;
            NodeNumber = 2;
        "#,
        )
        .unwrap();
        let Value::Expr(req) = ad.get("Requirements").unwrap() else {
            panic!("Requirements should stay an expression")
        };
        let mut machine = Ad::new();
        machine
            .set_str("Arch", "i686")
            .set_int("FreeCpus", 3)
            .set_double("LoadAvg", 0.5);
        let ctx = Ctx {
            own: &ad,
            other: &machine,
        };
        assert!(req.eval_requirement(ctx).unwrap());
        let Value::Expr(rank) = ad.get("Rank").unwrap() else {
            panic!()
        };
        assert_eq!(rank.eval_rank(ctx).unwrap(), 5.5);
    }

    #[test]
    fn precedence_is_conventional() {
        let e = parse_expr("1 + 2 * 3 == 7 && true").unwrap();
        let empty = Ad::new();
        let ctx = Ctx {
            own: &empty,
            other: &empty,
        };
        assert_eq!(e.eval(ctx).unwrap(), Cv::Val(Value::Bool(true)));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(ctx).unwrap(), Cv::Val(Value::Int(9)));
        let e = parse_expr("2 - 1 - 1").unwrap();
        assert_eq!(e.eval(ctx).unwrap(), Cv::Val(Value::Int(0)), "left assoc");
    }

    #[test]
    fn unary_folding_and_nesting() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Int(-5));
        assert_eq!(parse_expr("-5.5").unwrap(), Expr::Double(-5.5));
        let e = parse_expr("!!true").unwrap();
        let empty = Ad::new();
        assert_eq!(
            e.eval(Ctx {
                own: &empty,
                other: &empty
            })
            .unwrap(),
            Cv::Val(Value::Bool(true))
        );
    }

    #[test]
    fn nested_lists() {
        let ad = parse_ad(r#"X = {1, {2, 3}, "four"};"#).unwrap();
        let l = ad.get("X").unwrap().as_list().unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l[1].as_list().unwrap().len(), 2);
    }

    #[test]
    fn empty_list_and_empty_ad() {
        let ad = parse_ad("X = {};").unwrap();
        assert_eq!(ad.get("X").unwrap().as_list().unwrap().len(), 0);
        let ad = parse_ad("").unwrap();
        assert!(ad.is_empty());
    }

    #[test]
    fn function_calls_parse() {
        let e = parse_expr(r#"member("MPICH-G2", other.RunTimeEnv)"#).unwrap();
        assert!(matches!(e, Expr::Call(ref name, ref args) if name == "member" && args.len() == 2));
    }

    #[test]
    fn ternary_parses() {
        let e = parse_expr("true ? 1 : 2").unwrap();
        let empty = Ad::new();
        assert_eq!(
            e.eval(Ctx {
                own: &empty,
                other: &empty
            })
            .unwrap(),
            Cv::Val(Value::Int(1))
        );
    }

    #[test]
    fn errors_are_located_and_described() {
        let err = parse_ad("Executable \"app\";").unwrap_err();
        assert!(err.message.contains("expected `=`"), "{}", err.message);
        let err = parse_ad("X = ;").unwrap_err();
        assert!(err.message.contains("expected a value"), "{}", err.message);
        let err = parse_ad("X = 1").unwrap_err();
        assert!(err.message.contains("`;`"), "{}", err.message);
        let err = parse_expr("1 +").unwrap_err();
        assert!(err.message.contains("end of input"), "{}", err.message);
        let err = parse_expr("1 2").unwrap_err();
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    #[test]
    fn end_of_input_errors_point_past_the_source() {
        let err = parse_expr("1 +").unwrap_err();
        assert_eq!((err.pos.line, err.pos.col), (1, 4));
        let err = parse_ad("X = 1").unwrap_err();
        assert_eq!((err.pos.line, err.pos.col), (1, 6));
    }

    #[test]
    fn scope_refs() {
        let e = parse_expr("other.FreeCpus >= self.NodeNumber").unwrap();
        let mut job = Ad::new();
        job.set_int("NodeNumber", 2);
        let mut machine = Ad::new();
        machine.set_int("FreeCpus", 2);
        assert!(e
            .eval_requirement(Ctx {
                own: &job,
                other: &machine
            })
            .unwrap());
    }

    #[test]
    fn round_trip_print_reparse() {
        let src = r#"
            Executable = "app";
            JobType = {"interactive", "mpich-p4"};
            NodeNumber = 4;
            PerformanceLoss = 10;
            Requirements = other.FreeCpus >= 4 && member("CG", other.Tags);
        "#;
        let ad = parse_ad(src).unwrap();
        let printed = ad.to_string();
        // The printed form wraps in [ ] which parse_ad does not consume; strip.
        let inner = printed.trim().trim_start_matches('[').trim_end_matches(']');
        let reparsed = parse_ad(inner).unwrap();
        assert_eq!(ad, reparsed);
    }

    #[test]
    fn spans_mirror_expression_shape() {
        let (e, sp) = parse_expr_spanned("other.FreeCpus >= 2 && !flag").unwrap();
        let Expr::Bin(BinOp::And, _, _) = e else {
            panic!()
        };
        // `&&` is at col 21, `>=` at col 16, the `!` at col 24.
        assert_eq!((sp.pos.line, sp.pos.col), (1, 21));
        assert_eq!(sp.kids.len(), 2);
        assert_eq!(sp.child(0).pos.col, 16);
        assert_eq!(sp.child(0).child(0).pos.col, 1);
        assert_eq!(sp.child(0).child(1).pos.col, 19);
        assert_eq!(sp.child(1).pos.col, 24);
        assert_eq!(sp.child(1).child(0).pos.col, 25);
    }

    #[test]
    fn ad_spans_locate_attribute_names_and_values() {
        let src = "NodeNumber = 2;\nRequirements = other.FreeCpus >= NodeNumber;\n";
        let (_, spans) = parse_ad_spanned(src).unwrap();
        let p = spans.name_pos("requirements").unwrap();
        assert_eq!((p.line, p.col), (2, 1));
        let v = spans.value_span("Requirements").unwrap();
        assert_eq!((v.pos.line, v.pos.col), (2, 31), "points at `>=`");
        assert_eq!(v.child(0).pos.col, 16);
        // Synthetic fallback: asking deeper than the tree goes returns self.
        let leaf = v.child(0);
        assert_eq!(leaf.child(5).pos, leaf.pos);
    }
}
