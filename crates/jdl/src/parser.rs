//! Recursive-descent parser for JDL attribute records and expressions.
//!
//! Grammar (after lexing):
//!
//! ```text
//! ad      := '[' attr* ']' | attr*
//! attr    := IDENT '=' value ';'
//! value   := list | expr
//! list    := '{' (value (',' value)*)? '}'
//! expr    := or ('?' expr ':' expr)?
//! or      := and ('||' and)*
//! and     := cmp ('&&' cmp)*
//! cmp     := add (CMPOP add)?
//! add     := mul (('+'|'-') mul)*
//! mul     := unary (('*'|'/'|'%') unary)*
//! unary   := ('!'|'-') unary | primary
//! primary := literal | IDENT ['.' IDENT] | IDENT '(' args ')' | '(' expr ')'
//! ```
//!
//! Plain literal values are stored as scalars; anything with structure is
//! stored as an unevaluated [`Expr`].

use std::fmt;

use crate::ast::{Ad, Value};
use crate::expr::{BinOp, Expr};
use crate::lexer::{lex, LexError, Pos, Tok};

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Where (best effort — end of input uses the last token's position).
    pub pos: Pos,
    /// What.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            message: e.message,
        }
    }
}

struct Parser {
    toks: Vec<(Tok, Pos)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn pos(&self) -> Pos {
        self.toks
            .get(self.i)
            .or_else(|| self.toks.last())
            .map(|&(_, p)| p)
            .unwrap_or(Pos { line: 1, col: 1 })
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(ParseError {
                pos: self.toks[self.i - 1].1,
                message: format!("expected {want}, found {t}"),
            }),
            None => Err(self.error(format!("expected {want}, found end of input"))),
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn parse_ad(&mut self) -> Result<Ad, ParseError> {
        let bracketed = self.eat(&Tok::LBrace) && {
            // `[` is not a JDL token; EDG JDL optionally wraps ads in `[ ]`,
            // but our lexer maps both braces; accept `{ attrs }` too.
            true
        };
        let mut ad = Ad::new();
        loop {
            match self.peek() {
                None => {
                    if bracketed {
                        return Err(self.error("unterminated ad: missing `}`"));
                    }
                    break;
                }
                Some(Tok::RBrace) if bracketed => {
                    self.i += 1;
                    break;
                }
                Some(Tok::Ident(_)) => {
                    let Some(Tok::Ident(name)) = self.next() else {
                        unreachable!()
                    };
                    self.expect(Tok::Assign)?;
                    let value = self.parse_value()?;
                    self.expect(Tok::Semi)?;
                    ad.set(name, value);
                }
                Some(t) => return Err(self.error(format!("expected attribute name, found {t}"))),
            }
        }
        if self.peek().is_some() && !bracketed {
            return Err(self.error("trailing input after ad"));
        }
        Ok(ad)
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        if self.peek() == Some(&Tok::LBrace) {
            return self.parse_list();
        }
        let expr = self.parse_expr()?;
        Ok(simplify(expr))
    }

    fn parse_list(&mut self) -> Result<Value, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut items = Vec::new();
        if !self.eat(&Tok::RBrace) {
            loop {
                items.push(self.parse_value()?);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(Tok::RBrace)?;
                break;
            }
        }
        Ok(Value::List(items))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_or()?;
        if self.eat(&Tok::Question) {
            let a = self.parse_expr()?;
            self.expect(Tok::Colon)?;
            let b = self.parse_expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_and()?;
        while self.eat(&Tok::Or) {
            let r = self.parse_and()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_cmp()?;
        while self.eat(&Tok::And) {
            let r = self.parse_cmp()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(e),
        };
        self.i += 1;
        let r = self.parse_add()?;
        Ok(Expr::Bin(op, Box::new(e), Box::new(r)))
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(e),
            };
            self.i += 1;
            let r = self.parse_mul()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => return Ok(e),
            };
            self.i += 1;
            let r = self.parse_unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Not) {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        if self.eat(&Tok::Minus) {
            // Fold negation into numeric literals.
            return Ok(match self.parse_unary()? {
                Expr::Int(n) => Expr::Int(-n),
                Expr::Double(x) => Expr::Double(-x),
                e => Expr::Neg(Box::new(e)),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Int(n)) => Ok(Expr::Int(n)),
            Some(Tok::Double(x)) => Ok(Expr::Double(x)),
            Some(Tok::Bool(b)) => Ok(Expr::Bool(b)),
            Some(Tok::Undefined) => Ok(Expr::Undefined),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(&Tok::Comma) {
                                continue;
                            }
                            self.expect(Tok::RParen)?;
                            break;
                        }
                    }
                    return Ok(Expr::Call(name, args));
                }
                if self.eat(&Tok::Dot) {
                    match self.next() {
                        Some(Tok::Ident(attr)) => Ok(Expr::Ref {
                            scope: Some(name.to_ascii_lowercase()),
                            name: attr,
                        }),
                        other => Err(self.error(format!(
                            "expected attribute name after `{name}.`, found {}",
                            other
                                .map(|t| t.to_string())
                                .unwrap_or_else(|| "end of input".into())
                        ))),
                    }
                } else {
                    Ok(Expr::Ref { scope: None, name })
                }
            }
            Some(t) => Err(ParseError {
                pos: self.toks[self.i - 1].1,
                message: format!("expected a value, found {t}"),
            }),
            None => Err(self.error("expected a value, found end of input")),
        }
    }
}

/// Literal expressions collapse to scalar values; everything else stays an
/// unevaluated expression.
fn simplify(e: Expr) -> Value {
    match e {
        Expr::Str(s) => Value::Str(s),
        Expr::Int(n) => Value::Int(n),
        Expr::Double(x) => Value::Double(x),
        Expr::Bool(b) => Value::Bool(b),
        other => Value::Expr(other),
    }
}

/// Parses a complete attribute record.
pub fn parse_ad(src: &str) -> Result<Ad, ParseError> {
    let toks = lex(src)?;
    Parser { toks, i: 0 }.parse_ad()
}

/// Parses a standalone expression (e.g. a Requirements string).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    let e = p.parse_expr()?;
    if p.peek().is_some() {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Ctx, Cv};

    #[test]
    fn parses_the_papers_figure_2() {
        let ad = parse_ad(
            r#"
            Executable = "interactive_mpich-g2_app";
            JobType = {"interactive", "mpich-g2"};
            NodeNumber = 2;
            Arguments = "-n";
        "#,
        )
        .unwrap();
        assert_eq!(
            ad.get("Executable").unwrap().as_str(),
            Some("interactive_mpich-g2_app")
        );
        assert_eq!(ad.get("NodeNumber").unwrap().as_i64(), Some(2));
        let jt = ad.get("JobType").unwrap().as_list().unwrap();
        assert_eq!(jt.len(), 2);
        assert_eq!(jt[0].as_str(), Some("interactive"));
        assert_eq!(jt[1].as_str(), Some("mpich-g2"));
    }

    #[test]
    fn parses_requirements_expression() {
        let ad = parse_ad(
            r#"
            Requirements = other.Arch == "i686" && other.FreeCpus >= NodeNumber;
            Rank = other.FreeCpus * 2 - other.LoadAvg;
            NodeNumber = 2;
        "#,
        )
        .unwrap();
        let Value::Expr(req) = ad.get("Requirements").unwrap() else {
            panic!("Requirements should stay an expression")
        };
        let mut machine = Ad::new();
        machine
            .set_str("Arch", "i686")
            .set_int("FreeCpus", 3)
            .set_double("LoadAvg", 0.5);
        let ctx = Ctx {
            own: &ad,
            other: &machine,
        };
        assert!(req.eval_requirement(ctx).unwrap());
        let Value::Expr(rank) = ad.get("Rank").unwrap() else {
            panic!()
        };
        assert_eq!(rank.eval_rank(ctx).unwrap(), 5.5);
    }

    #[test]
    fn precedence_is_conventional() {
        let e = parse_expr("1 + 2 * 3 == 7 && true").unwrap();
        let empty = Ad::new();
        let ctx = Ctx {
            own: &empty,
            other: &empty,
        };
        assert_eq!(e.eval(ctx).unwrap(), Cv::Val(Value::Bool(true)));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(ctx).unwrap(), Cv::Val(Value::Int(9)));
        let e = parse_expr("2 - 1 - 1").unwrap();
        assert_eq!(e.eval(ctx).unwrap(), Cv::Val(Value::Int(0)), "left assoc");
    }

    #[test]
    fn unary_folding_and_nesting() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Int(-5));
        assert_eq!(parse_expr("-5.5").unwrap(), Expr::Double(-5.5));
        let e = parse_expr("!!true").unwrap();
        let empty = Ad::new();
        assert_eq!(
            e.eval(Ctx {
                own: &empty,
                other: &empty
            })
            .unwrap(),
            Cv::Val(Value::Bool(true))
        );
    }

    #[test]
    fn nested_lists() {
        let ad = parse_ad(r#"X = {1, {2, 3}, "four"};"#).unwrap();
        let l = ad.get("X").unwrap().as_list().unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l[1].as_list().unwrap().len(), 2);
    }

    #[test]
    fn empty_list_and_empty_ad() {
        let ad = parse_ad("X = {};").unwrap();
        assert_eq!(ad.get("X").unwrap().as_list().unwrap().len(), 0);
        let ad = parse_ad("").unwrap();
        assert!(ad.is_empty());
    }

    #[test]
    fn function_calls_parse() {
        let e = parse_expr(r#"member("MPICH-G2", other.RunTimeEnv)"#).unwrap();
        assert!(matches!(e, Expr::Call(ref name, ref args) if name == "member" && args.len() == 2));
    }

    #[test]
    fn ternary_parses() {
        let e = parse_expr("true ? 1 : 2").unwrap();
        let empty = Ad::new();
        assert_eq!(
            e.eval(Ctx {
                own: &empty,
                other: &empty
            })
            .unwrap(),
            Cv::Val(Value::Int(1))
        );
    }

    #[test]
    fn errors_are_located_and_described() {
        let err = parse_ad("Executable \"app\";").unwrap_err();
        assert!(err.message.contains("expected `=`"), "{}", err.message);
        let err = parse_ad("X = ;").unwrap_err();
        assert!(err.message.contains("expected a value"), "{}", err.message);
        let err = parse_ad("X = 1").unwrap_err();
        assert!(err.message.contains("`;`"), "{}", err.message);
        let err = parse_expr("1 +").unwrap_err();
        assert!(err.message.contains("end of input"), "{}", err.message);
        let err = parse_expr("1 2").unwrap_err();
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    #[test]
    fn scope_refs() {
        let e = parse_expr("other.FreeCpus >= self.NodeNumber").unwrap();
        let mut job = Ad::new();
        job.set_int("NodeNumber", 2);
        let mut machine = Ad::new();
        machine.set_int("FreeCpus", 2);
        assert!(e
            .eval_requirement(Ctx {
                own: &job,
                other: &machine
            })
            .unwrap());
    }

    #[test]
    fn round_trip_print_reparse() {
        let src = r#"
            Executable = "app";
            JobType = {"interactive", "mpich-p4"};
            NodeNumber = 4;
            PerformanceLoss = 10;
            Requirements = other.FreeCpus >= 4 && member("CG", other.Tags);
        "#;
        let ad = parse_ad(src).unwrap();
        let printed = ad.to_string();
        // The printed form wraps in [ ] which parse_ad does not consume; strip.
        let inner = printed.trim().trim_start_matches('[').trim_end_matches(']');
        let reparsed = parse_ad(inner).unwrap();
        assert_eq!(ad, reparsed);
    }
}
