//! Interned attribute-name symbols.
//!
//! JDL attribute names come from a small, bounded vocabulary (the job and
//! machine schemas plus whatever ad hoc names an ad declares), yet the
//! matchmaking hot loop historically carried them as owned `String`s inside
//! every compiled expression node. A [`Symbol`] is the interned form: one
//! canonical, lowercased, leaked allocation per distinct name, shared
//! process-wide. Copying a symbol is copying a pointer, equality is pointer
//! equality, and resolving it back to its spelling is free — no lock on the
//! read path, which matters because [`crate::CompiledExpr`] evaluation runs
//! on the parallel matcher's worker threads.
//!
//! Leaking is deliberate and safe here: the set of distinct attribute names
//! a workload can mention is tiny (tens, not millions), so the table only
//! ever grows by a few hundred bytes over a process lifetime.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

/// An interned, ASCII-lowercased attribute name.
///
/// Obtained from [`intern`]; two symbols compare equal iff they were
/// interned from names that are equal case-insensitively. The canonical
/// spelling is available via [`Symbol::as_str`] at zero cost.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

impl Symbol {
    /// The canonical (lowercased) spelling of the interned name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // The interner guarantees one canonical allocation per distinct
        // name, so pointer identity *is* name identity.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

fn table() -> &'static Mutex<HashMap<&'static str, &'static str>> {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, &'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Interns `name` (case-insensitively) and returns its [`Symbol`].
///
/// Called on the compile path only — evaluation never takes the table
/// lock. Thread-safe; poisoning is recovered because the table is always
/// left consistent (insert is the only mutation).
#[must_use]
pub fn intern(name: &str) -> Symbol {
    let lower = name.to_ascii_lowercase();
    let mut map = table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&canonical) = map.get(lower.as_str()) {
        return Symbol(canonical);
    }
    let leaked: &'static str = Box::leak(lower.into_boxed_str());
    map.insert(leaked, leaked);
    Symbol(leaked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_case_insensitive_and_canonical() {
        let a = intern("FreeCpus");
        let b = intern("freecpus");
        let c = intern("FREECPUS");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.as_str(), "freecpus");
        assert!(std::ptr::eq(a.as_str(), c.as_str()));
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        assert_ne!(intern("FreeCpus"), intern("TotalCpus"));
    }

    #[test]
    fn symbols_are_stable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("QueueDepth")))
            .collect();
        let first = intern("QueueDepth");
        for h in handles {
            assert_eq!(h.join().unwrap(), first);
        }
    }

    #[test]
    fn display_and_debug_show_the_spelling() {
        let s = intern("SpeedFactor");
        assert_eq!(s.to_string(), "speedfactor");
        assert_eq!(format!("{s:?}"), "Symbol(\"speedfactor\")");
    }
}
