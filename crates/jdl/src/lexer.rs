//! Tokenizer for the Job Description Language.
//!
//! The JDL of the EDG/CrossGrid middleware is a ClassAd dialect: attribute
//! assignments `Name = value;` where values are strings, numbers, booleans,
//! lists `{a, b}`, or expressions (`other.FreeCpus >= 2 && other.Arch ==
//! "i686"`). Comments: `//…`, `#…`, and `/* … */`.

use std::fmt;

/// Position of a token in the source, for error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (attribute names are case-insensitive).
    Ident(String),
    /// Double-quoted string literal (escapes resolved).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// `true` / `false` (case-insensitive).
    Bool(bool),
    /// `undefined` keyword (ClassAd tri-state logic).
    Undefined,
    /// `=`
    Assign,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `!`
    Not,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `?`
    Question,
    /// `:`
    Colon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Int(n) => write!(f, "integer {n}"),
            Tok::Double(x) => write!(f, "number {x}"),
            Tok::Bool(b) => write!(f, "boolean {b}"),
            Tok::Undefined => write!(f, "`undefined`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::And => write!(f, "`&&`"),
            Tok::Or => write!(f, "`||`"),
            Tok::Not => write!(f, "`!`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Question => write!(f, "`?`"),
            Tok::Colon => write!(f, "`:`"),
        }
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Where it happened.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes JDL source into `(token, position)` pairs.
pub fn lex(src: &str) -> Result<Vec<(Tok, Pos)>, LexError> {
    lex_spanned(src).map(|(toks, _)| toks)
}

/// Like [`lex`], but also returns the position just past the last character,
/// so "unexpected end of input" errors can point at a real location instead
/// of the previous token.
pub fn lex_spanned(src: &str) -> Result<(Vec<(Tok, Pos)>, Pos), LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else { break };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut closed = false;
                        while let Some(c) = bump!() {
                            if c == '*' && chars.peek() == Some(&'/') {
                                bump!();
                                closed = true;
                                break;
                            }
                        }
                        if !closed {
                            return Err(LexError {
                                pos,
                                message: "unterminated block comment".into(),
                            });
                        }
                    }
                    _ => out.push((Tok::Slash, pos)),
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None | Some('\n') => {
                            return Err(LexError {
                                pos,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            other => {
                                return Err(LexError {
                                    pos,
                                    message: format!("bad escape {other:?}"),
                                })
                            }
                        },
                        Some(c) => s.push(c),
                    }
                }
                out.push((Tok::Str(s), pos));
            }
            '0'..='9' => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        bump!();
                    } else if c == '.' {
                        // Lookahead: `1.5` is a float, `other.X` never starts
                        // with a digit, so a dot after digits is fractional.
                        is_float = true;
                        text.push(c);
                        bump!();
                    } else if c == 'e' || c == 'E' {
                        is_float = true;
                        text.push(c);
                        bump!();
                        if let Some(&sign @ ('+' | '-')) = chars.peek() {
                            text.push(sign);
                            bump!();
                        }
                    } else {
                        break;
                    }
                }
                let tok = if is_float {
                    Tok::Double(text.parse().map_err(|_| LexError {
                        pos,
                        message: format!("bad number `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| LexError {
                        pos,
                        message: format!("bad integer `{text}`"),
                    })?)
                };
                out.push((tok, pos));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let tok = match ident.to_ascii_lowercase().as_str() {
                    "true" => Tok::Bool(true),
                    "false" => Tok::Bool(false),
                    "undefined" => Tok::Undefined,
                    _ => Tok::Ident(ident),
                };
                out.push((tok, pos));
            }
            _ => {
                bump!();
                let tok = match c {
                    '=' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Tok::Eq
                        } else {
                            Tok::Assign
                        }
                    }
                    '!' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Tok::Ne
                        } else {
                            Tok::Not
                        }
                    }
                    '<' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '&' => {
                        if chars.peek() == Some(&'&') {
                            bump!();
                            Tok::And
                        } else {
                            return Err(LexError {
                                pos,
                                message: "single `&` (did you mean `&&`?)".into(),
                            });
                        }
                    }
                    '|' => {
                        if chars.peek() == Some(&'|') {
                            bump!();
                            Tok::Or
                        } else {
                            return Err(LexError {
                                pos,
                                message: "single `|` (did you mean `||`?)".into(),
                            });
                        }
                    }
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    // EDG JDL wraps ads in `[ ]`; our `Ad` Display does the
                    // same, so both bracket styles must lex for the printed
                    // form (e.g. a journal's JobAd commit record) to re-parse.
                    '{' | '[' => Tok::LBrace,
                    '}' | ']' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '.' => Tok::Dot,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '%' => Tok::Percent,
                    '?' => Tok::Question,
                    ':' => Tok::Colon,
                    other => {
                        return Err(LexError {
                            pos,
                            message: format!("unexpected character {other:?}"),
                        })
                    }
                };
                out.push((tok, pos));
            }
        }
    }
    Ok((out, Pos { line, col }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexes_the_papers_figure_2() {
        let src = r#"
            Executable = "interactive_mpich-g2_app";
            JobType = {"interactive", "mpich-g2"};
            NodeNumber = 2;
            Arguments = "-n";
        "#;
        // "interactive_mpich-g2_app" is a string, so the dash inside is fine.
        let t = toks(src);
        assert!(t.contains(&Tok::Ident("Executable".into())));
        assert!(t.contains(&Tok::Str("interactive_mpich-g2_app".into())));
        assert!(t.contains(&Tok::LBrace));
        assert!(t.contains(&Tok::Int(2)));
        assert_eq!(t.iter().filter(|t| **t == Tok::Semi).count(), 4);
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("4.5"), vec![Tok::Double(4.5)]);
        assert_eq!(toks("1e3"), vec![Tok::Double(1000.0)]);
        assert_eq!(toks("2.5e-2"), vec![Tok::Double(0.025)]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\"b\n\t\\c""#),
            vec![Tok::Str("a\"b\n\t\\c".into())]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("TRUE False UNDEFINED"),
            vec![Tok::Bool(true), Tok::Bool(false), Tok::Undefined]
        );
    }

    #[test]
    fn operators_lex() {
        assert_eq!(
            toks("== != <= >= < > && || ! + - * / % ? : ."),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::And,
                Tok::Or,
                Tok::Not,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Question,
                Tok::Colon,
                Tok::Dot
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "a = 1; // line\nb = 2; # hash\n/* block\n over lines */ c = 3;";
        let t = toks(src);
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Int(_))).count(), 3);
    }

    #[test]
    fn errors_carry_position() {
        let err = lex("a = \"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.pos.line, 1);
        let err = lex("x = 1;\n  @").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn single_amp_and_pipe_rejected() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn unterminated_block_comment_rejected() {
        assert!(lex("/* never closed").is_err());
    }
}
