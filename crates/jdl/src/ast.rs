//! The attribute-record (ClassAd-lite) data model: [`Value`]s and [`Ad`]s.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::Expr;

/// A JDL attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// String literal.
    Str(String),
    /// Integer.
    Int(i64),
    /// Floating-point number.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// List of values, `{a, b, c}`.
    List(Vec<Value>),
    /// An unevaluated expression (Requirements, Rank).
    Expr(Expr),
}

impl Value {
    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers widen to doubles.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Double(x) => Some(*x),
            _ => None,
        }
    }

    /// The integer inside, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The list inside, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Double(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
            Value::Expr(e) => write!(f, "{e}"),
        }
    }
}

/// An attribute record: ordered, case-insensitive attribute names mapped to
/// values. Both job descriptions and machine advertisements are `Ad`s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ad {
    // Keyed by lower-cased name; the original spelling is kept for printing.
    attrs: BTreeMap<String, (String, Value)>,
}

impl Ad {
    /// An empty record.
    pub fn new() -> Self {
        Ad::default()
    }

    /// Sets an attribute (case-insensitive; later sets replace earlier ones).
    pub fn set(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        let name = name.into();
        self.attrs.insert(name.to_ascii_lowercase(), (name, value));
        self
    }

    /// Convenience string setter.
    pub fn set_str(&mut self, name: impl Into<String>, v: impl Into<String>) -> &mut Self {
        self.set(name, Value::Str(v.into()))
    }

    /// Convenience integer setter.
    pub fn set_int(&mut self, name: impl Into<String>, v: i64) -> &mut Self {
        self.set(name, Value::Int(v))
    }

    /// Convenience float setter.
    pub fn set_double(&mut self, name: impl Into<String>, v: f64) -> &mut Self {
        self.set(name, Value::Double(v))
    }

    /// Convenience boolean setter.
    pub fn set_bool(&mut self, name: impl Into<String>, v: bool) -> &mut Self {
        self.set(name, Value::Bool(v))
    }

    /// Looks an attribute up, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.get(&name.to_ascii_lowercase()).map(|(_, v)| v)
    }

    /// Looks up an attribute by an already-lowercased key without the
    /// per-call allocation of [`Ad::get`] — the matchmaking hot loop uses
    /// this with keys normalised once at compile time.
    pub fn get_norm(&self, lower: &str) -> Option<&Value> {
        self.attrs.get(lower).map(|(_, v)| v)
    }

    /// Looks up an attribute by interned [`Symbol`](crate::Symbol) — the
    /// compiled-expression hot loop's lookup; symbols resolve to their
    /// canonical lowercased spelling at zero cost.
    pub fn get_sym(&self, sym: crate::symbols::Symbol) -> Option<&Value> {
        self.get_norm(sym.as_str())
    }

    /// Removes an attribute, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.attrs
            .remove(&name.to_ascii_lowercase())
            .map(|(_, v)| v)
    }

    /// True when the attribute exists.
    pub fn contains(&self, name: &str) -> bool {
        self.attrs.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterates `(original_name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.values().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the record has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

impl fmt::Display for Ad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (name, value) in self.iter() {
            writeln!(f, "  {name} = {value};")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert!(Value::List(vec![Value::Int(1)]).as_list().is_some());
    }

    #[test]
    fn ad_lookup_is_case_insensitive() {
        let mut ad = Ad::new();
        ad.set_str("Executable", "app");
        assert_eq!(ad.get("executable").and_then(Value::as_str), Some("app"));
        assert_eq!(ad.get("EXECUTABLE").and_then(Value::as_str), Some("app"));
        assert!(ad.contains("ExEcUtAbLe"));
        assert!(!ad.contains("missing"));
    }

    #[test]
    fn later_set_replaces_earlier() {
        let mut ad = Ad::new();
        ad.set_int("NodeNumber", 2);
        ad.set_int("nodenumber", 4);
        assert_eq!(ad.get("NodeNumber").and_then(Value::as_i64), Some(4));
        assert_eq!(ad.len(), 1);
    }

    #[test]
    fn remove_and_empty() {
        let mut ad = Ad::new();
        assert!(ad.is_empty());
        ad.set_bool("x", true);
        assert_eq!(ad.remove("X"), Some(Value::Bool(true)));
        assert!(ad.is_empty());
        assert_eq!(ad.remove("x"), None);
    }

    #[test]
    fn display_round_trips_scalars() {
        assert_eq!(Value::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("b".into())]).to_string(),
            "{1, \"b\"}"
        );
    }

    #[test]
    fn ad_display_lists_attributes() {
        let mut ad = Ad::new();
        ad.set_str("Executable", "app").set_int("NodeNumber", 2);
        let s = ad.to_string();
        assert!(s.contains("Executable = \"app\";"));
        assert!(s.contains("NodeNumber = 2;"));
    }
}
