//! # cg-jdl — the Job Description Language
//!
//! The EDG/CrossGrid JDL is a ClassAd dialect: jobs are attribute records
//! (`Executable = "app"; JobType = {"interactive", "mpich-g2"}; …`) with
//! `Requirements`/`Rank` matchmaking expressions evaluated against machine
//! advertisements. This crate provides:
//!
//! - [`lex`]/[`parse_ad`]/[`parse_expr`] — tokenizer and recursive-descent
//!   parser with positioned errors;
//! - [`Ad`]/[`Value`] — the attribute-record data model (case-insensitive
//!   names, ordered printing, round-trippable);
//! - [`Expr`] — ClassAd-lite expressions with tri-state (`undefined`)
//!   semantics, `other.*` scoping, `member()`/`isUndefined()`;
//! - [`JobDescription`] — the typed, validated view with the paper's
//!   interactivity attributes: `JobType`, `NodeNumber`, `StreamingMode`
//!   (reliable/fast), `MachineAccess` (exclusive/shared), `PerformanceLoss`
//!   (multiples of 5), `ShadowPort`;
//! - [`analyze`] — static analysis: schema-driven type checking of
//!   `Requirements`/`Rank` against the job and machine vocabularies,
//!   constant folding with unsatisfiability detection, and a compiled
//!   expression form ([`CompiledExpr`]) for the matchmaking hot loop.
//!
//! ```
//! use cg_jdl::{JobDescription, Interactivity, Parallelism};
//!
//! let job = JobDescription::parse(r#"
//!     Executable  = "interactive_mpich-g2_app";
//!     JobType     = {"interactive", "mpich-g2"};
//!     NodeNumber  = 2;
//!     Arguments   = "-n";
//! "#).unwrap();
//! assert_eq!(job.interactivity, Interactivity::Interactive);
//! assert_eq!(job.parallelism, Parallelism::MpichG2);
//! assert_eq!(job.console_agent_count(), 2);
//! ```

#![warn(missing_docs)]

pub mod analyze;
mod ast;
mod expr;
mod job;
mod lexer;
mod parser;
pub mod symbols;

pub use analyze::{
    analyze_ad, analyze_source, Analysis, CompiledExpr, Diagnostic, Schema, Severity, Ty,
    SELECTION_POLICIES,
};
pub use ast::{Ad, Value};
pub use expr::{BinOp, Ctx, Cv, EvalError, Expr};
pub use job::{Interactivity, JobDescription, JobError, MachineAccess, Parallelism, StreamingMode};
pub use lexer::{lex, lex_spanned, LexError, Pos, Tok};
pub use parser::{
    parse_ad, parse_ad_spanned, parse_expr, parse_expr_spanned, AdSpans, ParseError, Span,
};
pub use symbols::{intern, Symbol};
