//! Static analysis for JDL ads: schema-driven type checking, constant
//! folding with unsatisfiability detection, and a compiled expression form
//! for the matchmaking hot loop.
//!
//! The broker historically discovered bad `Requirements`/`Rank` expressions
//! at match time, deep inside the scheduling pass. This module moves those
//! failures to submit time, Condor-matchmaker style:
//!
//! 1. **Type checking** ([`Checker`], via [`analyze_ad`]): every [`Expr`] is
//!    typed against a declared attribute [`Schema`] — the job-side vocabulary
//!    plus the site/MDS vocabulary — producing span-carrying [`Diagnostic`]s
//!    for type mismatches, unknown attributes, and arity/operator misuse.
//! 2. **Constant folding + intervals**: ref-free subtrees are evaluated at
//!    compile time with the *exact* runtime kernels from [`crate::expr`],
//!    dead `&&`/`||`/ternary branches are flagged, and conjunctions of
//!    numeric constraints on machine attributes are interval-checked so
//!    trivially-unsatisfiable `Requirements` (e.g. `FreeCpus > 4 &&
//!    FreeCpus < 2`) are rejected before they can silently never match.
//! 3. **Compilation** ([`CompiledExpr`]): the folder's output is a form with
//!    the job's own attributes substituted in and machine lookups
//!    pre-lowercased, which the broker caches per job and evaluates per site
//!    without re-walking the raw AST.
//!
//! # Diagnostic codes
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | P001 | error    | lexical error |
//! | P002 | error    | syntax error |
//! | E101 | error    | unknown attribute |
//! | E102 | error    | type mismatch |
//! | E103 | error    | wrong number of function arguments |
//! | E104 | error    | unknown function |
//! | E105 | error    | unknown scope qualifier |
//! | E106 | error    | `Requirements` is not boolean |
//! | E107 | error    | `Rank` cannot be numeric |
//! | E108 | error    | `Requirements` can never match |
//! | E109 | error    | invalid job description |
//! | E110 | error    | cyclic attribute reference |
//! | W201 | warning  | cross-type equality is constant |
//! | W202 | warning  | cross-type ordering is always undefined |
//! | W203 | warning  | `Requirements` is always true |
//! | W204 | warning  | dead branch |
//! | W205 | warning  | reference to a declared-but-unset job attribute |
//! | W206 | warning  | attribute not in the job vocabulary |
//! | W207 | warning  | unknown `SelectionPolicy` name (broker falls back) |

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

use crate::ast::{Ad, Value};
use crate::expr::{
    apply_bin_values, apply_int_cast, apply_logic, apply_real_cast, apply_rounding, err,
    logic_short_circuit, member_contains, string_list_contains, BinOp, Ctx, Cv, EvalError, Expr,
};
use crate::job::JobDescription;
use crate::lexer::{LexError, Pos};
use crate::parser::{parse_ad_spanned, AdSpans, ParseError, Span};
use crate::symbols::{intern, Symbol};

/// How serious a [`Diagnostic`] is. `Error`-severity diagnostics make the
/// broker reject the ad at submit time; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal; the job is still accepted.
    Warning,
    /// The ad is rejected.
    Error,
}

impl Severity {
    /// `"warning"` or `"error"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single analyzer finding, with a stable code and a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (`E101`, `W204`, …; see module docs).
    pub code: &'static str,
    /// Where in the source (1:1 for ads built programmatically).
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    fn error(code: &'static str, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            pos,
            message: message.into(),
            help: None,
        }
    }

    fn warning(code: &'static str, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            pos,
            message: message.into(),
            help: None,
        }
    }

    fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Renders a rustc-style report with the offending source line and a
    /// caret under the position. `file` is only used for the `-->` header.
    pub fn render(&self, file: &str, src: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        out.push_str(&format!("  --> {}:{}\n", file, self.pos));
        let line_no = self.pos.line as usize;
        if let Some(line) = src.lines().nth(line_no.saturating_sub(1)) {
            let num = line_no.to_string();
            let pad = " ".repeat(num.len());
            let caret_pad = " ".repeat((self.pos.col as usize).saturating_sub(1));
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{num} | {line}\n"));
            out.push_str(&format!("{pad} | {caret_pad}^\n"));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.pos, self.message
        )
    }
}

impl From<ParseError> for Diagnostic {
    fn from(e: ParseError) -> Diagnostic {
        Diagnostic::error("P002", e.pos, e.message)
    }
}

impl From<LexError> for Diagnostic {
    fn from(e: LexError) -> Diagnostic {
        Diagnostic::error("P001", e.pos, e.message)
    }
}

/// The static type of an expression or attribute, as inferred against a
/// [`Schema`]. `Number` means "`Int` or `Double`"; `Any` means the checker
/// cannot narrow further (e.g. a stored sub-expression).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// String.
    Str,
    /// Integer.
    Int,
    /// Double.
    Double,
    /// Boolean.
    Bool,
    /// List.
    List,
    /// Statically known to evaluate to `undefined`.
    Undefined,
    /// Either `Int` or `Double`.
    Number,
    /// Unknown.
    Any,
}

impl Ty {
    /// The static type of a concrete [`Value`].
    pub fn of_value(v: &Value) -> Ty {
        match v {
            Value::Str(_) => Ty::Str,
            Value::Int(_) => Ty::Int,
            Value::Double(_) => Ty::Double,
            Value::Bool(_) => Ty::Bool,
            Value::List(_) => Ty::List,
            Value::Expr(_) => Ty::Any,
        }
    }

    fn is_definite(self) -> bool {
        !matches!(self, Ty::Any | Ty::Undefined)
    }

    fn maybe_bool(self) -> bool {
        matches!(self, Ty::Bool | Ty::Any | Ty::Undefined)
    }

    fn maybe_number(self) -> bool {
        matches!(
            self,
            Ty::Int | Ty::Double | Ty::Number | Ty::Any | Ty::Undefined
        )
    }

    fn maybe_str(self) -> bool {
        matches!(self, Ty::Str | Ty::Any | Ty::Undefined)
    }

    fn is_numeric(self) -> bool {
        matches!(self, Ty::Int | Ty::Double | Ty::Number)
    }

    fn join(self, other: Ty) -> Ty {
        if self == other {
            self
        } else if self.is_numeric() && other.is_numeric() {
            Ty::Number
        } else {
            Ty::Any
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ty::Str => "string",
            Ty::Int => "integer",
            Ty::Double => "double",
            Ty::Bool => "boolean",
            Ty::List => "list",
            Ty::Undefined => "undefined",
            Ty::Number => "number",
            Ty::Any => "any",
        })
    }
}

/// A typed attribute vocabulary: lowercased name → (display name, type).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    attrs: BTreeMap<String, (String, Ty)>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declares an attribute (case-insensitively; later wins).
    pub fn declare(&mut self, name: &str, ty: Ty) -> &mut Schema {
        self.attrs
            .insert(name.to_ascii_lowercase(), (name.to_string(), ty));
        self
    }

    /// Builder-style [`Schema::declare`].
    #[must_use]
    pub fn with(mut self, name: &str, ty: Ty) -> Schema {
        self.declare(name, ty);
        self
    }

    /// The declared type of an attribute, case-insensitively.
    pub fn get(&self, name: &str) -> Option<Ty> {
        self.attrs
            .get(&name.to_ascii_lowercase())
            .map(|&(_, ty)| ty)
    }

    /// Declared display names, in lowercase-sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.values().map(|(n, _)| n.as_str())
    }

    /// The declared spelling of an attribute, case-insensitively.
    pub fn display_name<'a>(&'a self, name: &'a str) -> &'a str {
        self.attrs
            .get(&name.to_ascii_lowercase())
            .map_or(name, |(n, _)| n.as_str())
    }

    /// Number of declared attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Infers a schema from a concrete ad's values — used by `cg-site` to
    /// export its machine-ad vocabulary without hand-maintaining a copy.
    pub fn infer_from_ad(ad: &Ad) -> Schema {
        let mut s = Schema::new();
        for (name, v) in ad.iter() {
            s.declare(name, Ty::of_value(v));
        }
        s
    }

    /// The job-side attribute vocabulary understood by
    /// [`JobDescription::from_ad`].
    pub fn job() -> Schema {
        Schema::new()
            .with("Executable", Ty::Str)
            .with("Arguments", Ty::Str)
            .with("JobType", Ty::Any) // string or list of strings
            .with("NodeNumber", Ty::Int)
            .with("StreamingMode", Ty::Str)
            .with("MachineAccess", Ty::Str)
            .with("PerformanceLoss", Ty::Int)
            .with("ShadowPort", Ty::Int)
            .with("Requirements", Ty::Bool)
            .with("Rank", Ty::Number)
            .with("User", Ty::Str)
            .with("SelectionPolicy", Ty::Str)
            .with("EstimatedRuntime", Ty::Number)
            .with("InputSandboxSizes", Ty::List)
    }

    /// The machine-ad (MDS/GRIS) vocabulary published by `cg-site` sites.
    /// `cg_site::machine_schema()` derives the same schema from a live ad
    /// and a test over there asserts the two never drift.
    pub fn machine() -> Schema {
        Schema::new()
            .with("Site", Ty::Str)
            .with("Arch", Ty::Str)
            .with("OpSys", Ty::Str)
            .with("TotalCpus", Ty::Int)
            .with("FreeCpus", Ty::Int)
            .with("QueueDepth", Ty::Int)
            .with("MemoryMb", Ty::Int)
            .with("StorageGb", Ty::Int)
            .with("SpeedFactor", Ty::Double)
            .with("AcceptsQueued", Ty::Bool)
            .with("Tags", Ty::List)
    }
}

/// The built-in expression functions, resolved once at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Func {
    Member,
    IsUndefined,
    StringListMember,
    Floor,
    Ceiling,
    Round,
    Abs,
    Min,
    Max,
    Int,
    Real,
}

impl Func {
    fn of(name: &str) -> Option<Func> {
        Some(match name.to_ascii_lowercase().as_str() {
            "member" => Func::Member,
            "isundefined" => Func::IsUndefined,
            "stringlistmember" => Func::StringListMember,
            "floor" => Func::Floor,
            "ceiling" => Func::Ceiling,
            "round" => Func::Round,
            "abs" => Func::Abs,
            "min" => Func::Min,
            "max" => Func::Max,
            "int" => Func::Int,
            "real" => Func::Real,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Func::Member => "member",
            Func::IsUndefined => "isUndefined",
            Func::StringListMember => "stringListMember",
            Func::Floor => "floor",
            Func::Ceiling => "ceiling",
            Func::Round => "round",
            Func::Abs => "abs",
            Func::Min => "min",
            Func::Max => "max",
            Func::Int => "int",
            Func::Real => "real",
        }
    }

    /// Lowercase name as the runtime kernels expect it.
    fn kernel_name(self) -> &'static str {
        match self {
            Func::Ceiling => "ceiling",
            Func::Floor => "floor",
            Func::Round => "round",
            Func::Abs => "abs",
            other => other.name(),
        }
    }

    fn arity_ok(self, n: usize) -> bool {
        match self {
            Func::Member => n == 2,
            Func::IsUndefined
            | Func::Floor
            | Func::Ceiling
            | Func::Round
            | Func::Abs
            | Func::Int
            | Func::Real => n == 1,
            Func::StringListMember => n == 2 || n == 3,
            Func::Min | Func::Max => n >= 1,
        }
    }

    fn arity_desc(self) -> &'static str {
        match self {
            Func::Member => "exactly 2 arguments",
            Func::IsUndefined
            | Func::Floor
            | Func::Ceiling
            | Func::Round
            | Func::Abs
            | Func::Int
            | Func::Real => "exactly 1 argument",
            Func::StringListMember => "2 or 3 arguments",
            Func::Min | Func::Max => "at least 1 argument",
        }
    }
}

const KNOWN_FUNCTIONS: &str =
    "member, isUndefined, stringListMember, floor, ceiling, round, abs, min, max, int, real";

fn scope_ok(scope: Option<&String>) -> bool {
    matches!(scope.map(String::as_str), None | Some("self" | "other"))
}

// ---------------------------------------------------------------------------
// Type checker
// ---------------------------------------------------------------------------

struct Checker<'a> {
    own: &'a Ad,
    job: &'a Schema,
    machine: &'a Schema,
    diags: &'a mut Vec<Diagnostic>,
    /// Own attributes whose stored expressions are on the checking stack,
    /// for cycle detection (a cyclic ad would overflow the stack at eval).
    visiting: Vec<String>,
}

impl Checker<'_> {
    fn check(&mut self, e: &Expr, sp: &Span) -> Ty {
        match e {
            Expr::Str(_) => Ty::Str,
            Expr::Int(_) => Ty::Int,
            Expr::Double(_) => Ty::Double,
            Expr::Bool(_) => Ty::Bool,
            Expr::Undefined => Ty::Undefined,
            Expr::Ref { scope, name } => self.check_ref(scope.as_ref(), name, sp),
            Expr::Not(x) => {
                let t = self.check(x, sp.child(0));
                if !t.maybe_bool() {
                    self.diags.push(Diagnostic::error(
                        "E102",
                        sp.pos,
                        format!("`!` applied to {t}"),
                    ));
                }
                Ty::Bool
            }
            Expr::Neg(x) => {
                let t = self.check(x, sp.child(0));
                if !t.maybe_number() {
                    self.diags.push(Diagnostic::error(
                        "E102",
                        sp.pos,
                        format!("unary `-` applied to {t}"),
                    ));
                }
                match t {
                    Ty::Int | Ty::Double => t,
                    _ => Ty::Number,
                }
            }
            Expr::Bin(op, l, r) => self.check_bin(*op, l, r, sp),
            Expr::Ternary(c, a, b) => {
                let ct = self.check(c, sp.child(0));
                if !ct.maybe_bool() {
                    self.diags.push(Diagnostic::error(
                        "E102",
                        sp.child(0).pos,
                        format!("ternary condition has type {ct}, expected boolean"),
                    ));
                }
                let at = self.check(a, sp.child(1));
                let bt = self.check(b, sp.child(2));
                at.join(bt)
            }
            Expr::Call(name, args) => self.check_call(name, args, sp),
        }
    }

    fn check_ref(&mut self, scope: Option<&String>, name: &str, sp: &Span) -> Ty {
        match scope.map(String::as_str) {
            Some("other") => match self.machine.get(name) {
                Some(ty) => ty,
                None => {
                    self.diags.push(
                        Diagnostic::error(
                            "E101",
                            sp.pos,
                            format!("unknown machine attribute `other.{name}`"),
                        )
                        .with_help(format!(
                            "sites advertise: {}",
                            self.machine.names().collect::<Vec<_>>().join(", ")
                        )),
                    );
                    Ty::Undefined
                }
            },
            None | Some("self") => match self.own.get(name) {
                Some(Value::Expr(inner)) => {
                    let key = name.to_ascii_lowercase();
                    if self.visiting.contains(&key) {
                        let chain = self
                            .visiting
                            .iter()
                            .chain(std::iter::once(&key))
                            .cloned()
                            .collect::<Vec<_>>()
                            .join(" -> ");
                        self.diags.push(
                            Diagnostic::error(
                                "E110",
                                sp.pos,
                                format!("cyclic attribute reference: {chain}"),
                            )
                            .with_help("evaluating this ad would recurse forever"),
                        );
                        return Ty::Any;
                    }
                    self.visiting.push(key);
                    let inner = inner.clone();
                    let t = self.check(&inner, &Span::leaf(sp.pos));
                    self.visiting.pop();
                    t
                }
                Some(v) => Ty::of_value(v),
                None => match self.job.get(name) {
                    Some(_) => {
                        self.diags.push(Diagnostic::warning(
                            "W205",
                            sp.pos,
                            format!("job attribute `{name}` is not set in this ad; it evaluates to undefined at match time"),
                        ));
                        Ty::Undefined
                    }
                    None => {
                        self.diags.push(
                            Diagnostic::error(
                                "E101",
                                sp.pos,
                                format!("unknown attribute `{name}`"),
                            )
                            .with_help(
                                "not set in this ad and not a declared job attribute; \
                                 use `other.` for machine attributes",
                            ),
                        );
                        Ty::Undefined
                    }
                },
            },
            Some(s) => {
                self.diags.push(
                    Diagnostic::error("E105", sp.pos, format!("unknown scope `{s}`")).with_help(
                        "use a bare name for job attributes or `other.` for machine attributes",
                    ),
                );
                Ty::Any
            }
        }
    }

    fn check_bin(&mut self, op: BinOp, l: &Expr, r: &Expr, sp: &Span) -> Ty {
        let lt = self.check(l, sp.child(0));
        let rt = self.check(r, sp.child(1));
        match op {
            BinOp::And | BinOp::Or => {
                for t in [lt, rt] {
                    if !t.maybe_bool() {
                        self.diags.push(Diagnostic::error(
                            "E102",
                            sp.pos,
                            format!("`{}` expects boolean operands, found {t}", symbol(op)),
                        ));
                    }
                }
                Ty::Bool
            }
            BinOp::Eq | BinOp::Ne => {
                if !comparable(lt, rt) {
                    let always = if op == BinOp::Eq { "false" } else { "true" };
                    self.diags.push(Diagnostic::warning(
                        "W201",
                        sp.pos,
                        format!("`{}` between {lt} and {rt} is always {always}", symbol(op)),
                    ));
                }
                Ty::Bool
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if !comparable(lt, rt) {
                    self.diags.push(Diagnostic::warning(
                        "W202",
                        sp.pos,
                        format!("`{}` between {lt} and {rt} is always undefined", symbol(op)),
                    ));
                }
                Ty::Bool
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                for t in [lt, rt] {
                    if !t.maybe_number() {
                        self.diags.push(Diagnostic::error(
                            "E102",
                            sp.pos,
                            format!("`{}` expects numeric operands, found {t}", symbol(op)),
                        ));
                    }
                }
                if lt == Ty::Int && rt == Ty::Int {
                    Ty::Int
                } else {
                    Ty::Number
                }
            }
        }
    }

    fn check_call(&mut self, name: &str, args: &[Expr], sp: &Span) -> Ty {
        let Some(func) = Func::of(name) else {
            self.diags.push(
                Diagnostic::error("E104", sp.pos, format!("unknown function `{name}`"))
                    .with_help(format!("known functions: {KNOWN_FUNCTIONS}")),
            );
            return Ty::Any;
        };
        if !func.arity_ok(args.len()) {
            self.diags.push(Diagnostic::error(
                "E103",
                sp.pos,
                format!(
                    "{}() takes {}, found {}",
                    func.name(),
                    func.arity_desc(),
                    args.len()
                ),
            ));
            // Still check the arguments we do have for secondary issues.
            for (i, a) in args.iter().enumerate() {
                self.check(a, sp.child(i));
            }
            return func_result_ty(func, args.is_empty().then_some(Ty::Any));
        }
        match func {
            Func::Member => {
                self.check(&args[0], sp.child(0));
                // The list argument may be a reference (resolved without
                // evaluation at runtime) or any value (scalars become
                // singleton lists), so only referential sanity is checked.
                self.check(&args[1], sp.child(1));
                Ty::Bool
            }
            Func::IsUndefined => {
                // Asking whether an attribute is defined is the legitimate
                // way to probe optional attributes — suppress unknown/unset
                // diagnostics for a direct reference argument.
                match &args[0] {
                    Expr::Ref { scope, .. } if scope_ok(scope.as_ref()) => {}
                    arg => {
                        self.check(arg, sp.child(0));
                    }
                }
                Ty::Bool
            }
            Func::StringListMember => {
                for (i, a) in args.iter().enumerate() {
                    let t = self.check(a, sp.child(i));
                    if !t.maybe_str() {
                        self.diags.push(Diagnostic::error(
                            "E102",
                            sp.child(i).pos,
                            format!("stringListMember() arguments must be strings, found {t}"),
                        ));
                    }
                }
                Ty::Bool
            }
            Func::Floor | Func::Ceiling | Func::Round | Func::Abs => {
                let t = self.check(&args[0], sp.child(0));
                if !t.maybe_number() {
                    self.diags.push(Diagnostic::error(
                        "E102",
                        sp.child(0).pos,
                        format!("{}() needs a number, found {t}", func.name()),
                    ));
                }
                func_result_ty(func, Some(t))
            }
            Func::Min | Func::Max => {
                let mut all_int = true;
                for (i, a) in args.iter().enumerate() {
                    let t = self.check(a, sp.child(i));
                    if !t.maybe_number() {
                        self.diags.push(Diagnostic::error(
                            "E102",
                            sp.child(i).pos,
                            format!("{}() needs numbers, found {t}", func.name()),
                        ));
                    }
                    if t != Ty::Int {
                        all_int = false;
                    }
                }
                if all_int {
                    Ty::Int
                } else {
                    Ty::Number
                }
            }
            Func::Int => {
                let t = self.check(&args[0], sp.child(0));
                if t == Ty::List {
                    self.diags.push(Diagnostic::error(
                        "E102",
                        sp.child(0).pos,
                        "int() cannot convert a list",
                    ));
                }
                Ty::Int
            }
            Func::Real => {
                let t = self.check(&args[0], sp.child(0));
                if t == Ty::List || t == Ty::Bool {
                    self.diags.push(Diagnostic::error(
                        "E102",
                        sp.child(0).pos,
                        format!("real() cannot convert {t}"),
                    ));
                }
                Ty::Double
            }
        }
    }
}

fn func_result_ty(func: Func, arg: Option<Ty>) -> Ty {
    match func {
        Func::Member | Func::IsUndefined | Func::StringListMember => Ty::Bool,
        Func::Floor | Func::Ceiling | Func::Round | Func::Int => Ty::Int,
        Func::Real => Ty::Double,
        Func::Abs => match arg {
            Some(t @ (Ty::Int | Ty::Double)) => t,
            _ => Ty::Number,
        },
        Func::Min | Func::Max => Ty::Number,
    }
}

/// Whether two definite types can ever compare as equal/ordered under the
/// runtime rules (numbers with numbers, strings with strings, booleans with
/// booleans; lists never compare). Unknown types are assumed comparable.
fn comparable(a: Ty, b: Ty) -> bool {
    if !a.is_definite() || !b.is_definite() {
        return true;
    }
    (a.is_numeric() && b.is_numeric()) || (a == b && matches!(a, Ty::Str | Ty::Bool))
}

fn symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
    }
}

// ---------------------------------------------------------------------------
// Compiled expressions
// ---------------------------------------------------------------------------

/// A compiled expression node. Job-side (`own`) scalar attributes are
/// substituted as constants at compile time; machine (`other.*`) lookups
/// carry interned [`Symbol`]s (canonical lowercased names) so the per-site
/// hot loop never allocates for case folding and compares keys by pointer.
#[derive(Debug, Clone, PartialEq)]
enum CExpr {
    Const(Cv),
    /// `other.X`, name interned.
    OtherRef(Symbol),
    /// `other.X` in `member()` list position: resolved without evaluating
    /// stored expressions, scalars wrapped as singleton lists.
    OtherListRef(Symbol),
    /// An own attribute holding a stored expression, evaluated lazily in
    /// the owner's frame (name interned).
    OwnExpr(Symbol),
    Not(Box<CExpr>),
    Neg(Box<CExpr>),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    Call(Func, Vec<CExpr>),
    /// Fallback for shapes the compiler does not model (unknown scopes,
    /// unknown functions, bad arity) — evaluated by the raw walker so
    /// runtime behaviour is bit-identical.
    Raw(Expr),
}

/// A `Requirements`/`Rank` expression compiled against one job ad, ready
/// for repeated evaluation against machine ads.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr {
    root: CExpr,
}

impl CompiledExpr {
    /// Compiles `expr` against the job's own ad, folding constants. This is
    /// the standalone entry point; [`analyze_ad`] additionally reports the
    /// folder's dead-branch findings as diagnostics.
    pub fn compile(expr: &Expr, own: &Ad) -> CompiledExpr {
        let mut diags = Vec::new();
        CompiledExpr {
            root: compile_expr(expr, &Span::synthetic(), own, &mut diags),
        }
    }

    /// Evaluates against a machine ad, with semantics identical to
    /// [`Expr::eval`] on the original expression.
    pub fn eval(&self, own: &Ad, other: &Ad) -> Result<Cv, EvalError> {
        ceval(&self.root, own, other)
    }

    /// Requirement view, matching the broker's use of
    /// [`Expr::eval_requirement`]: true only for a defined `true`;
    /// errors and undefined are no-match.
    pub fn matches(&self, own: &Ad, other: &Ad) -> bool {
        matches!(self.eval(own, other), Ok(Cv::Val(Value::Bool(true))))
    }

    /// Rank view, matching the broker's `eval_rank(..).unwrap_or(0.0)`:
    /// undefined, non-numeric, and errors all rank 0.
    pub fn rank(&self, own: &Ad, other: &Ad) -> f64 {
        match self.eval(own, other) {
            Ok(Cv::Val(v)) => v.as_f64().unwrap_or(0.0),
            _ => 0.0,
        }
    }

    /// The folded constant result, when the whole expression folded away.
    pub fn as_const(&self) -> Option<&Cv> {
        match &self.root {
            CExpr::Const(cv) => Some(cv),
            _ => None,
        }
    }
}

fn empty_ad() -> &'static Ad {
    static EMPTY: OnceLock<Ad> = OnceLock::new();
    EMPTY.get_or_init(Ad::new)
}

fn is_const(c: &CExpr) -> bool {
    matches!(c, CExpr::Const(_))
}

/// Folds a node whose children are all constants by running the runtime
/// evaluator on it; a node that would error at runtime is kept verbatim so
/// compiled and raw evaluation stay bit-identical.
fn try_fold(node: CExpr) -> CExpr {
    let foldable = match &node {
        CExpr::Not(x) | CExpr::Neg(x) => is_const(x),
        CExpr::Bin(_, l, r) => is_const(l) && is_const(r),
        CExpr::Ternary(c, a, b) => is_const(c) && is_const(a) && is_const(b),
        CExpr::Call(_, args) => args.iter().all(is_const),
        _ => false,
    };
    if !foldable {
        return node;
    }
    match ceval(&node, empty_ad(), empty_ad()) {
        Ok(cv) => CExpr::Const(cv),
        Err(_) => node,
    }
}

fn compile_expr(e: &Expr, sp: &Span, own: &Ad, diags: &mut Vec<Diagnostic>) -> CExpr {
    match e {
        Expr::Str(s) => CExpr::Const(Cv::Val(Value::Str(s.clone()))),
        Expr::Int(n) => CExpr::Const(Cv::Val(Value::Int(*n))),
        Expr::Double(x) => CExpr::Const(Cv::Val(Value::Double(*x))),
        Expr::Bool(b) => CExpr::Const(Cv::Val(Value::Bool(*b))),
        Expr::Undefined => CExpr::Const(Cv::Undefined),
        Expr::Ref { scope, name } => match scope.as_deref() {
            None | Some("self") => match own.get(name) {
                Some(Value::Expr(_)) => CExpr::OwnExpr(intern(name)),
                Some(v) => CExpr::Const(Cv::Val(v.clone())),
                None => CExpr::Const(Cv::Undefined),
            },
            Some("other") => CExpr::OtherRef(intern(name)),
            Some(_) => CExpr::Raw(e.clone()),
        },
        Expr::Not(x) => try_fold(CExpr::Not(Box::new(compile_expr(
            x,
            sp.child(0),
            own,
            diags,
        )))),
        Expr::Neg(x) => try_fold(CExpr::Neg(Box::new(compile_expr(
            x,
            sp.child(0),
            own,
            diags,
        )))),
        Expr::Bin(op, l, r) => {
            let cl = compile_expr(l, sp.child(0), own, diags);
            // A defined-false `&&` / defined-true `||` left side decides the
            // result before the right side is ever evaluated — the right
            // subtree is dead and can be dropped without changing semantics.
            if let CExpr::Const(cv) = &cl {
                if matches!(op, BinOp::And | BinOp::Or) {
                    if let Some(short) = logic_short_circuit(*op, cv) {
                        diags.push(Diagnostic::warning(
                            "W204",
                            sp.child(1).pos,
                            format!(
                                "right operand of `{}` is never evaluated (left side is always {})",
                                symbol(*op),
                                if *op == BinOp::And { "false" } else { "true" },
                            ),
                        ));
                        return CExpr::Const(short);
                    }
                }
            }
            let cr = compile_expr(r, sp.child(1), own, diags);
            try_fold(CExpr::Bin(*op, Box::new(cl), Box::new(cr)))
        }
        Expr::Ternary(c, a, b) => {
            let cc = compile_expr(c, sp.child(0), own, diags);
            match &cc {
                CExpr::Const(Cv::Val(Value::Bool(cond))) => {
                    let (live, dead, which) = if *cond {
                        (1usize, 2usize, "else")
                    } else {
                        (2, 1, "then")
                    };
                    diags.push(Diagnostic::warning(
                        "W204",
                        sp.child(dead).pos,
                        format!("the {which} branch of this ternary is never taken"),
                    ));
                    let live_expr = if *cond { a } else { b };
                    compile_expr(live_expr, sp.child(live), own, diags)
                }
                CExpr::Const(Cv::Undefined) => {
                    diags.push(Diagnostic::warning(
                        "W204",
                        sp.child(0).pos,
                        "ternary condition is always undefined; neither branch is ever taken",
                    ));
                    CExpr::Const(Cv::Undefined)
                }
                _ => {
                    let ca = compile_expr(a, sp.child(1), own, diags);
                    let cb = compile_expr(b, sp.child(2), own, diags);
                    try_fold(CExpr::Ternary(Box::new(cc), Box::new(ca), Box::new(cb)))
                }
            }
        }
        Expr::Call(name, args) => {
            let Some(func) = Func::of(name) else {
                return CExpr::Raw(e.clone()); // runtime "unknown function" error preserved
            };
            if !func.arity_ok(args.len()) {
                return CExpr::Raw(e.clone()); // runtime arity error preserved
            }
            if func == Func::Member {
                // The runtime resolves a reference in list position without
                // evaluating stored expressions, wrapping scalars as
                // singleton lists; reproduce that resolution here.
                let needle = compile_expr(&args[0], sp.child(0), own, diags);
                let list = match &args[1] {
                    Expr::Ref { scope, name } => match scope.as_deref() {
                        None | Some("self") => match own.get(name) {
                            Some(Value::List(items)) => {
                                CExpr::Const(Cv::Val(Value::List(items.clone())))
                            }
                            Some(v) => CExpr::Const(Cv::Val(Value::List(vec![v.clone()]))),
                            None => CExpr::Const(Cv::Undefined),
                        },
                        Some("other") => CExpr::OtherListRef(intern(name)),
                        Some(_) => return CExpr::Raw(e.clone()), // runtime scope error
                    },
                    other => compile_expr(other, sp.child(1), own, diags),
                };
                return try_fold(CExpr::Call(func, vec![needle, list]));
            }
            let cargs = args
                .iter()
                .enumerate()
                .map(|(i, a)| compile_expr(a, sp.child(i), own, diags))
                .collect();
            try_fold(CExpr::Call(func, cargs))
        }
    }
}

fn ceval(e: &CExpr, own: &Ad, other: &Ad) -> Result<Cv, EvalError> {
    match e {
        CExpr::Const(cv) => Ok(cv.clone()),
        CExpr::OtherRef(name) => match other.get_sym(*name) {
            // Stored expressions evaluate in the owner's frame, with the
            // two ads swapped — same as the raw walker.
            Some(Value::Expr(ex)) => ex.eval(Ctx {
                own: other,
                other: own,
            }),
            Some(v) => Ok(Cv::Val(v.clone())),
            None => Ok(Cv::Undefined),
        },
        CExpr::OtherListRef(name) => Ok(match other.get_sym(*name) {
            Some(Value::List(items)) => Cv::Val(Value::List(items.clone())),
            Some(v) => Cv::Val(Value::List(vec![v.clone()])),
            None => Cv::Undefined,
        }),
        CExpr::OwnExpr(name) => match own.get_sym(*name) {
            Some(Value::Expr(ex)) => ex.eval(Ctx { own, other }),
            Some(v) => Ok(Cv::Val(v.clone())),
            None => Ok(Cv::Undefined),
        },
        CExpr::Not(x) => match ceval(x, own, other)? {
            Cv::Undefined => Ok(Cv::Undefined),
            Cv::Val(Value::Bool(b)) => Ok(Cv::Val(Value::Bool(!b))),
            Cv::Val(v) => Err(err(format!("! applied to non-boolean {v}"))),
        },
        CExpr::Neg(x) => match ceval(x, own, other)? {
            Cv::Undefined => Ok(Cv::Undefined),
            Cv::Val(Value::Int(n)) => Ok(Cv::Val(Value::Int(-n))),
            Cv::Val(Value::Double(x)) => Ok(Cv::Val(Value::Double(-x))),
            Cv::Val(v) => Err(err(format!("- applied to non-number {v}"))),
        },
        CExpr::Bin(op @ (BinOp::And | BinOp::Or), l, r) => {
            let lv = ceval(l, own, other)?;
            if let Some(short) = logic_short_circuit(*op, &lv) {
                return Ok(short);
            }
            let rv = ceval(r, own, other)?;
            apply_logic(*op, lv, rv)
        }
        CExpr::Bin(op, l, r) => {
            let lv = ceval(l, own, other)?;
            let rv = ceval(r, own, other)?;
            match (lv, rv) {
                (Cv::Undefined, _) | (_, Cv::Undefined) => Ok(Cv::Undefined),
                (Cv::Val(a), Cv::Val(b)) => apply_bin_values(*op, a, b),
            }
        }
        CExpr::Ternary(c, a, b) => match ceval(c, own, other)? {
            Cv::Undefined => Ok(Cv::Undefined),
            Cv::Val(Value::Bool(true)) => ceval(a, own, other),
            Cv::Val(Value::Bool(false)) => ceval(b, own, other),
            Cv::Val(v) => Err(err(format!("ternary condition is non-boolean {v}"))),
        },
        CExpr::Call(func, args) => ceval_call(*func, args, own, other),
        CExpr::Raw(ex) => ex.eval(Ctx { own, other }),
    }
}

fn ceval_call(func: Func, args: &[CExpr], own: &Ad, other: &Ad) -> Result<Cv, EvalError> {
    match func {
        Func::Member => {
            let needle = match ceval(&args[0], own, other)? {
                Cv::Undefined => return Ok(Cv::Undefined),
                Cv::Val(v) => v,
            };
            let list = match ceval(&args[1], own, other)? {
                Cv::Undefined => return Ok(Cv::Undefined),
                Cv::Val(Value::List(items)) => items,
                Cv::Val(v) => vec![v],
            };
            Ok(Cv::Val(Value::Bool(member_contains(&list, &needle))))
        }
        Func::IsUndefined => Ok(Cv::Val(Value::Bool(matches!(
            ceval(&args[0], own, other)?,
            Cv::Undefined
        )))),
        Func::StringListMember => {
            let needle = match ceval(&args[0], own, other)? {
                Cv::Undefined => return Ok(Cv::Undefined),
                Cv::Val(Value::Str(s)) => s,
                Cv::Val(v) => {
                    return Err(err(format!(
                        "stringListMember needle must be a string, got {v}"
                    )))
                }
            };
            let list = match ceval(&args[1], own, other)? {
                Cv::Undefined => return Ok(Cv::Undefined),
                Cv::Val(Value::Str(s)) => s,
                Cv::Val(v) => {
                    return Err(err(format!(
                        "stringListMember list must be a string, got {v}"
                    )))
                }
            };
            let delims = match args.get(2) {
                None => ",".to_string(),
                Some(a) => match ceval(a, own, other)? {
                    Cv::Undefined => return Ok(Cv::Undefined),
                    Cv::Val(Value::Str(s)) => s,
                    Cv::Val(v) => return Err(err(format!("delims must be a string, got {v}"))),
                },
            };
            Ok(Cv::Val(Value::Bool(string_list_contains(
                &list, &delims, &needle,
            ))))
        }
        Func::Floor | Func::Ceiling | Func::Round | Func::Abs => {
            match ceval(&args[0], own, other)? {
                Cv::Undefined => Ok(Cv::Undefined),
                Cv::Val(v) => apply_rounding(func.kernel_name(), v),
            }
        }
        Func::Min | Func::Max => {
            let name = func.kernel_name();
            let mut best: Option<f64> = None;
            let mut all_int = true;
            for a in args {
                let v = match ceval(a, own, other)? {
                    Cv::Undefined => return Ok(Cv::Undefined),
                    Cv::Val(v) => v,
                };
                if !matches!(v, Value::Int(_)) {
                    all_int = false;
                }
                let x = v
                    .as_f64()
                    .ok_or_else(|| err(format!("{name}() needs numbers, got {v}")))?;
                best = Some(match best {
                    None => x,
                    Some(b) => {
                        if func == Func::Min {
                            b.min(x)
                        } else {
                            b.max(x)
                        }
                    }
                });
            }
            let x = best.expect("arity checked at compile time");
            Ok(Cv::Val(if all_int {
                Value::Int(x as i64)
            } else {
                Value::Double(x)
            }))
        }
        Func::Int => match ceval(&args[0], own, other)? {
            Cv::Undefined => Ok(Cv::Undefined),
            Cv::Val(v) => apply_int_cast(v),
        },
        Func::Real => match ceval(&args[0], own, other)? {
            Cv::Undefined => Ok(Cv::Undefined),
            Cv::Val(v) => apply_real_cast(v),
        },
    }
}

// ---------------------------------------------------------------------------
// Unsatisfiability analysis
// ---------------------------------------------------------------------------

/// A numeric interval with open/closed ends, refined per machine attribute
/// from the conjuncts of a compiled requirement.
#[derive(Debug, Clone)]
struct Constraint {
    lo: f64,
    lo_strict: bool,
    hi: f64,
    hi_strict: bool,
    /// A non-numeric `== const` pin (string/boolean equality).
    eq_other: Option<Value>,
    /// Whether any numeric bound has been applied.
    numeric: bool,
    conflict: bool,
}

impl Constraint {
    fn new() -> Constraint {
        Constraint {
            lo: f64::NEG_INFINITY,
            lo_strict: false,
            hi: f64::INFINITY,
            hi_strict: false,
            eq_other: None,
            numeric: false,
            conflict: false,
        }
    }

    fn clamp_lo(&mut self, x: f64, strict: bool) {
        if x > self.lo || (x == self.lo && strict) {
            self.lo = x;
            self.lo_strict = strict;
        }
    }

    fn clamp_hi(&mut self, x: f64, strict: bool) {
        if x < self.hi || (x == self.hi && strict) {
            self.hi = x;
            self.hi_strict = strict;
        }
    }

    fn apply_numeric(&mut self, op: BinOp, x: f64, is_int_attr: bool) {
        if self.eq_other.is_some() {
            // `a == "x" && a > 5`: whatever the runtime value, one of the
            // two conjuncts is false or undefined — never a match.
            self.conflict = true;
            return;
        }
        self.numeric = true;
        if is_int_attr {
            // Integer attributes let us tighten fractional bounds, catching
            // e.g. `FreeCpus > 4 && FreeCpus < 5`.
            match op {
                BinOp::Gt => self.clamp_lo(x.floor() + 1.0, false),
                BinOp::Ge => self.clamp_lo(x.ceil(), false),
                BinOp::Lt => self.clamp_hi(x.ceil() - 1.0, false),
                BinOp::Le => self.clamp_hi(x.floor(), false),
                BinOp::Eq => {
                    self.clamp_lo(x.ceil(), false);
                    self.clamp_hi(x.floor(), false);
                }
                _ => {}
            }
        } else {
            match op {
                BinOp::Gt => self.clamp_lo(x, true),
                BinOp::Ge => self.clamp_lo(x, false),
                BinOp::Lt => self.clamp_hi(x, true),
                BinOp::Le => self.clamp_hi(x, false),
                BinOp::Eq => {
                    self.clamp_lo(x, false);
                    self.clamp_hi(x, false);
                }
                _ => {}
            }
        }
    }

    fn apply_eq_value(&mut self, v: &Value) {
        if self.numeric {
            self.conflict = true;
            return;
        }
        match &self.eq_other {
            None => self.eq_other = Some(v.clone()),
            Some(prev) => {
                if !values_equal(prev, v) {
                    self.conflict = true;
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.conflict
            || self.lo > self.hi
            || (self.lo == self.hi && (self.lo_strict || self.hi_strict))
    }
}

/// Equality as the runtime `==` sees it: strings case-insensitively,
/// numbers by value, cross-type never equal.
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.eq_ignore_ascii_case(y),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
    }
}

fn collect_conjuncts<'a>(e: &'a CExpr, out: &mut Vec<&'a CExpr>) {
    if let CExpr::Bin(BinOp::And, l, r) = e {
        collect_conjuncts(l, out);
        collect_conjuncts(r, out);
    } else {
        out.push(e);
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// True when the compiled expression provably never evaluates to a defined
/// `true` — i.e. the requirement can never match any machine ad.
fn never_matches(e: &CExpr, machine: &Schema) -> Option<String> {
    match e {
        CExpr::Const(Cv::Val(Value::Bool(true))) => None,
        CExpr::Const(Cv::Val(Value::Bool(false))) => Some("it is always false".into()),
        CExpr::Const(Cv::Undefined) => {
            Some("it is always undefined, and undefined never matches".into())
        }
        CExpr::Const(Cv::Val(v)) => Some(format!("it always evaluates to {v}, not a boolean")),
        CExpr::Bin(BinOp::And, _, _) => {
            let mut conjuncts = Vec::new();
            collect_conjuncts(e, &mut conjuncts);
            // Any conjunct that can never be true poisons the conjunction.
            for c in &conjuncts {
                if let Some(why) = never_matches(c, machine) {
                    return Some(why);
                }
            }
            // Interval analysis across conjuncts, per machine attribute.
            let mut by_attr: BTreeMap<&str, Constraint> = BTreeMap::new();
            for c in &conjuncts {
                let CExpr::Bin(op, l, r) = c else { continue };
                let (name, op, value) = match (&**l, &**r) {
                    (CExpr::OtherRef(n), CExpr::Const(Cv::Val(v))) => (n.as_str(), *op, v),
                    (CExpr::Const(Cv::Val(v)), CExpr::OtherRef(n)) => (n.as_str(), flip(*op), v),
                    _ => continue,
                };
                let slot = by_attr.entry(name).or_insert_with(Constraint::new);
                match (op, value.as_f64()) {
                    (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq, Some(x)) => {
                        let is_int = machine.get(name) == Some(Ty::Int);
                        slot.apply_numeric(op, x, is_int);
                    }
                    (BinOp::Eq, None) => slot.apply_eq_value(value),
                    _ => {}
                }
            }
            for (name, c) in &by_attr {
                if c.is_empty() {
                    return Some(format!(
                        "the constraints on `other.{}` contradict each other",
                        machine.display_name(name)
                    ));
                }
            }
            None
        }
        CExpr::Bin(BinOp::Or, l, r) => {
            let lw = never_matches(l, machine)?;
            let _rw = never_matches(r, machine)?;
            Some(lw)
        }
        // A comparison or arithmetic against a known-undefined operand is
        // undefined for every machine ad.
        CExpr::Bin(op, l, r)
            if !matches!(op, BinOp::And | BinOp::Or)
                && (matches!(&**l, CExpr::Const(Cv::Undefined))
                    || matches!(&**r, CExpr::Const(Cv::Undefined))) =>
        {
            Some(format!(
                "`{}` against an undefined operand is always undefined",
                symbol(*op)
            ))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// The result of analysing an ad: diagnostics plus compiled
/// `Requirements`/`Rank` ready for the matchmaking hot loop.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
    /// Compiled `Requirements`, when the ad declares one as an expression.
    pub requirements: Option<CompiledExpr>,
    /// Compiled `Rank`, when the ad declares one as an expression.
    pub rank: Option<CompiledExpr>,
}

impl Analysis {
    /// True when any diagnostic is `Error`-severity; the broker rejects
    /// such ads at submit time.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }
}

/// Registered `SelectionPolicy` names the analyzer accepts without a W207
/// warning. The broker's policy registry (`crossbroker::PolicyKind`) is
/// the source of truth; a test over there asserts the two lists never
/// drift.
pub const SELECTION_POLICIES: &[&str] = &[
    "free-cpus-rank",
    "queue-forecast",
    "network-proximity",
    "lease-backoff",
];

/// Analyses a parsed ad against the job vocabulary and the given machine
/// schema. `spans` (from [`parse_ad_spanned`]) makes diagnostics
/// span-accurate; without it, positions fall back to 1:1.
pub fn analyze_ad(ad: &Ad, spans: Option<&AdSpans>, machine: &Schema) -> Analysis {
    let job = Schema::job();
    let mut diags = Vec::new();

    let name_pos = |name: &str| {
        spans
            .and_then(|s| s.name_pos(name))
            .unwrap_or(Pos { line: 1, col: 1 })
    };
    let synthetic = Span::synthetic();

    // Pass 1: top-level attribute vocabulary and value types.
    for (name, value) in ad.iter() {
        match job.get(name) {
            None => diags.push(
                Diagnostic::warning(
                    "W206",
                    name_pos(name),
                    format!("`{name}` is not a recognised job attribute"),
                )
                .with_help("it is kept in the ad but the broker ignores it"),
            ),
            Some(want) if want != Ty::Any => {
                let got = Ty::of_value(value);
                if got.is_definite() && !assignable(got, want) {
                    diags.push(Diagnostic::error(
                        "E102",
                        name_pos(name),
                        format!("`{name}` should be {want}, found {got}"),
                    ));
                }
            }
            Some(_) => {}
        }
    }

    // Pass 1b: SelectionPolicy value check. The attribute is advisory — an
    // unknown name makes the broker fall back to its configured default —
    // so a bad spelling warns instead of rejecting the ad. A non-string
    // value is already E102 from pass 1.
    if let Some(Value::Str(name)) = ad.get("SelectionPolicy") {
        if !SELECTION_POLICIES.contains(&name.as_str()) {
            diags.push(
                Diagnostic::warning(
                    "W207",
                    name_pos("SelectionPolicy"),
                    format!("unknown selection policy {name:?}"),
                )
                .with_help(format!(
                    "the broker falls back to its default; known policies: {}",
                    SELECTION_POLICIES.join(", ")
                )),
            );
        }
    }

    // Pass 2: Requirements — type check, fold/compile, unsat analysis.
    let mut requirements = None;
    if let Some(req_expr) = expr_of(ad.get("Requirements")) {
        let sp = spans
            .and_then(|s| s.value_span("Requirements"))
            .unwrap_or(&synthetic);
        let ty = Checker {
            own: ad,
            job: &job,
            machine,
            diags: &mut diags,
            visiting: Vec::new(),
        }
        .check(&req_expr, sp);
        if ty.is_definite() && ty != Ty::Bool {
            diags.push(Diagnostic::error(
                "E106",
                sp.pos,
                format!("Requirements has type {ty}, expected boolean"),
            ));
        }
        let root = compile_expr(&req_expr, sp, ad, &mut diags);
        if matches!(&root, CExpr::Const(Cv::Val(Value::Bool(true)))) {
            diags.push(
                Diagnostic::warning("W203", sp.pos, "Requirements is always true")
                    .with_help("every site matches; Rank alone decides placement"),
            );
        } else if let Some(why) = never_matches(&root, machine) {
            diags.push(
                Diagnostic::error(
                    "E108",
                    sp.pos,
                    format!("Requirements can never match: {why}"),
                )
                .with_help("the job would wait forever; fix the constraint before submitting"),
            );
        }
        requirements = Some(CompiledExpr { root });
    }

    // Pass 3: Rank — type check and compile.
    let mut rank = None;
    if let Some(rank_expr) = rank_expr_of(ad.get("Rank")) {
        let sp = spans
            .and_then(|s| s.value_span("Rank"))
            .unwrap_or(&synthetic);
        let ty = Checker {
            own: ad,
            job: &job,
            machine,
            diags: &mut diags,
            visiting: Vec::new(),
        }
        .check(&rank_expr, sp);
        if ty.is_definite() && !ty.is_numeric() {
            diags.push(
                Diagnostic::error(
                    "E107",
                    sp.pos,
                    format!("Rank has type {ty}; rank must be numeric"),
                )
                .with_help("a non-numeric rank silently evaluates to 0 for every site"),
            );
        }
        rank = Some(CompiledExpr {
            root: compile_expr(&rank_expr, sp, ad, &mut diags),
        });
    }

    diags.sort_by_key(|d| (d.pos.line, d.pos.col, d.code));
    Analysis {
        diagnostics: diags,
        requirements,
        rank,
    }
}

/// Analyses JDL source text end to end: lex/parse failures and
/// [`JobDescription`] validation failures become diagnostics (`P00x`,
/// `E109`) alongside the analyzer's own findings. This is what
/// `cgrun lint` runs.
pub fn analyze_source(src: &str, machine: &Schema) -> Analysis {
    let (ad, spans) = match parse_ad_spanned(src) {
        Ok(parsed) => parsed,
        Err(e) => {
            return Analysis {
                diagnostics: vec![e.into()],
                requirements: None,
                rank: None,
            }
        }
    };
    let mut analysis = analyze_ad(&ad, Some(&spans), machine);
    if let Err(e) = JobDescription::from_ad(ad) {
        analysis.diagnostics.insert(
            0,
            Diagnostic::error(
                "E109",
                Pos { line: 1, col: 1 },
                format!("invalid job description: {}", e.message),
            ),
        );
    }
    analysis
}

fn assignable(got: Ty, want: Ty) -> bool {
    got == want || (want == Ty::Number && matches!(got, Ty::Int | Ty::Double))
}

/// The Requirements attribute as an expression, mirroring
/// [`JobDescription::from_ad`]'s accepted shapes.
fn expr_of(v: Option<&Value>) -> Option<Expr> {
    match v {
        Some(Value::Expr(e)) => Some(e.clone()),
        Some(Value::Bool(b)) => Some(Expr::Bool(*b)),
        _ => None,
    }
}

/// The Rank attribute as an expression, mirroring
/// [`JobDescription::from_ad`]'s accepted shapes.
fn rank_expr_of(v: Option<&Value>) -> Option<Expr> {
    match v {
        Some(Value::Expr(e)) => Some(e.clone()),
        Some(Value::Int(n)) => Some(Expr::Int(*n)),
        Some(Value::Double(x)) => Some(Expr::Double(*x)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn lint(src: &str) -> Analysis {
        analyze_source(src, &Schema::machine())
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    const CLEAN: &str = r#"
        Executable   = "interactive_mpich-g2_app";
        JobType      = {"interactive", "mpich-g2"};
        NodeNumber   = 2;
        Requirements = other.FreeCpus >= NodeNumber && member("CROSSGRID", other.Tags);
        Rank         = other.FreeCpus * other.SpeedFactor;
    "#;

    #[test]
    fn clean_ad_has_no_diagnostics() {
        let a = lint(CLEAN);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(a.requirements.is_some());
        assert!(a.rank.is_some());
    }

    #[test]
    fn unknown_machine_attribute_is_e101_with_span() {
        let src = "Executable = \"app\";\nRequirements = other.FreeCpu > 1;\n";
        let a = lint(src);
        assert_eq!(codes(&a), vec!["E101"]);
        let d = &a.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!((d.pos.line, d.pos.col), (2, 16));
        assert!(d.message.contains("other.FreeCpu"));
        assert!(d.help.as_deref().unwrap_or("").contains("FreeCpus"));
    }

    #[test]
    fn unknown_own_attribute_is_e101() {
        // The unknown reference compiles to undefined, so the requirement is
        // additionally reported as unsatisfiable.
        let a = lint("Executable = \"app\";\nRequirements = Minimum > 1;\n");
        assert_eq!(codes(&a), vec!["E101", "E108"]);
    }

    #[test]
    fn type_mismatch_in_expression_is_e102() {
        let a = lint("Executable = \"app\";\nRequirements = other.FreeCpus + \"x\" > 2;\n");
        assert_eq!(codes(&a), vec!["E102"]);
        assert_eq!(a.diagnostics[0].pos.line, 2);
    }

    #[test]
    fn top_level_type_mismatch_is_e102() {
        let a = lint("Executable = \"app\";\nNodeNumber = \"two\";\n");
        // E109 from JobDescription validation plus the schema mismatch.
        assert!(codes(&a).contains(&"E102"));
        assert!(codes(&a).contains(&"E109"));
    }

    #[test]
    fn unsatisfiable_interval_is_e108() {
        let a = lint(
            "Executable = \"app\";\nRequirements = other.FreeCpus > 4 && other.FreeCpus < 2;\n",
        );
        assert_eq!(codes(&a), vec!["E108"]);
        assert!(a.diagnostics[0].message.contains("FreeCpus"));
    }

    #[test]
    fn integer_tightening_detects_empty_open_interval() {
        // No integer lies in (4, 5); for a Double attribute this is satisfiable.
        let a = lint(
            "Executable = \"app\";\nRequirements = other.FreeCpus > 4 && other.FreeCpus < 5;\n",
        );
        assert_eq!(codes(&a), vec!["E108"]);
        let b = lint(
            "Executable = \"app\";\nRequirements = other.SpeedFactor > 4 && other.SpeedFactor < 5;\n",
        );
        assert!(codes(&b).is_empty(), "{:?}", b.diagnostics);
    }

    #[test]
    fn contradictory_string_pins_are_e108() {
        let a = lint(
            "Executable = \"app\";\nRequirements = other.OpSys == \"linux\" && other.OpSys == \"aix\";\n",
        );
        assert_eq!(codes(&a), vec!["E108"]);
        // Case-insensitive equality is not a contradiction.
        let b = lint(
            "Executable = \"app\";\nRequirements = other.OpSys == \"linux\" && other.OpSys == \"LINUX\";\n",
        );
        assert!(codes(&b).is_empty());
    }

    #[test]
    fn or_needs_both_arms_unsat() {
        let a = lint(
            "Executable = \"app\";\nRequirements = (other.FreeCpus > 4 && other.FreeCpus < 2) || other.AcceptsQueued;\n",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn requirement_against_unset_attribute_is_unsat() {
        // NodeNumber unset: the comparison is undefined on every site.
        let a = lint("Executable = \"app\";\nRequirements = other.FreeCpus >= NodeNumber;\n");
        assert_eq!(codes(&a), vec!["E108", "W205"]);
    }

    #[test]
    fn constant_false_requirements_is_e108() {
        let a = lint("Executable = \"app\";\nRequirements = false;\n");
        assert_eq!(codes(&a), vec!["E108"]);
    }

    #[test]
    fn tautological_requirements_is_w203() {
        let a = lint("Executable = \"app\";\nRequirements = 1 + 1 == 2;\n");
        assert_eq!(codes(&a), vec!["W203"]);
        assert!(!a.has_errors());
    }

    #[test]
    fn non_numeric_rank_is_e107() {
        let a = lint("Executable = \"app\";\nRank = other.OpSys;\n");
        assert_eq!(codes(&a), vec!["E107"]);
        assert_eq!(a.diagnostics[0].pos.line, 2);
    }

    #[test]
    fn non_boolean_requirements_is_e106() {
        let a = lint("Executable = \"app\";\nRequirements = other.FreeCpus + 1;\n");
        assert!(codes(&a).contains(&"E106"));
    }

    #[test]
    fn dead_branch_is_w204() {
        let a = lint("Executable = \"app\";\nRequirements = false && other.AcceptsQueued;\n");
        assert!(codes(&a).contains(&"W204"));
        assert!(codes(&a).contains(&"E108"));
    }

    #[test]
    fn unknown_function_and_arity() {
        let a = lint("Executable = \"app\";\nRequirements = frobnicate(1) == 1;\n");
        assert_eq!(codes(&a), vec!["E104"]);
        let b = lint("Executable = \"app\";\nRequirements = member(\"x\");\n");
        assert_eq!(codes(&b), vec!["E103"]);
    }

    #[test]
    fn unknown_scope_is_e105() {
        let a = lint("Executable = \"app\";\nRequirements = target.FreeCpus > 1;\n");
        assert!(codes(&a).contains(&"E105"));
    }

    #[test]
    fn vocabulary_warning_is_w206() {
        let a = lint("Executable = \"app\";\nHoldKludge = 3;\n");
        assert_eq!(codes(&a), vec!["W206"]);
        assert_eq!(a.diagnostics[0].pos, Pos { line: 2, col: 1 });
    }

    #[test]
    fn unknown_selection_policy_is_w207() {
        // Known names lint clean.
        for name in SELECTION_POLICIES {
            let a = lint(&format!(
                "Executable = \"app\";\nSelectionPolicy = \"{name}\";\n"
            ));
            assert!(codes(&a).is_empty(), "{name}: {:?}", a.diagnostics);
        }
        // Unknown names warn — the broker will fall back to its default —
        // and the help lists the registry.
        let a = lint("Executable = \"app\";\nSelectionPolicy = \"best-effort\";\n");
        assert_eq!(codes(&a), vec!["W207"]);
        assert_eq!(a.diagnostics[0].severity, Severity::Warning);
        assert_eq!(a.diagnostics[0].pos, Pos { line: 2, col: 1 });
        assert!(a.diagnostics[0]
            .help
            .as_deref()
            .unwrap_or_default()
            .contains("queue-forecast"));
        // A non-string value is a type error (schema pass) plus a typed-view
        // rejection, not a W207 (there is no name to look up).
        let a = lint("Executable = \"app\";\nSelectionPolicy = 3;\n");
        assert!(codes(&a).contains(&"E102"), "{:?}", a.diagnostics);
        assert!(!codes(&a).contains(&"W207"), "{:?}", a.diagnostics);
    }

    #[test]
    fn is_undefined_suppresses_reference_diagnostics() {
        let a = lint(
            "Executable = \"app\";\nRequirements = isUndefined(other.Bogus) || other.FreeCpus > 0;\n",
        );
        assert!(codes(&a).is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn cyclic_reference_is_e110() {
        let mut ad = Ad::new();
        ad.set_str("Executable", "app");
        ad.set("A", Value::Expr(parse_expr("B + 1").unwrap()));
        ad.set("B", Value::Expr(parse_expr("A + 1").unwrap()));
        ad.set("Requirements", Value::Expr(parse_expr("A > 0").unwrap()));
        let a = analyze_ad(&ad, None, &Schema::machine());
        assert!(codes(&a).contains(&"E110"), "{:?}", a.diagnostics);
    }

    #[test]
    fn parse_failure_is_p002() {
        let a = lint("Executable = ;");
        assert_eq!(codes(&a), vec!["P002"]);
        assert!(a.has_errors());
    }

    #[test]
    fn render_is_rustc_style() {
        let src = "Executable = \"app\";\nRequirements = other.FreeCpu > 1;\n";
        let a = lint(src);
        let out = a.diagnostics[0].render("job.jdl", src);
        assert!(out.contains("error[E101]"), "{out}");
        assert!(out.contains("--> job.jdl:2:16"), "{out}");
        assert!(out.contains("2 | Requirements"), "{out}");
        assert!(out.lines().any(|l| l.trim_end().ends_with('^')), "{out}");
    }

    #[test]
    fn compiled_matches_agrees_with_raw_eval() {
        let job = crate::JobDescription::parse(CLEAN).unwrap();
        let req = job.requirements.clone().unwrap();
        let rank = job.rank.clone().unwrap();
        let a = job.analyze();
        let creq = a.requirements.as_ref().unwrap();
        let crank = a.rank.as_ref().unwrap();

        let mut site = Ad::new();
        site.set_int("FreeCpus", 4).set_double("SpeedFactor", 1.5);
        site.set(
            "Tags",
            Value::List(vec![Value::Str("crossgrid".into()), Value::Str("x".into())]),
        );
        let ctx = Ctx {
            own: &job.ad,
            other: &site,
        };
        assert!(matches!(req.eval_requirement(ctx), Ok(true)));
        assert!(creq.matches(&job.ad, &site));
        assert_eq!(crank.rank(&job.ad, &site), rank.eval_rank(ctx).unwrap());

        // A site missing Tags: undefined, no match either way.
        let mut bare = Ad::new();
        bare.set_int("FreeCpus", 4);
        let bctx = Ctx {
            own: &job.ad,
            other: &bare,
        };
        assert!(!matches!(req.eval_requirement(bctx), Ok(true)));
        assert!(!creq.matches(&job.ad, &bare));
    }

    #[test]
    fn compiled_form_substitutes_own_attributes() {
        let job = crate::JobDescription::parse(CLEAN).unwrap();
        let a = job.analyze();
        // NodeNumber folded in: the compiled tree has no own-references.
        fn no_own(e: &CExpr) -> bool {
            match e {
                CExpr::OwnExpr(_) | CExpr::Raw(_) => false,
                CExpr::Const(_) | CExpr::OtherRef(_) | CExpr::OtherListRef(_) => true,
                CExpr::Not(x) | CExpr::Neg(x) => no_own(x),
                CExpr::Bin(_, l, r) => no_own(l) && no_own(r),
                CExpr::Ternary(c, x, y) => no_own(c) && no_own(x) && no_own(y),
                CExpr::Call(_, args) => args.iter().all(no_own),
            }
        }
        assert!(no_own(&a.requirements.as_ref().unwrap().root));
    }

    #[test]
    fn compiled_const_requirements_folds_away() {
        let mut ad = Ad::new();
        ad.set("Requirements", Value::Expr(parse_expr("2 > 1").unwrap()));
        let a = analyze_ad(&ad, None, &Schema::machine());
        let c = a.requirements.unwrap();
        assert_eq!(c.as_const(), Some(&Cv::Val(Value::Bool(true))));
    }

    #[test]
    fn runtime_errors_survive_compilation() {
        // `!1` errors at runtime; folding must not hide that.
        let e = parse_expr("!1").unwrap();
        let own = Ad::new();
        let c = CompiledExpr::compile(&e, &own);
        assert!(c.as_const().is_none());
        assert!(c.eval(&own, &Ad::new()).is_err());
        assert!(!c.matches(&own, &Ad::new()));
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        assert_eq!(Schema::machine().get("freecpus"), Some(Ty::Int));
        assert_eq!(Schema::machine().get("FREECPUS"), Some(Ty::Int));
        assert_eq!(Schema::job().get("rank"), Some(Ty::Number));
    }

    #[test]
    fn infer_from_ad_matches_declared_types() {
        let mut ad = Ad::new();
        ad.set_str("Site", "x").set_int("FreeCpus", 4);
        ad.set_double("SpeedFactor", 1.0)
            .set_bool("AcceptsQueued", true);
        ad.set("Tags", Value::List(vec![]));
        let s = Schema::infer_from_ad(&ad);
        assert_eq!(s.get("site"), Some(Ty::Str));
        assert_eq!(s.get("FreeCpus"), Some(Ty::Int));
        assert_eq!(s.get("speedfactor"), Some(Ty::Double));
        assert_eq!(s.get("AcceptsQueued"), Some(Ty::Bool));
        assert_eq!(s.get("tags"), Some(Ty::List));
    }
}
