//! Requirements/Rank expressions — a ClassAd-lite language with tri-state
//! (`undefined`-propagating) semantics, used for matchmaking between job
//! descriptions and machine advertisements.
//!
//! In a job's expression, a bare name refers to the job's own attributes and
//! `other.Name` refers to the candidate machine's — the matchmaking convention
//! of Condor ClassAds, which the EDG/CrossGrid JDL inherited.

use std::fmt;

use crate::ast::{Ad, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Double(f64),
    /// Boolean literal.
    Bool(bool),
    /// The `undefined` literal.
    Undefined,
    /// Attribute reference; `scope` is `Some("other")` for machine attributes.
    Ref {
        /// `None` = own ad, `Some(scope)` = the named counterpart ad.
        scope: Option<String>,
        /// Attribute name.
        name: String,
    },
    /// Logical negation `!e`.
    Not(Box<Expr>),
    /// Arithmetic negation `-e`.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call; supported: `member(value, list)`.
    Call(String, Vec<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Double(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Undefined => write!(f, "undefined"),
            Expr::Ref { scope, name } => match scope {
                Some(s) => write!(f, "{s}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Ternary(c, a, b) => write!(f, "({c} ? {a} : {b})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Result of evaluating an expression: a value or `undefined`.
///
/// Undefined propagates through most operators, but `&&`/`||` short-circuit
/// around it when the defined side decides the result — exactly the ClassAd
/// behaviour that lets `Requirements` survive machines missing an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Cv {
    /// A concrete value.
    Val(Value),
    /// The undefined state.
    Undefined,
}

impl Cv {
    fn bool_or_undef(&self) -> Option<bool> {
        match self {
            Cv::Val(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

/// An evaluation type error (e.g. `"a" + 1`). Undefined attributes are NOT
/// errors — they evaluate to [`Cv::Undefined`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eval error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

pub(crate) fn err(message: impl Into<String>) -> EvalError {
    EvalError {
        message: message.into(),
    }
}

/// Evaluation context: the expression's own ad plus the counterpart
/// (`other.*`) ad.
#[derive(Debug, Clone, Copy)]
pub struct Ctx<'a> {
    /// The ad the expression belongs to (bare references).
    pub own: &'a Ad,
    /// The counterpart ad (`other.*` references).
    pub other: &'a Ad,
}

impl Expr {
    /// Evaluates the expression in a matchmaking context.
    pub fn eval(&self, ctx: Ctx<'_>) -> Result<Cv, EvalError> {
        match self {
            Expr::Str(s) => Ok(Cv::Val(Value::Str(s.clone()))),
            Expr::Int(n) => Ok(Cv::Val(Value::Int(*n))),
            Expr::Double(x) => Ok(Cv::Val(Value::Double(*x))),
            Expr::Bool(b) => Ok(Cv::Val(Value::Bool(*b))),
            Expr::Undefined => Ok(Cv::Undefined),
            Expr::Ref { scope, name } => {
                let ad = match scope.as_deref() {
                    None | Some("self") => ctx.own,
                    Some("other") => ctx.other,
                    Some(s) => return Err(err(format!("unknown scope `{s}`"))),
                };
                match ad.get(name) {
                    // A stored expression evaluates in the owning ad's frame —
                    // with `own` and `other` swapped when reached via `other.`.
                    Some(Value::Expr(e)) => {
                        let frame = if scope.as_deref() == Some("other") {
                            Ctx {
                                own: ctx.other,
                                other: ctx.own,
                            }
                        } else {
                            ctx
                        };
                        e.eval(frame)
                    }
                    Some(v) => Ok(Cv::Val(v.clone())),
                    None => Ok(Cv::Undefined),
                }
            }
            Expr::Not(e) => match e.eval(ctx)? {
                Cv::Undefined => Ok(Cv::Undefined),
                Cv::Val(Value::Bool(b)) => Ok(Cv::Val(Value::Bool(!b))),
                Cv::Val(v) => Err(err(format!("! applied to non-boolean {v}"))),
            },
            Expr::Neg(e) => match e.eval(ctx)? {
                Cv::Undefined => Ok(Cv::Undefined),
                Cv::Val(Value::Int(n)) => Ok(Cv::Val(Value::Int(-n))),
                Cv::Val(Value::Double(x)) => Ok(Cv::Val(Value::Double(-x))),
                Cv::Val(v) => Err(err(format!("- applied to non-number {v}"))),
            },
            Expr::Bin(op, l, r) => eval_bin(*op, l, r, ctx),
            Expr::Ternary(c, a, b) => match c.eval(ctx)? {
                Cv::Undefined => Ok(Cv::Undefined),
                Cv::Val(Value::Bool(true)) => a.eval(ctx),
                Cv::Val(Value::Bool(false)) => b.eval(ctx),
                Cv::Val(v) => Err(err(format!("ternary condition is non-boolean {v}"))),
            },
            Expr::Call(name, args) => eval_call(name, args, ctx),
        }
    }

    /// Evaluates as a boolean requirement: `true` only when the expression is
    /// defined and true (ClassAd matchmaking treats undefined as no-match).
    pub fn eval_requirement(&self, ctx: Ctx<'_>) -> Result<bool, EvalError> {
        Ok(matches!(self.eval(ctx)?, Cv::Val(Value::Bool(true))))
    }

    /// Evaluates as a rank: a number, with undefined or non-numeric treated
    /// as 0 (ClassAd rank semantics).
    pub fn eval_rank(&self, ctx: Ctx<'_>) -> Result<f64, EvalError> {
        Ok(match self.eval(ctx)? {
            Cv::Val(v) => v.as_f64().unwrap_or(0.0),
            Cv::Undefined => 0.0,
        })
    }
}

fn eval_bin(op: BinOp, l: &Expr, r: &Expr, ctx: Ctx<'_>) -> Result<Cv, EvalError> {
    // Short-circuiting logic with ClassAd undefined-absorption.
    if matches!(op, BinOp::And | BinOp::Or) {
        let lv = l.eval(ctx)?;
        if let Some(short) = logic_short_circuit(op, &lv) {
            return Ok(short);
        }
        let rv = r.eval(ctx)?;
        return apply_logic(op, lv, rv);
    }

    let lv = l.eval(ctx)?;
    let rv = r.eval(ctx)?;
    let (a, b) = match (lv, rv) {
        (Cv::Undefined, _) | (_, Cv::Undefined) => return Ok(Cv::Undefined),
        (Cv::Val(a), Cv::Val(b)) => (a, b),
    };
    apply_bin_values(op, a, b)
}

/// The `&&`/`||` fast exit after evaluating only the left side: a defined
/// `false && …` / `true || …` decides without touching the right side.
pub(crate) fn logic_short_circuit(op: BinOp, lv: &Cv) -> Option<Cv> {
    match (op, lv.bool_or_undef()) {
        (BinOp::And, Some(false)) => Some(Cv::Val(Value::Bool(false))),
        (BinOp::Or, Some(true)) => Some(Cv::Val(Value::Bool(true))),
        _ => None,
    }
}

/// Joins two evaluated operands of `&&`/`||` with ClassAd
/// undefined-absorption. Assumes [`logic_short_circuit`] already ran.
pub(crate) fn apply_logic(op: BinOp, lv: Cv, rv: Cv) -> Result<Cv, EvalError> {
    Ok(match (op, lv, rv) {
        (_, Cv::Val(Value::Bool(a)), Cv::Val(Value::Bool(b))) => {
            let v = if op == BinOp::And { a && b } else { a || b };
            Cv::Val(Value::Bool(v))
        }
        // One side undefined: absorbed only if the defined side decides.
        (BinOp::And, Cv::Undefined, Cv::Val(Value::Bool(false)))
        | (BinOp::And, Cv::Val(Value::Bool(false)), Cv::Undefined) => Cv::Val(Value::Bool(false)),
        (BinOp::Or, Cv::Undefined, Cv::Val(Value::Bool(true)))
        | (BinOp::Or, Cv::Val(Value::Bool(true)), Cv::Undefined) => Cv::Val(Value::Bool(true)),
        (_, Cv::Undefined, _) | (_, _, Cv::Undefined) => Cv::Undefined,
        (_, Cv::Val(a), Cv::Val(b)) => {
            return Err(err(format!("logical op on non-booleans {a} and {b}")))
        }
    })
}

/// Applies a comparison or arithmetic operator to two defined values —
/// the shared kernel behind both the AST walker and the compiled form.
pub(crate) fn apply_bin_values(op: BinOp, a: Value, b: Value) -> Result<Cv, EvalError> {
    // Comparisons.
    if matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    ) {
        let ord = match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => {
                // ClassAd string comparison is case-insensitive.
                Some(x.to_ascii_lowercase().cmp(&y.to_ascii_lowercase()))
            }
            (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        };
        let Some(ord) = ord else {
            // Cross-type comparisons: == is false, != is true, order is undefined.
            return Ok(match op {
                BinOp::Eq => Cv::Val(Value::Bool(false)),
                BinOp::Ne => Cv::Val(Value::Bool(true)),
                _ => Cv::Undefined,
            });
        };
        let b = match op {
            BinOp::Eq => ord.is_eq(),
            BinOp::Ne => ord.is_ne(),
            BinOp::Lt => ord.is_lt(),
            BinOp::Le => ord.is_le(),
            BinOp::Gt => ord.is_gt(),
            BinOp::Ge => ord.is_ge(),
            _ => unreachable!(),
        };
        return Ok(Cv::Val(Value::Bool(b)));
    }

    // Arithmetic. Int op Int stays Int (except /, % by zero = undefined).
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            BinOp::Add => Cv::Val(Value::Int(x.wrapping_add(*y))),
            BinOp::Sub => Cv::Val(Value::Int(x.wrapping_sub(*y))),
            BinOp::Mul => Cv::Val(Value::Int(x.wrapping_mul(*y))),
            BinOp::Div => {
                if *y == 0 {
                    Cv::Undefined
                } else {
                    Cv::Val(Value::Int(x.wrapping_div(*y)))
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    Cv::Undefined
                } else {
                    Cv::Val(Value::Int(x.wrapping_rem(*y)))
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                return Err(err(format!("arithmetic on non-numbers {a} and {b}")));
            };
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return Ok(Cv::Undefined);
                    }
                    x / y
                }
                BinOp::Mod => {
                    if y == 0.0 {
                        return Ok(Cv::Undefined);
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Cv::Val(Value::Double(v)))
        }
    }
}

fn eval_call(name: &str, args: &[Expr], ctx: Ctx<'_>) -> Result<Cv, EvalError> {
    match name.to_ascii_lowercase().as_str() {
        "member" => {
            if args.len() != 2 {
                return Err(err("member() takes exactly 2 arguments"));
            }
            let needle = match args[0].eval(ctx)? {
                Cv::Undefined => return Ok(Cv::Undefined),
                Cv::Val(v) => v,
            };
            // The list argument must be a reference to a list-valued attribute
            // or a literal — evaluate the ref manually.
            let list = match &args[1] {
                Expr::Ref { scope, name } => {
                    let ad = match scope.as_deref() {
                        None | Some("self") => ctx.own,
                        Some("other") => ctx.other,
                        Some(s) => return Err(err(format!("unknown scope `{s}`"))),
                    };
                    match ad.get(name) {
                        Some(Value::List(items)) => items.clone(),
                        Some(v) => vec![v.clone()],
                        None => return Ok(Cv::Undefined),
                    }
                }
                other => match other.eval(ctx)? {
                    Cv::Undefined => return Ok(Cv::Undefined),
                    Cv::Val(Value::List(items)) => items,
                    Cv::Val(v) => vec![v],
                },
            };
            Ok(Cv::Val(Value::Bool(member_contains(&list, &needle))))
        }
        "isundefined" => {
            if args.len() != 1 {
                return Err(err("isUndefined() takes exactly 1 argument"));
            }
            Ok(Cv::Val(Value::Bool(matches!(
                args[0].eval(ctx)?,
                Cv::Undefined
            ))))
        }
        "stringlistmember" => {
            // stringListMember("needle", "a,b,c" [, "delims"])
            if !(args.len() == 2 || args.len() == 3) {
                return Err(err("stringListMember() takes 2 or 3 arguments"));
            }
            let needle = match args[0].eval(ctx)? {
                Cv::Undefined => return Ok(Cv::Undefined),
                Cv::Val(Value::Str(s)) => s,
                Cv::Val(v) => {
                    return Err(err(format!(
                        "stringListMember needle must be a string, got {v}"
                    )))
                }
            };
            let list = match args[1].eval(ctx)? {
                Cv::Undefined => return Ok(Cv::Undefined),
                Cv::Val(Value::Str(s)) => s,
                Cv::Val(v) => {
                    return Err(err(format!(
                        "stringListMember list must be a string, got {v}"
                    )))
                }
            };
            let delims = match args.get(2) {
                None => ",".to_string(),
                Some(a) => match a.eval(ctx)? {
                    Cv::Undefined => return Ok(Cv::Undefined),
                    Cv::Val(Value::Str(s)) => s,
                    Cv::Val(v) => return Err(err(format!("delims must be a string, got {v}"))),
                },
            };
            Ok(Cv::Val(Value::Bool(string_list_contains(
                &list, &delims, &needle,
            ))))
        }
        name @ ("floor" | "ceiling" | "round" | "abs") => {
            if args.len() != 1 {
                return Err(err(format!("{name}() takes exactly 1 argument")));
            }
            match args[0].eval(ctx)? {
                Cv::Undefined => Ok(Cv::Undefined),
                Cv::Val(v) => apply_rounding(name, v),
            }
        }
        name @ ("min" | "max") => {
            if args.is_empty() {
                return Err(err(format!("{name}() needs at least 1 argument")));
            }
            let mut best: Option<f64> = None;
            let mut all_int = true;
            for a in args {
                let v = match a.eval(ctx)? {
                    Cv::Undefined => return Ok(Cv::Undefined),
                    Cv::Val(v) => v,
                };
                if !matches!(v, Value::Int(_)) {
                    all_int = false;
                }
                let x = v
                    .as_f64()
                    .ok_or_else(|| err(format!("{name}() needs numbers, got {v}")))?;
                best = Some(match best {
                    None => x,
                    Some(b) => {
                        if name == "min" {
                            b.min(x)
                        } else {
                            b.max(x)
                        }
                    }
                });
            }
            let x = best.expect("non-empty");
            Ok(Cv::Val(if all_int {
                Value::Int(x as i64)
            } else {
                Value::Double(x)
            }))
        }
        "int" => {
            if args.len() != 1 {
                return Err(err("int() takes exactly 1 argument"));
            }
            match args[0].eval(ctx)? {
                Cv::Undefined => Ok(Cv::Undefined),
                Cv::Val(v) => apply_int_cast(v),
            }
        }
        "real" => {
            if args.len() != 1 {
                return Err(err("real() takes exactly 1 argument"));
            }
            match args[0].eval(ctx)? {
                Cv::Undefined => Ok(Cv::Undefined),
                Cv::Val(v) => apply_real_cast(v),
            }
        }
        other => Err(err(format!("unknown function `{other}`"))),
    }
}

/// `member()` membership test over resolved list items: strings compare
/// case-insensitively, numbers by value, everything else structurally.
pub(crate) fn member_contains(list: &[Value], needle: &Value) -> bool {
    list.iter().any(|item| match (item, needle) {
        (Value::Str(a), Value::Str(b)) => a.eq_ignore_ascii_case(b),
        (a, b) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => a == b,
        },
    })
}

/// `stringListMember()` membership test over a delimited string list.
pub(crate) fn string_list_contains(list: &str, delims: &str, needle: &str) -> bool {
    list.split(|c| delims.contains(c))
        .map(str::trim)
        .any(|item| item.eq_ignore_ascii_case(needle))
}

/// `floor`/`ceiling`/`round`/`abs` on a defined value.
pub(crate) fn apply_rounding(name: &str, v: Value) -> Result<Cv, EvalError> {
    match v {
        Value::Int(n) => Ok(Cv::Val(Value::Int(if name == "abs" {
            n.wrapping_abs()
        } else {
            n
        }))),
        Value::Double(x) => {
            let y = match name {
                "floor" => x.floor(),
                "ceiling" => x.ceil(),
                "round" => x.round(),
                _ => x.abs(),
            };
            if name == "abs" {
                Ok(Cv::Val(Value::Double(y)))
            } else {
                Ok(Cv::Val(Value::Int(y as i64)))
            }
        }
        other => Err(err(format!("{name}() needs a number, got {other}"))),
    }
}

/// `int()` on a defined value.
pub(crate) fn apply_int_cast(v: Value) -> Result<Cv, EvalError> {
    match v {
        Value::Int(n) => Ok(Cv::Val(Value::Int(n))),
        Value::Double(x) => Ok(Cv::Val(Value::Int(x as i64))),
        Value::Bool(b) => Ok(Cv::Val(Value::Int(b as i64))),
        Value::Str(s) => match s.trim().parse::<i64>() {
            Ok(n) => Ok(Cv::Val(Value::Int(n))),
            Err(_) => Ok(Cv::Undefined),
        },
        v => Err(err(format!("int() cannot convert {v}"))),
    }
}

/// `real()` on a defined value.
pub(crate) fn apply_real_cast(v: Value) -> Result<Cv, EvalError> {
    match v {
        Value::Int(n) => Ok(Cv::Val(Value::Double(n as f64))),
        Value::Double(x) => Ok(Cv::Val(Value::Double(x))),
        Value::Str(s) => match s.trim().parse::<f64>() {
            Ok(x) => Ok(Cv::Val(Value::Double(x))),
            Err(_) => Ok(Cv::Undefined),
        },
        v => Err(err(format!("real() cannot convert {v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Ad {
        let mut ad = Ad::new();
        ad.set_str("Arch", "i686")
            .set_str("OpSys", "LINUX")
            .set_int("FreeCpus", 4)
            .set_double("LoadAvg", 0.25)
            .set(
                "RunTimeEnv",
                Value::List(vec![
                    Value::Str("MPICH-G2".into()),
                    Value::Str("CROSSGRID".into()),
                ]),
            );
        ad
    }

    fn job() -> Ad {
        let mut ad = Ad::new();
        ad.set_int("NodeNumber", 2).set_str("VO", "cg");
        ad
    }

    fn eval(src_expr: Expr) -> Cv {
        let j = job();
        let m = machine();
        src_expr.eval(Ctx { own: &j, other: &m }).unwrap()
    }

    fn other_ref(name: &str) -> Expr {
        Expr::Ref {
            scope: Some("other".into()),
            name: name.into(),
        }
    }

    fn own_ref(name: &str) -> Expr {
        Expr::Ref {
            scope: None,
            name: name.into(),
        }
    }

    #[test]
    fn refs_resolve_to_the_right_ad() {
        assert_eq!(eval(other_ref("FreeCpus")), Cv::Val(Value::Int(4)));
        assert_eq!(eval(own_ref("NodeNumber")), Cv::Val(Value::Int(2)));
        assert_eq!(eval(own_ref("FreeCpus")), Cv::Undefined);
    }

    #[test]
    fn comparisons_work_and_strings_fold_case() {
        let e = Expr::Bin(
            BinOp::Ge,
            Box::new(other_ref("FreeCpus")),
            Box::new(own_ref("NodeNumber")),
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(true)));
        let e = Expr::Bin(
            BinOp::Eq,
            Box::new(other_ref("OpSys")),
            Box::new(Expr::Str("linux".into())),
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(true)));
    }

    #[test]
    fn cross_type_equality_is_false_order_undefined() {
        let e = Expr::Bin(
            BinOp::Eq,
            Box::new(Expr::Str("x".into())),
            Box::new(Expr::Int(1)),
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(false)));
        let e = Expr::Bin(
            BinOp::Ne,
            Box::new(Expr::Str("x".into())),
            Box::new(Expr::Int(1)),
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(true)));
        let e = Expr::Bin(
            BinOp::Lt,
            Box::new(Expr::Str("x".into())),
            Box::new(Expr::Int(1)),
        );
        assert_eq!(eval(e), Cv::Undefined);
    }

    #[test]
    fn undefined_propagates_through_arithmetic_and_comparison() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(own_ref("missing")),
            Box::new(Expr::Int(1)),
        );
        assert_eq!(eval(e), Cv::Undefined);
        let e = Expr::Bin(
            BinOp::Lt,
            Box::new(own_ref("missing")),
            Box::new(Expr::Int(1)),
        );
        assert_eq!(eval(e), Cv::Undefined);
    }

    #[test]
    fn logic_absorbs_undefined_when_decided() {
        // false && undefined == false
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bool(false)),
            Box::new(own_ref("missing")),
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(false)));
        // undefined && false == false
        let e = Expr::Bin(
            BinOp::And,
            Box::new(own_ref("missing")),
            Box::new(Expr::Bool(false)),
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(false)));
        // true || undefined == true (short-circuit)
        let e = Expr::Bin(
            BinOp::Or,
            Box::new(Expr::Bool(true)),
            Box::new(own_ref("missing")),
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(true)));
        // true && undefined == undefined
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bool(true)),
            Box::new(own_ref("missing")),
        );
        assert_eq!(eval(e), Cv::Undefined);
    }

    #[test]
    fn int_arithmetic_stays_int_division_by_zero_undefined() {
        let e = Expr::Bin(BinOp::Add, Box::new(Expr::Int(2)), Box::new(Expr::Int(3)));
        assert_eq!(eval(e), Cv::Val(Value::Int(5)));
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::Int(7)), Box::new(Expr::Int(2)));
        assert_eq!(eval(e), Cv::Val(Value::Int(3)));
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::Int(7)), Box::new(Expr::Int(0)));
        assert_eq!(eval(e), Cv::Undefined);
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Int(2)),
            Box::new(Expr::Double(1.5)),
        );
        assert_eq!(eval(e), Cv::Val(Value::Double(3.0)));
    }

    #[test]
    fn member_checks_runtime_environments() {
        let e = Expr::Call(
            "Member".into(),
            vec![Expr::Str("mpich-g2".into()), other_ref("RunTimeEnv")],
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(true)));
        let e = Expr::Call(
            "member".into(),
            vec![Expr::Str("PVM".into()), other_ref("RunTimeEnv")],
        );
        assert_eq!(eval(e), Cv::Val(Value::Bool(false)));
        let e = Expr::Call(
            "member".into(),
            vec![Expr::Str("x".into()), other_ref("NoSuchList")],
        );
        assert_eq!(eval(e), Cv::Undefined);
    }

    #[test]
    fn is_undefined_function() {
        let e = Expr::Call("isUndefined".into(), vec![own_ref("missing")]);
        assert_eq!(eval(e), Cv::Val(Value::Bool(true)));
        let e = Expr::Call("isUndefined".into(), vec![own_ref("NodeNumber")]);
        assert_eq!(eval(e), Cv::Val(Value::Bool(false)));
    }

    #[test]
    fn ternary_branches() {
        let e = Expr::Ternary(
            Box::new(Expr::Bool(true)),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Int(2)),
        );
        assert_eq!(eval(e), Cv::Val(Value::Int(1)));
        let e = Expr::Ternary(
            Box::new(own_ref("missing")),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Int(2)),
        );
        assert_eq!(eval(e), Cv::Undefined);
    }

    #[test]
    fn requirement_and_rank_views() {
        let j = job();
        let m = machine();
        let ctx = Ctx { own: &j, other: &m };
        let req = Expr::Bin(
            BinOp::Ge,
            Box::new(other_ref("FreeCpus")),
            Box::new(Expr::Int(2)),
        );
        assert!(req.eval_requirement(ctx).unwrap());
        let undef = own_ref("missing");
        assert!(
            !undef.eval_requirement(ctx).unwrap(),
            "undefined is no-match"
        );
        let rank = other_ref("FreeCpus");
        assert_eq!(rank.eval_rank(ctx).unwrap(), 4.0);
        assert_eq!(own_ref("missing").eval_rank(ctx).unwrap(), 0.0);
    }

    #[test]
    fn stored_expressions_evaluate_in_owner_frame() {
        // Machine ad stores Requirements = other.VO == "cg"; when the job
        // evaluates other.Requirements, `other` inside that expression must
        // refer back to the job.
        let mut m = machine();
        m.set(
            "Requirements",
            Value::Expr(Expr::Bin(
                BinOp::Eq,
                Box::new(other_ref("VO")),
                Box::new(Expr::Str("cg".into())),
            )),
        );
        let j = job();
        let e = other_ref("Requirements");
        assert_eq!(
            e.eval(Ctx { own: &j, other: &m }).unwrap(),
            Cv::Val(Value::Bool(true))
        );
    }

    #[test]
    fn errors_on_type_misuse() {
        let e = Expr::Not(Box::new(Expr::Int(1)));
        let j = job();
        let m = machine();
        assert!(e.eval(Ctx { own: &j, other: &m }).is_err());
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Str("a".into())),
            Box::new(Expr::Int(1)),
        );
        assert!(e.eval(Ctx { own: &j, other: &m }).is_err());
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(
                BinOp::Ge,
                Box::new(other_ref("FreeCpus")),
                Box::new(Expr::Int(2)),
            )),
            Box::new(Expr::Not(Box::new(own_ref("x")))),
        );
        assert_eq!(e.to_string(), "((other.FreeCpus >= 2) && !(x))");
    }
}

#[cfg(test)]
mod function_tests {
    use super::*;
    use crate::parser::parse_expr;

    fn eval_src(src: &str) -> Cv {
        let empty = Ad::new();
        parse_expr(src)
            .unwrap()
            .eval(Ctx {
                own: &empty,
                other: &empty,
            })
            .unwrap()
    }

    #[test]
    fn string_list_member() {
        assert_eq!(
            eval_src(r#"stringListMember("b", "a, b, c")"#),
            Cv::Val(Value::Bool(true))
        );
        assert_eq!(
            eval_src(r#"stringListMember("B", "a,b,c")"#),
            Cv::Val(Value::Bool(true)),
            "case-insensitive like ClassAds"
        );
        assert_eq!(
            eval_src(r#"stringListMember("d", "a,b,c")"#),
            Cv::Val(Value::Bool(false))
        );
        assert_eq!(
            eval_src(r#"stringListMember("b", "a;b;c", ";")"#),
            Cv::Val(Value::Bool(true))
        );
        assert_eq!(eval_src(r#"stringListMember("x", missing)"#), Cv::Undefined);
    }

    #[test]
    fn rounding_functions() {
        assert_eq!(eval_src("floor(2.9)"), Cv::Val(Value::Int(2)));
        assert_eq!(eval_src("ceiling(2.1)"), Cv::Val(Value::Int(3)));
        assert_eq!(eval_src("round(2.5)"), Cv::Val(Value::Int(3)));
        assert_eq!(eval_src("floor(7)"), Cv::Val(Value::Int(7)));
        assert_eq!(eval_src("abs(0 - 4)"), Cv::Val(Value::Int(4)));
        assert_eq!(eval_src("abs(0.0 - 4.5)"), Cv::Val(Value::Double(4.5)));
        assert_eq!(eval_src("floor(missing)"), Cv::Undefined);
    }

    #[test]
    fn min_max() {
        assert_eq!(eval_src("min(3, 1, 2)"), Cv::Val(Value::Int(1)));
        assert_eq!(eval_src("max(3, 1, 2)"), Cv::Val(Value::Int(3)));
        assert_eq!(eval_src("max(1, 2.5)"), Cv::Val(Value::Double(2.5)));
        assert_eq!(eval_src("min(1, missing)"), Cv::Undefined);
    }

    #[test]
    fn casts() {
        assert_eq!(eval_src("int(2.9)"), Cv::Val(Value::Int(2)));
        assert_eq!(eval_src(r#"int("42")"#), Cv::Val(Value::Int(42)));
        assert_eq!(eval_src(r#"int("nope")"#), Cv::Undefined);
        assert_eq!(eval_src("int(true)"), Cv::Val(Value::Int(1)));
        assert_eq!(eval_src("real(2)"), Cv::Val(Value::Double(2.0)));
        assert_eq!(eval_src(r#"real("2.5")"#), Cv::Val(Value::Double(2.5)));
        assert_eq!(eval_src(r#"real("x")"#), Cv::Undefined);
    }

    #[test]
    fn functions_compose_in_rank_expressions() {
        let mut machine = Ad::new();
        machine
            .set_int("FreeCpus", 6)
            .set_double("LoadAvg", 0.31)
            .set_str("Environments", "CROSSGRID, MPICH-G2, GLITE");
        let job = Ad::new();
        let ctx = Ctx {
            own: &job,
            other: &machine,
        };
        let rank = parse_expr(
            r#"stringListMember("mpich-g2", other.Environments)
               ? max(other.FreeCpus - ceiling(other.LoadAvg), 0) : 0"#,
        )
        .unwrap();
        assert_eq!(rank.eval(ctx).unwrap(), Cv::Val(Value::Int(5)));
    }

    #[test]
    fn arity_errors() {
        let empty = Ad::new();
        let ctx = Ctx {
            own: &empty,
            other: &empty,
        };
        for bad in ["floor()", "min()", r"int(1, 2)", r#"stringListMember("a")"#] {
            let e = parse_expr(bad).unwrap();
            assert!(e.eval(ctx).is_err(), "{bad} should be an arity error");
        }
    }
}
