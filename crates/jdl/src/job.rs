//! Typed view of a job description — the attributes §3 of the paper defines,
//! validated.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::{Ad, Value};
use crate::expr::Expr;
use crate::parser::{parse_ad, ParseError};

/// Batch or interactive (first element of `JobType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interactivity {
    /// Classic unattended execution.
    Batch,
    /// Needs the Grid Console I/O path and fast startup.
    Interactive,
}

/// Sequential or one of the supported MPI flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Single process.
    Sequential,
    /// MPICH ch_p4: all subjobs on one site/cluster.
    MpichP4,
    /// MPICH-G2: subjobs may be co-allocated across sites.
    MpichG2,
}

/// Streaming mode for the Grid Console (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StreamingMode {
    /// Disk buffering at both ends, retry across network failures.
    #[default]
    Reliable,
    /// No intermediate buffering; faster, data lost on failure.
    Fast,
}

/// Machine-access mode controlling multi-programming (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MachineAccess {
    /// Run on an idle machine without multi-programming components.
    #[default]
    Exclusive,
    /// Run on an interactive VM slot, sharing with a batch job.
    Shared,
}

/// A validation failure when typing an [`Ad`] into a [`JobDescription`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid job description: {}", self.message)
    }
}

impl std::error::Error for JobError {}

impl From<ParseError> for JobError {
    fn from(e: ParseError) -> Self {
        JobError {
            message: e.to_string(),
        }
    }
}

fn invalid(message: impl Into<String>) -> JobError {
    JobError {
        message: message.into(),
    }
}

/// A validated job description.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDescription {
    /// Executable name (`Executable`).
    pub executable: String,
    /// Command-line arguments (`Arguments`), space-separated as submitted.
    pub arguments: String,
    /// Batch or interactive.
    pub interactivity: Interactivity,
    /// Sequential / MPICH-P4 / MPICH-G2.
    pub parallelism: Parallelism,
    /// Number of nodes (`NodeNumber`); 1 for sequential jobs.
    pub node_number: u32,
    /// Streaming mode; meaningful for interactive jobs.
    pub streaming_mode: StreamingMode,
    /// Machine access; meaningful for interactive jobs.
    pub machine_access: MachineAccess,
    /// `PerformanceLoss` (% CPU the interactive job leaves to the co-resident
    /// batch job): 0, 5, 10, … 100.
    pub performance_loss: u8,
    /// Optional fixed shadow port (users with firewalls pre-open one, §4).
    pub shadow_port: Option<u16>,
    /// Matchmaking requirement, if present.
    pub requirements: Option<Expr>,
    /// Matchmaking rank, if present.
    pub rank: Option<Expr>,
    /// Submitting user (accounting / fair share).
    pub user: String,
    /// Requested selection-policy name (`SelectionPolicy`), kept as spelled.
    /// The broker resolves it against its policy registry and falls back to
    /// its configured default when the name is unknown (the analyzer emits
    /// W207 for that case).
    pub selection_policy: Option<String>,
    /// Estimated runtime in seconds, when declared (used by LRMS walltime).
    pub estimated_runtime_s: Option<f64>,
    /// Input-sandbox file sizes in bytes (staged before execution).
    pub input_sandbox_bytes: Vec<u64>,
    /// The raw ad, for attributes the typed view does not model.
    pub ad: Ad,
}

impl JobDescription {
    /// Parses and validates JDL source.
    pub fn parse(src: &str) -> Result<Self, JobError> {
        Self::from_ad(parse_ad(src)?)
    }

    /// Statically analyses this job's ad against the default machine-ad
    /// vocabulary ([`crate::analyze::Schema::machine`]). The broker runs
    /// this at submit time and rejects ads with `Error`-severity findings.
    pub fn analyze(&self) -> crate::analyze::Analysis {
        self.analyze_with(&crate::analyze::Schema::machine())
    }

    /// Statically analyses this job's ad against a custom machine schema.
    pub fn analyze_with(&self, machine: &crate::analyze::Schema) -> crate::analyze::Analysis {
        crate::analyze::analyze_ad(&self.ad, None, machine)
    }

    /// Validates a parsed ad.
    pub fn from_ad(ad: Ad) -> Result<Self, JobError> {
        let executable = ad
            .get("Executable")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing or non-string Executable"))?
            .to_string();
        if executable.is_empty() {
            return Err(invalid("Executable is empty"));
        }
        let arguments = ad
            .get("Arguments")
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(invalid(format!("Arguments must be a string, got {other}"))),
            })
            .transpose()?
            .unwrap_or_default();

        let (interactivity, parallelism) = parse_job_type(&ad)?;

        let node_number = match ad.get("NodeNumber") {
            None => 1,
            Some(v) => {
                let n = v
                    .as_i64()
                    .ok_or_else(|| invalid(format!("NodeNumber must be an integer, got {v}")))?;
                if n < 1 {
                    return Err(invalid(format!("NodeNumber must be >= 1, got {n}")));
                }
                n as u32
            }
        };
        if parallelism == Parallelism::Sequential && node_number != 1 {
            return Err(invalid(format!(
                "sequential job cannot request NodeNumber = {node_number}"
            )));
        }

        let streaming_mode = match ad.get("StreamingMode").map(|v| v.as_str()) {
            None => StreamingMode::default(),
            Some(Some(s)) if s.eq_ignore_ascii_case("reliable") => StreamingMode::Reliable,
            Some(Some(s)) if s.eq_ignore_ascii_case("fast") => StreamingMode::Fast,
            Some(other) => {
                return Err(invalid(format!(
                    "StreamingMode must be \"reliable\" or \"fast\", got {other:?}"
                )))
            }
        };

        let machine_access = match ad.get("MachineAccess").map(|v| v.as_str()) {
            None => MachineAccess::default(),
            Some(Some(s)) if s.eq_ignore_ascii_case("exclusive") => MachineAccess::Exclusive,
            Some(Some(s)) if s.eq_ignore_ascii_case("shared") => MachineAccess::Shared,
            Some(other) => {
                return Err(invalid(format!(
                    "MachineAccess must be \"exclusive\" or \"shared\", got {other:?}"
                )))
            }
        };

        let performance_loss = match ad.get("PerformanceLoss") {
            None => 0,
            Some(v) => {
                let n = v.as_i64().ok_or_else(|| {
                    invalid(format!("PerformanceLoss must be an integer, got {v}"))
                })?;
                // "Values for Performance Loss can be 0, 5, 10, 15, and so on" (§3).
                if !(0..=100).contains(&n) || n % 5 != 0 {
                    return Err(invalid(format!(
                        "PerformanceLoss must be a multiple of 5 in [0, 100], got {n}"
                    )));
                }
                n as u8
            }
        };

        let shadow_port = match ad.get("ShadowPort") {
            None => None,
            Some(v) => {
                let n = v
                    .as_i64()
                    .ok_or_else(|| invalid(format!("ShadowPort must be an integer, got {v}")))?;
                if !(1..=65535).contains(&n) {
                    return Err(invalid(format!("ShadowPort out of range: {n}")));
                }
                Some(n as u16)
            }
        };

        let requirements = match ad.get("Requirements") {
            None => None,
            Some(Value::Expr(e)) => Some(e.clone()),
            Some(Value::Bool(b)) => Some(Expr::Bool(*b)),
            Some(other) => {
                return Err(invalid(format!(
                    "Requirements must be an expression, got {other}"
                )))
            }
        };
        let rank = match ad.get("Rank") {
            None => None,
            Some(Value::Expr(e)) => Some(e.clone()),
            Some(Value::Int(n)) => Some(Expr::Int(*n)),
            Some(Value::Double(x)) => Some(Expr::Double(*x)),
            Some(other) => return Err(invalid(format!("Rank must be an expression, got {other}"))),
        };

        let user = ad
            .get("User")
            .and_then(Value::as_str)
            .unwrap_or("anonymous")
            .to_string();

        let selection_policy = ad
            .get("SelectionPolicy")
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(invalid(format!(
                    "SelectionPolicy must be a string, got {other}"
                ))),
            })
            .transpose()?;

        let estimated_runtime_s =
            match ad.get("EstimatedRuntime") {
                None => None,
                Some(v) => Some(v.as_f64().ok_or_else(|| {
                    invalid(format!("EstimatedRuntime must be a number, got {v}"))
                })?),
            };

        let input_sandbox_bytes = match ad.get("InputSandboxSizes") {
            None => Vec::new(),
            Some(Value::List(items)) => items
                .iter()
                .map(|v| {
                    v.as_i64()
                        .filter(|&n| n >= 0)
                        .map(|n| n as u64)
                        .ok_or_else(|| {
                            invalid("InputSandboxSizes entries must be non-negative integers")
                        })
                })
                .collect::<Result<_, _>>()?,
            Some(other) => {
                return Err(invalid(format!(
                    "InputSandboxSizes must be a list, got {other}"
                )))
            }
        };

        Ok(JobDescription {
            executable,
            arguments,
            interactivity,
            parallelism,
            node_number,
            streaming_mode,
            machine_access,
            performance_loss,
            shadow_port,
            requirements,
            rank,
            user,
            selection_policy,
            estimated_runtime_s,
            input_sandbox_bytes,
            ad,
        })
    }

    /// True for interactive jobs.
    pub fn is_interactive(&self) -> bool {
        self.interactivity == Interactivity::Interactive
    }

    /// True for any MPI flavour.
    pub fn is_parallel(&self) -> bool {
        self.parallelism != Parallelism::Sequential
    }

    /// Number of Console Agents this job runs when interactive: one per
    /// subjob for MPICH-G2, otherwise a single agent (§4).
    pub fn console_agent_count(&self) -> u32 {
        match self.parallelism {
            Parallelism::MpichG2 => self.node_number,
            _ => 1,
        }
    }

    /// Total input-sandbox size in bytes.
    pub fn sandbox_bytes(&self) -> u64 {
        self.input_sandbox_bytes.iter().sum()
    }
}

fn parse_job_type(ad: &Ad) -> Result<(Interactivity, Parallelism), JobError> {
    let mut interactivity = Interactivity::Batch;
    let mut parallelism = Parallelism::Sequential;
    let Some(v) = ad.get("JobType") else {
        return Ok((interactivity, parallelism));
    };
    let items: Vec<&str> = match v {
        Value::Str(s) => vec![s.as_str()],
        Value::List(items) => items
            .iter()
            .map(|i| {
                i.as_str()
                    .ok_or_else(|| invalid(format!("JobType entries must be strings, got {i}")))
            })
            .collect::<Result<_, _>>()?,
        other => {
            return Err(invalid(format!(
                "JobType must be a string or list, got {other}"
            )))
        }
    };
    for item in items {
        match item.to_ascii_lowercase().as_str() {
            "batch" | "normal" => interactivity = Interactivity::Batch,
            "interactive" => interactivity = Interactivity::Interactive,
            "sequential" => parallelism = Parallelism::Sequential,
            "mpich-p4" | "mpich" => parallelism = Parallelism::MpichP4,
            "mpich-g2" | "mpichg2" => parallelism = Parallelism::MpichG2,
            other => return Err(invalid(format!("unknown JobType component {other:?}"))),
        }
    }
    Ok((interactivity, parallelism))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE_2: &str = r#"
        Executable = "interactive_mpich-g2_app";
        JobType = {"interactive", "mpich-g2"};
        NodeNumber = 2;
        Arguments = "-n";
    "#;

    #[test]
    fn printed_ad_reparses_identically() {
        // The broker journals `ad.to_string()` as the job's durable commit
        // record; crash recovery must be able to parse that bracketed form
        // back into the same job.
        let j = JobDescription::parse(FIGURE_2).unwrap();
        let reparsed = JobDescription::parse(&j.ad.to_string()).unwrap();
        assert_eq!(reparsed.executable, j.executable);
        assert_eq!(reparsed.interactivity, j.interactivity);
        assert_eq!(reparsed.parallelism, j.parallelism);
        assert_eq!(reparsed.node_number, j.node_number);
        assert_eq!(reparsed.ad.to_string(), j.ad.to_string());
    }

    #[test]
    fn parses_figure_2_fully_typed() {
        let j = JobDescription::parse(FIGURE_2).unwrap();
        assert_eq!(j.executable, "interactive_mpich-g2_app");
        assert_eq!(j.arguments, "-n");
        assert_eq!(j.interactivity, Interactivity::Interactive);
        assert_eq!(j.parallelism, Parallelism::MpichG2);
        assert_eq!(j.node_number, 2);
        assert!(j.is_interactive());
        assert!(j.is_parallel());
        assert_eq!(j.console_agent_count(), 2, "one CA per MPICH-G2 subjob");
    }

    #[test]
    fn defaults_are_the_papers_defaults() {
        let j = JobDescription::parse(r#"Executable = "a.out";"#).unwrap();
        assert_eq!(j.interactivity, Interactivity::Batch);
        assert_eq!(j.parallelism, Parallelism::Sequential);
        assert_eq!(j.node_number, 1);
        assert_eq!(j.streaming_mode, StreamingMode::Reliable);
        assert_eq!(j.machine_access, MachineAccess::Exclusive);
        assert_eq!(j.performance_loss, 0);
        assert_eq!(j.console_agent_count(), 1);
        assert_eq!(j.user, "anonymous");
    }

    #[test]
    fn streaming_and_access_modes_parse() {
        let j = JobDescription::parse(
            r#"
            Executable = "app";
            JobType = "interactive";
            StreamingMode = "fast";
            MachineAccess = "shared";
            PerformanceLoss = 25;
        "#,
        )
        .unwrap();
        assert_eq!(j.streaming_mode, StreamingMode::Fast);
        assert_eq!(j.machine_access, MachineAccess::Shared);
        assert_eq!(j.performance_loss, 25);
    }

    #[test]
    fn performance_loss_must_be_multiple_of_five() {
        for (pl, ok) in [
            (0, true),
            (5, true),
            (100, true),
            (3, false),
            (105, false),
            (-5, false),
        ] {
            let src =
                format!(r#"Executable = "app"; JobType = "interactive"; PerformanceLoss = {pl};"#);
            assert_eq!(JobDescription::parse(&src).is_ok(), ok, "PL={pl}");
        }
    }

    #[test]
    fn sequential_with_nodes_rejected() {
        let err = JobDescription::parse(r#"Executable = "a"; NodeNumber = 4;"#).unwrap_err();
        assert!(err.message.contains("sequential"), "{}", err.message);
    }

    #[test]
    fn mpich_p4_runs_one_console_agent() {
        let j = JobDescription::parse(
            r#"Executable = "a"; JobType = {"interactive", "mpich-p4"}; NodeNumber = 8;"#,
        )
        .unwrap();
        assert_eq!(j.console_agent_count(), 1);
    }

    #[test]
    fn missing_executable_rejected() {
        assert!(JobDescription::parse("NodeNumber = 1;").is_err());
        assert!(JobDescription::parse(r#"Executable = "";"#).is_err());
    }

    #[test]
    fn bad_job_type_rejected() {
        let err = JobDescription::parse(r#"Executable = "a"; JobType = "weird";"#).unwrap_err();
        assert!(err.message.contains("weird"));
        assert!(JobDescription::parse(r#"Executable = "a"; JobType = 3;"#).is_err());
    }

    #[test]
    fn shadow_port_validation() {
        let j = JobDescription::parse(
            r#"Executable = "a"; JobType = "interactive"; ShadowPort = 9000;"#,
        )
        .unwrap();
        assert_eq!(j.shadow_port, Some(9000));
        assert!(JobDescription::parse(r#"Executable = "a"; ShadowPort = 70000;"#).is_err());
        assert!(JobDescription::parse(r#"Executable = "a"; ShadowPort = 0;"#).is_err());
    }

    #[test]
    fn requirements_and_rank_are_kept_as_expressions() {
        let j = JobDescription::parse(
            r#"
            Executable = "a";
            Requirements = other.FreeCpus >= 1;
            Rank = other.FreeCpus;
        "#,
        )
        .unwrap();
        assert!(j.requirements.is_some());
        assert!(j.rank.is_some());
        // Constant folding edge: `Requirements = true;` is fine.
        let j = JobDescription::parse(r#"Executable = "a"; Requirements = true;"#).unwrap();
        assert_eq!(j.requirements, Some(Expr::Bool(true)));
    }

    #[test]
    fn sandbox_sizes() {
        let j = JobDescription::parse(r#"Executable = "a"; InputSandboxSizes = {1000, 2500};"#)
            .unwrap();
        assert_eq!(j.sandbox_bytes(), 3500);
        assert!(JobDescription::parse(r#"Executable = "a"; InputSandboxSizes = {-5};"#).is_err());
    }

    #[test]
    fn selection_policy_is_kept_as_spelled() {
        let j = JobDescription::parse(
            r#"Executable = "a"; JobType = "interactive"; SelectionPolicy = "queue-forecast";"#,
        )
        .unwrap();
        assert_eq!(j.selection_policy.as_deref(), Some("queue-forecast"));
        // Unknown spellings survive parsing (the broker falls back; the
        // analyzer warns), but a non-string is a hard type error.
        let j =
            JobDescription::parse(r#"Executable = "a"; SelectionPolicy = "best-effort";"#).unwrap();
        assert_eq!(j.selection_policy.as_deref(), Some("best-effort"));
        let err = JobDescription::parse(r#"Executable = "a"; SelectionPolicy = 3;"#).unwrap_err();
        assert!(err.message.contains("SelectionPolicy"), "{}", err.message);
        assert_eq!(
            JobDescription::parse(r#"Executable = "a";"#)
                .unwrap()
                .selection_policy,
            None
        );
    }

    #[test]
    fn user_and_runtime() {
        let j =
            JobDescription::parse(r#"Executable = "a"; User = "alice"; EstimatedRuntime = 3600;"#)
                .unwrap();
        assert_eq!(j.user, "alice");
        assert_eq!(j.estimated_runtime_s, Some(3600.0));
    }
}
