//! Property tests on the local resource manager: allocation safety and
//! conservation under arbitrary job mixes.

use cg_sim::{Sim, SimDuration, SimTime};
use cg_site::{LocalJobSpec, Lrms, LrmsEvent, Policy};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop::sample::select(vec![Policy::Fifo, Policy::FifoBackfill, Policy::Priority])
}

#[derive(Debug, Clone)]
struct JobSpec {
    nodes: u32,
    runtime: u64,
    priority: i64,
    arrival: u64,
}

fn jobs_strategy() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (1u32..4, 1u64..500, -5i64..5, 0u64..1_000).prop_map(
            |(nodes, runtime, priority, arrival)| JobSpec {
                nodes,
                runtime,
                priority,
                arrival,
            },
        ),
        1..25,
    )
}

proptest! {
    /// Across any job mix and policy: every accepted job starts exactly once
    /// and finishes exactly once; no node is ever double-allocated; and all
    /// nodes return at the end.
    #[test]
    fn lrms_allocation_is_safe(
        policy in policy_strategy(),
        nodes in 2usize..6,
        jobs in jobs_strategy(),
    ) {
        let mut sim = Sim::new(7);
        let lrms = Lrms::new(policy, nodes, SimDuration::from_millis(100));
        // Track node occupancy over time through Started events.
        #[derive(Default)]
        struct Tracker {
            running: HashMap<u64, Vec<usize>>, // job -> nodes
            started: u32,
            finished: u32,
            max_nodes_busy: usize,
            violations: Vec<String>,
        }
        let tracker = Rc::new(RefCell::new(Tracker::default()));
        let total_nodes = nodes;

        for job in &jobs {
            if job.nodes as usize > nodes {
                continue; // never fits; LRMS would hold it forever
            }
            let spec = LocalJobSpec {
                nodes: job.nodes,
                runtime: Some(SimDuration::from_secs(job.runtime)),
                walltime: None,
                priority: job.priority,
                user: "p".into(),
            };
            let lrms2 = lrms.clone();
            let t = Rc::clone(&tracker);
            sim.schedule_at(SimTime::from_secs(job.arrival), move |sim| {
                let t2 = Rc::clone(&t);
                lrms2.submit(sim, spec, move |_, id, ev| {
                    let mut tr = t2.borrow_mut();
                    match ev {
                        LrmsEvent::Queued => {}
                        LrmsEvent::Started { nodes } => {
                            tr.started += 1;
                            // No node may be in use by another running job.
                            let mut clashes = Vec::new();
                            for n in nodes {
                                for (other, held) in &tr.running {
                                    if held.contains(n) {
                                        clashes.push(format!(
                                            "node {n} double-allocated (jobs {other} and {})",
                                            id.0
                                        ));
                                    }
                                }
                            }
                            tr.violations.extend(clashes);
                            tr.running.insert(id.0, nodes.clone());
                            let busy: usize = tr.running.values().map(Vec::len).sum();
                            tr.max_nodes_busy = tr.max_nodes_busy.max(busy);
                        }
                        LrmsEvent::Finished | LrmsEvent::Killed { .. } => {
                            tr.finished += 1;
                            tr.running.remove(&id.0);
                        }
                    }
                });
            });
        }
        sim.run();
        let tr = tracker.borrow();
        prop_assert!(tr.violations.is_empty(), "{:?}", tr.violations);
        prop_assert_eq!(tr.started, tr.finished, "every started job terminates");
        prop_assert!(tr.max_nodes_busy <= total_nodes, "overcommitted nodes");
        prop_assert!(tr.running.is_empty());
        prop_assert_eq!(lrms.free_nodes(), total_nodes, "all nodes returned");
        prop_assert_eq!(lrms.queue_depth(), 0);
    }

    /// FIFO never starts a later-submitted job before an earlier one (equal
    /// arrival times use submission order).
    #[test]
    fn fifo_is_fifo(runtimes in prop::collection::vec(1u64..100, 2..15)) {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &rt) in runtimes.iter().enumerate() {
            let o = Rc::clone(&order);
            lrms.submit(
                &mut sim,
                LocalJobSpec::simple(SimDuration::from_secs(rt)),
                move |_, _, ev| {
                    if matches!(ev, LrmsEvent::Started { .. }) {
                        o.borrow_mut().push(i);
                    }
                },
            );
        }
        sim.run();
        let got = order.borrow().clone();
        prop_assert_eq!(got, (0..runtimes.len()).collect::<Vec<_>>());
    }

    /// Walltime enforcement: a job never runs longer than its limit.
    #[test]
    fn walltime_caps_runtime(runtime in 1u64..1000, walltime in 1u64..1000) {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        let spec = LocalJobSpec {
            nodes: 1,
            runtime: Some(SimDuration::from_secs(runtime)),
            walltime: Some(SimDuration::from_secs(walltime)),
            priority: 0,
            user: "w".into(),
        };
        let ended: Rc<RefCell<Option<(bool, f64)>>> = Rc::new(RefCell::new(None));
        let e = Rc::clone(&ended);
        lrms.submit(&mut sim, spec, move |sim, _, ev| match ev {
            LrmsEvent::Finished => {
                *e.borrow_mut() = Some((false, sim.now().as_secs_f64()));
            }
            LrmsEvent::Killed { .. } => {
                *e.borrow_mut() = Some((true, sim.now().as_secs_f64()));
            }
            _ => {}
        });
        sim.run();
        let (killed, at) = ended.borrow().expect("job terminated");
        if runtime <= walltime {
            prop_assert!(!killed);
            prop_assert!((at - runtime as f64).abs() < 1e-9);
        } else {
            prop_assert!(killed, "overrunning job must be killed");
            prop_assert!((at - walltime as f64).abs() < 1e-9);
        }
    }
}
