//! Columnar (SoA) snapshots of the information index.
//!
//! Matchmaking historically consumed the index as `Vec<(usize, Ad)>` — one
//! owned B-tree map per site, cloned per query. An [`AdSnapshot`] is the
//! columnar alternative: the hot attributes (`FreeCpus`, `AcceptsQueued`,
//! `Site`) are pre-extracted into flat arrays once per refresh, the full ads
//! are kept behind `Arc` for the expression evaluator, and the whole
//! snapshot is itself shared as `Arc<AdSnapshot>` — a query is an `Arc`
//! clone, not a table copy.
//!
//! Snapshots are *epoch-tagged*: each refresh produces a successor via
//! [`AdSnapshot::advance`], which bumps the snapshot epoch and, per site,
//! bumps that site's epoch only if its ad actually changed (unchanged sites
//! share the predecessor's `Arc<Ad>` and keep their epoch). Consumers that
//! cache per-site results can re-match only [`AdSnapshot::dirty_since`]
//! their last seen epoch.
//!
//! The column values are derived with exactly the expressions the map-based
//! matchmaking path uses (`get("FreeCpus").and_then(as_i64).unwrap_or(0)`,
//! `get("AcceptsQueued").and_then(as_bool).unwrap_or(true)`,
//! `get("Site").and_then(as_str)`), so columnar filtering is bit-identical
//! to filtering over the raw ads.

use std::sync::Arc;

use cg_jdl::{intern, Ad, Symbol};

fn site_sym() -> Symbol {
    static S: std::sync::OnceLock<Symbol> = std::sync::OnceLock::new();
    *S.get_or_init(|| intern("Site"))
}

fn free_cpus_sym() -> Symbol {
    static S: std::sync::OnceLock<Symbol> = std::sync::OnceLock::new();
    *S.get_or_init(|| intern("FreeCpus"))
}

fn accepts_queued_sym() -> Symbol {
    static S: std::sync::OnceLock<Symbol> = std::sync::OnceLock::new();
    *S.get_or_init(|| intern("AcceptsQueued"))
}

/// Derives the hot-column values from one ad, with exactly the map-based
/// matchmaking path's expressions — this is what keeps columnar filtering
/// bit-identical.
fn column_values(ad: &Ad) -> (Option<Arc<str>>, i64, bool) {
    (
        ad.get_sym(site_sym())
            .and_then(cg_jdl::Value::as_str)
            .map(Arc::from),
        ad.get_sym(free_cpus_sym())
            .and_then(cg_jdl::Value::as_i64)
            .unwrap_or(0),
        ad.get_sym(accepts_queued_sym())
            .and_then(cg_jdl::Value::as_bool)
            .unwrap_or(true),
    )
}

/// An immutable, epoch-tagged, column-oriented view of every site's machine
/// ad. Shared as `Arc<AdSnapshot>`; see the module docs for the layout and
/// the delta contract.
#[derive(Debug, Clone)]
pub struct AdSnapshot {
    epoch: u64,
    site_names: Vec<Option<Arc<str>>>,
    free_cpus: Vec<i64>,
    accepts_queued: Vec<bool>,
    ads: Vec<Arc<Ad>>,
    site_epochs: Vec<u64>,
}

impl AdSnapshot {
    /// Builds the initial snapshot (epoch 0, every site's epoch 0) from the
    /// ads in site-index order.
    #[must_use]
    pub fn build(ads: Vec<Ad>) -> AdSnapshot {
        let mut snap = AdSnapshot {
            epoch: 0,
            site_names: Vec::with_capacity(ads.len()),
            free_cpus: Vec::with_capacity(ads.len()),
            accepts_queued: Vec::with_capacity(ads.len()),
            ads: Vec::new(),
            site_epochs: vec![0; ads.len()],
        };
        for ad in &ads {
            snap.push_columns(ad);
        }
        snap.ads = ads.into_iter().map(Arc::new).collect();
        snap
    }

    fn push_columns(&mut self, ad: &Ad) {
        let (name, free, accepts) = column_values(ad);
        self.site_names.push(name);
        self.free_cpus.push(free);
        self.accepts_queued.push(accepts);
    }

    /// Produces the successor snapshot from freshly gathered ads. The
    /// snapshot epoch always advances; a site whose ad is unchanged shares
    /// the predecessor's `Arc<Ad>` (and name `Arc`) and keeps its site
    /// epoch, while a changed site gets the new snapshot epoch. If the site
    /// count changed, every site is treated as dirty.
    #[must_use]
    pub fn advance(&self, fresh: Vec<Ad>) -> AdSnapshot {
        if fresh.len() != self.ads.len() {
            let mut snap = AdSnapshot::build(fresh);
            snap.epoch = self.epoch + 1;
            snap.site_epochs = vec![snap.epoch; snap.ads.len()];
            return snap;
        }
        let epoch = self.epoch + 1;
        let mut snap = AdSnapshot {
            epoch,
            site_names: Vec::with_capacity(fresh.len()),
            free_cpus: Vec::with_capacity(fresh.len()),
            accepts_queued: Vec::with_capacity(fresh.len()),
            ads: Vec::with_capacity(fresh.len()),
            site_epochs: Vec::with_capacity(fresh.len()),
        };
        for (i, ad) in fresh.into_iter().enumerate() {
            if ad == *self.ads[i] {
                snap.site_names.push(self.site_names[i].clone());
                snap.free_cpus.push(self.free_cpus[i]);
                snap.accepts_queued.push(self.accepts_queued[i]);
                snap.ads.push(Arc::clone(&self.ads[i]));
                snap.site_epochs.push(self.site_epochs[i]);
            } else {
                snap.push_columns(&ad);
                snap.ads.push(Arc::new(ad));
                snap.site_epochs.push(epoch);
            }
        }
        snap
    }

    /// Produces the successor snapshot by applying a sparse delta —
    /// `(site index, fresh ad)` pairs from sites whose publication actually
    /// arrived, everyone else untouched. This is the GIIS aggregation path:
    /// a leaf reports only its [`AdSnapshot::dirty_since`] sites, so the
    /// merge does per-site ad work proportional to the *changed* sites (the
    /// flat column vectors are copied, which is a memcpy, but no ad is
    /// compared, cloned or re-derived unless it appears in `changes`). The
    /// snapshot epoch always advances; a delta entry equal to the current
    /// column keeps its `Arc` and site epoch, exactly like
    /// [`AdSnapshot::advance`]. Out-of-range indices are ignored.
    #[must_use]
    pub fn apply_delta(&self, changes: &[(usize, Arc<Ad>)]) -> AdSnapshot {
        let epoch = self.epoch + 1;
        let mut snap = self.clone();
        snap.epoch = epoch;
        for (i, ad) in changes {
            if *i >= snap.ads.len() || **ad == *snap.ads[*i] {
                continue;
            }
            let (name, free, accepts) = column_values(ad);
            snap.site_names[*i] = name;
            snap.free_cpus[*i] = free;
            snap.accepts_queued[*i] = accepts;
            snap.ads[*i] = Arc::clone(ad);
            snap.site_epochs[*i] = epoch;
        }
        snap
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// True when the snapshot covers no sites.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// The snapshot epoch (0 for [`AdSnapshot::build`], +1 per
    /// [`AdSnapshot::advance`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch at which site `i`'s ad last changed.
    #[must_use]
    pub fn site_epoch(&self, i: usize) -> u64 {
        self.site_epochs[i]
    }

    /// Site `i`'s `FreeCpus` column (missing/non-int ⇒ 0, as in the map
    /// path).
    #[must_use]
    pub fn free_cpus(&self, i: usize) -> i64 {
        self.free_cpus[i]
    }

    /// Site `i`'s `AcceptsQueued` column (missing/non-bool ⇒ true, as in
    /// the map path).
    #[must_use]
    pub fn accepts_queued(&self, i: usize) -> bool {
        self.accepts_queued[i]
    }

    /// Site `i`'s advertised `Site` name, if it is a string.
    #[must_use]
    pub fn site_name(&self, i: usize) -> Option<&str> {
        self.site_names[i].as_deref()
    }

    /// Site `i`'s full machine ad (for `Requirements`/`Rank` evaluation).
    #[must_use]
    pub fn ad(&self, i: usize) -> &Ad {
        &self.ads[i]
    }

    /// Site `i`'s full machine ad as a shared handle.
    #[must_use]
    pub fn ad_arc(&self, i: usize) -> &Arc<Ad> {
        &self.ads[i]
    }

    /// Indices of sites whose ad changed after `epoch` (ascending).
    pub fn dirty_since(&self, epoch: u64) -> impl Iterator<Item = usize> + '_ {
        self.site_epochs
            .iter()
            .enumerate()
            .filter(move |(_, &e)| e > epoch)
            .map(|(i, _)| i)
    }

    /// The map-shaped view matchmaking historically consumed. Every ad is
    /// `Arc`-shared with the snapshot (and, transitively, with every
    /// predecessor snapshot the site was unchanged across) — a call costs
    /// one refcount bump per site, never a deep `Ad` clone.
    #[must_use]
    pub fn indexed_ads(&self) -> Vec<(usize, Arc<Ad>)> {
        self.ads
            .iter()
            .enumerate()
            .map(|(i, ad)| (i, Arc::clone(ad)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ad(site: &str, free: i64) -> Ad {
        let mut a = Ad::new();
        a.set_str("Site", site)
            .set_int("FreeCpus", free)
            .set_bool("AcceptsQueued", true);
        a
    }

    #[test]
    fn build_extracts_columns_with_map_path_defaults() {
        let mut odd = Ad::new();
        odd.set_str("FreeCpus", "not-a-number"); // wrong type ⇒ 0
        let snap = AdSnapshot::build(vec![ad("uab", 4), odd]);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.free_cpus(0), 4);
        assert_eq!(snap.site_name(0), Some("uab"));
        assert!(snap.accepts_queued(0));
        assert_eq!(snap.free_cpus(1), 0, "non-int FreeCpus defaults to 0");
        assert_eq!(snap.site_name(1), None);
        assert!(
            snap.accepts_queued(1),
            "missing AcceptsQueued defaults true"
        );
    }

    #[test]
    fn advance_shares_clean_sites_and_bumps_dirty_epochs() {
        let s0 = AdSnapshot::build(vec![ad("uab", 4), ad("ifca", 8)]);
        let s1 = s0.advance(vec![ad("uab", 4), ad("ifca", 7)]);
        assert_eq!(s1.epoch(), 1);
        assert!(
            Arc::ptr_eq(s0.ad_arc(0), s1.ad_arc(0)),
            "unchanged ad is shared, not re-allocated"
        );
        assert!(!Arc::ptr_eq(s0.ad_arc(1), s1.ad_arc(1)));
        assert_eq!(s1.site_epoch(0), 0, "clean site keeps its epoch");
        assert_eq!(s1.site_epoch(1), 1, "dirty site gets the new epoch");
        assert_eq!(s1.free_cpus(1), 7);
        assert_eq!(s1.dirty_since(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(s1.dirty_since(1).count(), 0);

        // A further no-op refresh advances the snapshot epoch only.
        let s2 = s1.advance(vec![ad("uab", 4), ad("ifca", 7)]);
        assert_eq!(s2.epoch(), 2);
        assert_eq!(s2.dirty_since(1).count(), 0);
        assert!(Arc::ptr_eq(s1.ad_arc(1), s2.ad_arc(1)));
    }

    #[test]
    fn advance_with_changed_site_count_marks_everything_dirty() {
        let s0 = AdSnapshot::build(vec![ad("uab", 4)]);
        let s1 = s0.advance(vec![ad("uab", 4), ad("ifca", 8)]);
        assert_eq!(s1.epoch(), 1);
        assert_eq!(s1.len(), 2);
        assert_eq!(s1.dirty_since(0).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn indexed_ads_matches_site_order() {
        let snap = AdSnapshot::build(vec![ad("a", 1), ad("b", 2)]);
        let ads = snap.indexed_ads();
        assert_eq!(ads.len(), 2);
        assert_eq!(ads[0].0, 0);
        assert_eq!(
            ads[1].1.get("FreeCpus").and_then(cg_jdl::Value::as_i64),
            Some(2)
        );
    }

    #[test]
    fn indexed_ads_shares_allocations_instead_of_deep_cloning() {
        // Regression for the hot-path clone: `indexed_ads` used to rebuild
        // every site's B-tree map per call. It must hand out the snapshot's
        // own `Arc`s — and, across a refresh, an unchanged site's ad must
        // be the same allocation in both snapshots' views.
        let s0 = AdSnapshot::build(vec![ad("uab", 4), ad("ifca", 8)]);
        let v0 = s0.indexed_ads();
        assert!(Arc::ptr_eq(&v0[0].1, s0.ad_arc(0)), "no per-call clone");
        let s1 = s0.advance(vec![ad("uab", 4), ad("ifca", 7)]);
        let v1 = s1.indexed_ads();
        assert!(
            Arc::ptr_eq(&v0[0].1, &v1[0].1),
            "unchanged site shares one allocation across refreshes"
        );
        assert!(!Arc::ptr_eq(&v0[1].1, &v1[1].1), "changed site does not");
    }

    #[test]
    fn apply_delta_touches_only_the_delta_sites() {
        let s0 = AdSnapshot::build(vec![ad("a", 1), ad("b", 2), ad("c", 3)]);
        let s1 = s0.apply_delta(&[(1, Arc::new(ad("b", 9)))]);
        assert_eq!(s1.epoch(), 1);
        assert_eq!(s1.free_cpus(1), 9);
        assert_eq!(s1.site_epoch(1), 1);
        assert_eq!(s1.dirty_since(0).collect::<Vec<_>>(), vec![1]);
        assert!(Arc::ptr_eq(s0.ad_arc(0), s1.ad_arc(0)));
        assert!(Arc::ptr_eq(s0.ad_arc(2), s1.ad_arc(2)));

        // A delta equal to the current column is a no-op for that site:
        // same Arc, same site epoch — mirroring `advance`.
        let s2 = s1.apply_delta(&[(1, Arc::new(ad("b", 9))), (99, Arc::new(ad("x", 1)))]);
        assert_eq!(s2.epoch(), 2);
        assert!(Arc::ptr_eq(s1.ad_arc(1), s2.ad_arc(1)));
        assert_eq!(s2.site_epoch(1), 1, "unchanged delta keeps the epoch");
        assert_eq!(s2.dirty_since(1).count(), 0);
    }

    #[test]
    fn apply_delta_matches_advance_for_the_same_change() {
        // The aggregation path (sparse delta) and the flat refresh path
        // (full advance) must produce the same columns for the same change.
        let s0 = AdSnapshot::build(vec![ad("a", 1), ad("b", 2)]);
        let via_advance = s0.advance(vec![ad("a", 1), ad("b", 5)]);
        let via_delta = s0.apply_delta(&[(1, Arc::new(ad("b", 5)))]);
        assert_eq!(via_advance.epoch(), via_delta.epoch());
        for i in 0..2 {
            assert_eq!(via_advance.free_cpus(i), via_delta.free_cpus(i));
            assert_eq!(via_advance.site_name(i), via_delta.site_name(i));
            assert_eq!(via_advance.accepts_queued(i), via_delta.accepts_queued(i));
            assert_eq!(via_advance.site_epoch(i), via_delta.site_epoch(i));
            assert_eq!(*via_advance.ad(i), *via_delta.ad(i));
        }
    }
}
