//! A grid site: gatekeeper + LRMS + worker nodes + the GRIS view of itself.

use cg_jdl::{Ad, Value};
use cg_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::backend::{BackendError, BackendHandle, BackendKind, BackendSpec};
use crate::gatekeeper::{Gatekeeper, GramCosts};
use crate::lrms::{Policy, DEFAULT_DISPOSITION_RETENTION};
use crate::wn::NodeSpec;

/// Configuration for building a [`Site`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Site name (e.g. `"uab"`, `"ifca"`).
    pub name: String,
    /// Worker-node count.
    pub nodes: usize,
    /// Hardware of the nodes (homogeneous per site, like the testbed pools).
    pub node_spec: NodeSpec,
    /// Local scheduler policy.
    pub policy: Policy,
    /// LRMS dispatch latency.
    pub dispatch_latency: SimDuration,
    /// Middleware costs at the gatekeeper.
    pub gram: GramCosts,
    /// Arbitrary capability tags advertised to MDS (runtime environments).
    pub tags: Vec<String>,
    /// Storage capacity advertised, GB ("most sites offer storage capacities
    /// above 600GB", §6).
    pub storage_gb: u32,
    /// Which execution backend runs this site's jobs.
    pub backend: BackendSpec,
    /// Cap on retained terminal dispositions (status-poll record).
    pub disposition_retention: usize,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            name: "site".into(),
            nodes: 4,
            node_spec: NodeSpec::pentium_iii(),
            policy: Policy::Fifo,
            dispatch_latency: SimDuration::from_millis(1_500),
            gram: GramCosts::globus24(),
            tags: vec!["CROSSGRID".into()],
            storage_gb: 600,
            backend: BackendSpec::Sim,
            disposition_retention: DEFAULT_DISPOSITION_RETENTION,
        }
    }
}

/// A grid site handle. Clones share the underlying backend/gatekeeper.
#[derive(Clone)]
pub struct Site {
    config: std::rc::Rc<SiteConfig>,
    backend: BackendHandle,
    gatekeeper: Gatekeeper,
}

impl Site {
    /// Builds the site's components from configuration.
    ///
    /// # Panics
    /// Panics when the configured backend is structurally invalid (zero
    /// nodes, zero threads, empty program); use [`Site::try_new`] for a
    /// typed error.
    pub fn new(config: SiteConfig) -> Self {
        Site::try_new(config).expect("invalid site backend configuration")
    }

    /// Builds the site's components from configuration.
    ///
    /// # Errors
    /// Returns the backend's construction error when `config.backend` (or
    /// `config.nodes`) is structurally invalid.
    pub fn try_new(config: SiteConfig) -> Result<Self, BackendError> {
        let backend = config.backend.build(
            config.policy,
            config.nodes,
            config.dispatch_latency,
            config.disposition_retention,
        )?;
        let gatekeeper = Gatekeeper::new(backend.clone(), config.gram.clone());
        Ok(Site {
            config: std::rc::Rc::new(config),
            backend,
            gatekeeper,
        })
    }

    /// Rebuilds this site over a different execution backend (same
    /// configuration otherwise). The existing backend's state is NOT
    /// carried over — this is a construction-time choice, applied by
    /// `CrossBroker::new` before any job flows.
    ///
    /// # Errors
    /// Returns the backend's construction error for invalid specs.
    pub fn with_backend(&self, backend: BackendSpec) -> Result<Self, BackendError> {
        let mut config = (*self.config).clone();
        config.backend = backend;
        Site::try_new(config)
    }

    /// Site name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The site's configuration.
    pub fn config(&self) -> &SiteConfig {
        &self.config
    }

    /// The local scheduler (kept under its historical name; any
    /// [`crate::Backend`] implementation may sit behind the handle).
    pub fn lrms(&self) -> &BackendHandle {
        &self.backend
    }

    /// The execution backend — alias of [`Site::lrms`].
    pub fn backend(&self) -> &BackendHandle {
        &self.backend
    }

    /// Which kind of executor runs this site's jobs.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The GRAM front door.
    pub fn gatekeeper(&self) -> &Gatekeeper {
        &self.gatekeeper
    }

    /// The machine ad this site's GRIS publishes *right now* (live values;
    /// the index staleness is applied by [`crate::InformationIndex`]).
    pub fn machine_ad(&self) -> Ad {
        let mut ad = Ad::new();
        ad.set_str("Site", self.config.name.clone())
            .set_str("Arch", self.config.node_spec.arch.clone())
            .set_str("OpSys", self.config.node_spec.op_sys.clone())
            .set_int("TotalCpus", self.config.nodes as i64)
            .set_int("FreeCpus", self.backend.free_nodes() as i64)
            .set_int("QueueDepth", self.backend.queue_depth() as i64)
            .set_int("MemoryMb", self.config.node_spec.memory_mb as i64)
            .set_int("StorageGb", self.config.storage_gb as i64)
            .set_double("SpeedFactor", self.config.node_spec.speed_factor)
            .set_bool("AcceptsQueued", self.backend.accepts_queued_jobs())
            .set(
                "Tags",
                Value::List(
                    self.config
                        .tags
                        .iter()
                        .map(|t| Value::Str(t.clone()))
                        .collect(),
                ),
            );
        ad
    }
}

/// The attribute schema of the machine ads published by [`Site::machine_ad`],
/// derived from a live ad so it can never drift from what sites actually
/// advertise. The broker's JDL analyzer checks `other.*` references in
/// `Requirements`/`Rank` against this vocabulary.
pub fn machine_schema() -> cg_jdl::analyze::Schema {
    cg_jdl::analyze::Schema::infer_from_ad(&Site::new(SiteConfig::default()).machine_ad())
}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Site")
            .field("name", &self.config.name)
            .field("nodes", &self.config.nodes)
            .field("free", &self.backend.free_nodes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrms::LocalJobSpec;
    use cg_sim::Sim;

    #[test]
    fn machine_schema_matches_analyzer_vocabulary() {
        // The analyzer ships a hand-written copy of this vocabulary so
        // cg-jdl does not depend on cg-site; this pins the two together.
        assert_eq!(machine_schema(), cg_jdl::analyze::Schema::machine());
    }

    #[test]
    fn machine_ad_reflects_live_state() {
        let mut sim = Sim::new(1);
        let site = Site::new(SiteConfig {
            name: "uab".into(),
            nodes: 3,
            tags: vec!["CROSSGRID".into(), "MPICH-G2".into()],
            ..SiteConfig::default()
        });
        let ad = site.machine_ad();
        assert_eq!(ad.get("FreeCpus").unwrap().as_i64(), Some(3));
        assert_eq!(ad.get("Site").unwrap().as_str(), Some("uab"));
        assert_eq!(ad.get("Tags").unwrap().as_list().unwrap().len(), 2);

        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(100)),
            |_, _, _| {},
        );
        sim.run_until(cg_sim::SimTime::from_secs(10));
        assert_eq!(site.machine_ad().get("FreeCpus").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn matchmaking_against_the_ad_works() {
        let site = Site::new(SiteConfig {
            name: "ifca".into(),
            nodes: 8,
            ..SiteConfig::default()
        });
        let job = cg_jdl::JobDescription::parse(
            r#"
            Executable = "app";
            JobType = {"interactive", "mpich-p4"};
            NodeNumber = 4;
            Requirements = other.FreeCpus >= NodeNumber && member("CROSSGRID", other.Tags);
        "#,
        )
        .unwrap();
        let machine = site.machine_ad();
        let ctx = cg_jdl::Ctx {
            own: &job.ad,
            other: &machine,
        };
        assert!(job
            .requirements
            .as_ref()
            .unwrap()
            .eval_requirement(ctx)
            .unwrap());
    }

    #[test]
    fn default_config_is_sane() {
        let c = SiteConfig::default();
        assert!(c.nodes > 0);
        assert!(c.storage_gb >= 600);
    }
}
