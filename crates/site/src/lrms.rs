//! Local Resource Management System — the per-site batch scheduler (PBS- or
//! Condor-like) that owns the worker nodes.
//!
//! The paper's premise is that "the existence of batch systems at each Grid
//! site that have full control over local resources … imposes significant
//! restrictions on the fast startup of interactive jobs" (§1). This module is
//! that adversary: jobs queue, dispatch carries latency, and nothing here
//! knows or cares that a job is interactive.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use cg_sim::{EventId, OnlineStats, Sim, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::backend::{BackendCallback, BackendError};

/// Default cap on retained terminal dispositions (see
/// [`Lrms::set_disposition_retention`]). High enough that every existing
/// scenario retains all its jobs; bounded so a long-lived site cannot grow
/// its poll-back record forever.
pub const DEFAULT_DISPOSITION_RETENTION: usize = 4096;

/// Scheduling policy of the local queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Strict FIFO: the head blocks everything behind it (PBS default-like).
    Fifo,
    /// FIFO with backfill: later jobs may jump a blocked head if they fit now.
    FifoBackfill,
    /// Priority order (smaller value first), FIFO among equals (Condor-like).
    Priority,
}

/// What a submitted job asks of the LRMS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalJobSpec {
    /// Nodes required (entire nodes; the testbed scheduled whole WNs).
    pub nodes: u32,
    /// Natural runtime once started. `None` = runs until completed/killed
    /// externally (glide-in agents do this).
    pub runtime: Option<SimDuration>,
    /// Walltime limit enforced by the LRMS, if any.
    pub walltime: Option<SimDuration>,
    /// Priority (lower = runs earlier) under [`Policy::Priority`].
    pub priority: i64,
    /// Owner, for accounting.
    pub user: String,
}

impl LocalJobSpec {
    /// A single-node job with a fixed runtime — the common case.
    pub fn simple(runtime: SimDuration) -> Self {
        LocalJobSpec {
            nodes: 1,
            runtime: Some(runtime),
            walltime: None,
            priority: 0,
            user: "anonymous".into(),
        }
    }
}

/// Identifies a job within one LRMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalJobId(pub u64);

/// Job lifecycle notifications delivered to the submitter's callback.
#[derive(Debug, Clone, PartialEq)]
pub enum LrmsEvent {
    /// The job entered the queue (always first, even if it starts instantly).
    Queued,
    /// The job started on the given nodes.
    Started {
        /// Indices of the allocated worker nodes.
        nodes: Vec<usize>,
    },
    /// The job ran to completion.
    Finished,
    /// The job was killed (walltime exceeded, explicit kill, node loss).
    Killed {
        /// Why.
        reason: String,
    },
}

/// Where a local job is in its lifecycle, as a GRAM status poll would
/// report it. Terminal dispositions are retained after the job leaves the
/// queue/running tables, so a submitter whose status messages were lost to
/// a link outage can re-learn the outcome once the path heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalDisposition {
    /// Waiting in the queue.
    Queued,
    /// Running on worker nodes.
    Running,
    /// Ran to completion.
    Finished,
    /// Killed (walltime exceeded, explicit kill, node loss).
    Killed,
}

type Callback = BackendCallback;

struct QueuedJob {
    id: LocalJobId,
    spec: LocalJobSpec,
    callback: Callback,
    queued_at: SimTime,
    seq: u64,
}

struct RunningJob {
    callback: Callback,
    nodes: Vec<usize>,
    finish_event: Option<EventId>,
    kill_event: Option<EventId>,
}

/// Aggregate LRMS metrics.
#[derive(Debug, Clone, Default)]
pub struct LrmsStats {
    /// Queue-wait times of started jobs, seconds.
    pub wait: OnlineStats,
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs finished normally.
    pub finished: u64,
    /// Jobs killed.
    pub killed: u64,
}

struct Inner {
    policy: Policy,
    node_busy: Vec<bool>,
    queue: VecDeque<QueuedJob>,
    running: std::collections::HashMap<LocalJobId, RunningJob>,
    /// Jobs popped from the queue whose nodes are reserved but that have not
    /// started yet — the dispatch-latency window (fork, image activation).
    /// Without it, `submitted = queued + running + dispatching + finished +
    /// killed` would not balance at arbitrary probe instants.
    dispatching: usize,
    next_id: u64,
    next_seq: u64,
    /// Scheduler cycle latency: time between a dispatch decision and the job
    /// actually starting on the node (fork, image activation).
    dispatch_latency: SimDuration,
    stats: LrmsStats,
    /// Terminal dispositions of departed jobs — the poll-back record.
    /// Ordered by id (ids are monotonic, so id order == completion-record
    /// order) so eviction drops the oldest record first.
    done: BTreeMap<LocalJobId, LocalDisposition>,
    /// Cap on `done`: oldest records are evicted (and traced) past this.
    retention: usize,
    /// Lifecycle event sink and this scheduler's site label.
    trace: Option<(cg_trace::EventLog, String)>,
}

/// A local batch scheduler handle. Clones share state.
#[derive(Clone)]
pub struct Lrms {
    inner: Rc<RefCell<Inner>>,
}

impl Lrms {
    /// Creates an LRMS over `nodes` worker nodes.
    ///
    /// # Panics
    /// Panics when `nodes == 0`; use [`Lrms::try_new`] for a typed error.
    pub fn new(policy: Policy, nodes: usize, dispatch_latency: SimDuration) -> Self {
        Lrms::try_new(policy, nodes, dispatch_latency).expect("LRMS with no worker nodes")
    }

    /// Creates an LRMS over `nodes` worker nodes, rejecting configurations
    /// that could never dispatch a job.
    ///
    /// # Errors
    /// [`BackendError::ZeroNodes`] when `nodes == 0` — such a scheduler
    /// accepts submissions but can never start them (every job wedges in
    /// the queue), so construction is the right place to fail.
    pub fn try_new(
        policy: Policy,
        nodes: usize,
        dispatch_latency: SimDuration,
    ) -> Result<Self, BackendError> {
        if nodes == 0 {
            return Err(BackendError::ZeroNodes);
        }
        Ok(Lrms {
            inner: Rc::new(RefCell::new(Inner {
                policy,
                node_busy: vec![false; nodes],
                queue: VecDeque::new(),
                running: std::collections::HashMap::new(),
                dispatching: 0,
                next_id: 0,
                next_seq: 0,
                dispatch_latency,
                stats: LrmsStats::default(),
                done: BTreeMap::new(),
                retention: DEFAULT_DISPOSITION_RETENTION,
                trace: None,
            })),
        })
    }

    /// Caps how many terminal dispositions [`Lrms::disposition`] retains.
    /// When a newly recorded outcome pushes the table past `cap`, the
    /// oldest records are evicted and traced as `DispositionEvicted` — a
    /// rejoining broker polling for a job older than the cap gets `None`
    /// and must treat the outcome as unknown.
    ///
    /// # Panics
    /// Panics when `cap == 0`: a site that retains nothing breaks rejoin
    /// reconciliation outright.
    pub fn set_disposition_retention(&self, cap: usize) {
        assert!(cap > 0, "disposition retention cap must be >= 1");
        self.inner.borrow_mut().retention = cap;
    }

    /// Routes this scheduler's queue/start/finish/kill transitions into
    /// `log`, labelled with `site`.
    pub fn set_trace(&self, log: cg_trace::EventLog, site: impl Into<String>) {
        self.inner.borrow_mut().trace = Some((log, site.into()));
    }

    fn trace_event(&self, sim: &Sim, make: impl FnOnce(&str) -> cg_trace::Event) {
        if let Some((log, site)) = &self.inner.borrow().trace {
            log.record(sim.now(), make(site));
        }
    }

    fn trace_evictions(&self, sim: &Sim, evicted: &[LocalJobId]) {
        for &old in evicted {
            self.trace_event(sim, |site| cg_trace::Event::DispositionEvicted {
                site: site.to_string(),
                job: old.0,
            });
        }
    }

    /// Submits a job; `callback` observes every lifecycle event. Returns the
    /// job id (also passed to the callback, so one callback can serve many
    /// jobs).
    pub fn submit(
        &self,
        sim: &mut Sim,
        spec: LocalJobSpec,
        callback: impl Fn(&mut Sim, LocalJobId, &LrmsEvent) + 'static,
    ) -> LocalJobId {
        self.submit_rc(sim, spec, Rc::new(callback))
    }

    /// [`Lrms::submit`] with an already-shared callback — the form the
    /// [`crate::Backend`] trait's object-safe seam uses.
    pub(crate) fn submit_rc(
        &self,
        sim: &mut Sim,
        spec: LocalJobSpec,
        callback: Callback,
    ) -> LocalJobId {
        assert!(spec.nodes >= 1, "job requesting zero nodes");
        let mut inner = self.inner.borrow_mut();
        inner.stats.submitted += 1;
        let id = LocalJobId(inner.next_id);
        inner.next_id += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.queue.push_back(QueuedJob {
            id,
            spec,
            callback: Rc::clone(&callback),
            queued_at: sim.now(),
            seq,
        });
        drop(inner);
        self.trace_event(sim, |site| cg_trace::Event::LrmsQueued {
            site: site.to_string(),
            job: id.0,
        });
        let cb = Rc::clone(&callback);
        sim.schedule_now(move |sim| cb(sim, id, &LrmsEvent::Queued));
        let this = self.clone();
        sim.schedule_now(move |sim| this.try_dispatch(sim));
        id
    }

    /// Ends a running job early with `Finished` (used by components whose
    /// jobs have no natural runtime, like glide-in agents leaving a machine).
    /// No-op when the job is not running.
    pub fn complete(&self, sim: &mut Sim, id: LocalJobId) {
        self.end_job(sim, id, None);
    }

    /// Kills a queued or running job. Returns whether the job was known.
    pub fn kill(&self, sim: &mut Sim, id: LocalJobId, reason: impl Into<String>) -> bool {
        let reason = reason.into();
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(pos) = inner.queue.iter().position(|q| q.id == id) {
                let q = inner.queue.remove(pos).expect("position was valid");
                inner.stats.killed += 1;
                let evicted = record_done(&mut inner, id, LocalDisposition::Killed);
                drop(inner);
                self.trace_event(sim, |site| cg_trace::Event::LrmsKilled {
                    site: site.to_string(),
                    job: id.0,
                    reason: reason.clone(),
                });
                self.trace_evictions(sim, &evicted);
                let cb = q.callback;
                sim.schedule_now(move |sim| cb(sim, id, &LrmsEvent::Killed { reason }));
                return true;
            }
        }
        if self.inner.borrow().running.contains_key(&id) {
            self.end_job(sim, id, Some(reason));
            true
        } else {
            false
        }
    }

    /// Free nodes right now.
    pub fn free_nodes(&self) -> usize {
        self.inner
            .borrow()
            .node_busy
            .iter()
            .filter(|b| !**b)
            .count()
    }

    /// Total nodes.
    pub fn total_nodes(&self) -> usize {
        self.inner.borrow().node_busy.len()
    }

    /// Jobs waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Jobs currently running.
    pub fn running_count(&self) -> usize {
        self.inner.borrow().running.len()
    }

    /// Jobs inside the dispatch-latency window: off the queue, nodes
    /// reserved, not started yet. These are invisible to both
    /// [`Lrms::queue_depth`] and [`Lrms::running_count`], so conservation
    /// checks must count them separately.
    pub fn dispatching_count(&self) -> usize {
        self.inner.borrow().dispatching
    }

    /// Whether the queue has room by this site's admission policy — CrossGrid
    /// sites bounded their queues; the broker checks before submitting.
    /// (Modelled as a fixed multiple of the node count.)
    pub fn accepts_queued_jobs(&self) -> bool {
        let inner = self.inner.borrow();
        inner.queue.len() < 4 * inner.node_busy.len()
    }

    /// Scheduler metrics so far.
    pub fn stats(&self) -> LrmsStats {
        self.inner.borrow().stats.clone()
    }

    /// Answers a status poll for one local job: where it is now, or how it
    /// ended. `None` for ids this LRMS never accepted. Unlike the push
    /// notifications (which ride the broker↔site link and are dropped on
    /// outages), this is the authoritative site-local record.
    pub fn disposition(&self, id: LocalJobId) -> Option<LocalDisposition> {
        let inner = self.inner.borrow();
        if inner.queue.iter().any(|q| q.id == id) {
            return Some(LocalDisposition::Queued);
        }
        if inner.running.contains_key(&id) {
            return Some(LocalDisposition::Running);
        }
        inner.done.get(&id).copied()
    }

    fn end_job(&self, sim: &mut Sim, id: LocalJobId, kill_reason: Option<String>) {
        let mut inner = self.inner.borrow_mut();
        let Some(job) = inner.running.remove(&id) else {
            return;
        };
        for &n in &job.nodes {
            inner.node_busy[n] = false;
        }
        let evicted = if kill_reason.is_some() {
            inner.stats.killed += 1;
            record_done(&mut inner, id, LocalDisposition::Killed)
        } else {
            inner.stats.finished += 1;
            record_done(&mut inner, id, LocalDisposition::Finished)
        };
        drop(inner);
        for ev in [job.finish_event, job.kill_event].into_iter().flatten() {
            sim.cancel(ev);
        }
        self.trace_event(sim, |site| match &kill_reason {
            Some(reason) => cg_trace::Event::LrmsKilled {
                site: site.to_string(),
                job: id.0,
                reason: reason.clone(),
            },
            None => cg_trace::Event::LrmsFinished {
                site: site.to_string(),
                job: id.0,
            },
        });
        self.trace_evictions(sim, &evicted);
        let cb = job.callback;
        let event = match kill_reason {
            Some(reason) => LrmsEvent::Killed { reason },
            None => LrmsEvent::Finished,
        };
        sim.schedule_now(move |sim| cb(sim, id, &event));
        let this = self.clone();
        sim.schedule_now(move |sim| this.try_dispatch(sim));
    }

    fn try_dispatch(&self, sim: &mut Sim) {
        loop {
            let mut inner = self.inner.borrow_mut();
            if inner.queue.is_empty() {
                return;
            }
            let free: Vec<usize> = inner
                .node_busy
                .iter()
                .enumerate()
                .filter_map(|(i, b)| (!b).then_some(i))
                .collect();
            // Pick the next job per policy.
            let pick = match inner.policy {
                Policy::Fifo => {
                    let head = &inner.queue[0];
                    (head.spec.nodes as usize <= free.len()).then_some(0)
                }
                Policy::FifoBackfill => (0..inner.queue.len())
                    .find(|&i| inner.queue[i].spec.nodes as usize <= free.len()),
                Policy::Priority => {
                    let mut best: Option<usize> = None;
                    for i in 0..inner.queue.len() {
                        if inner.queue[i].spec.nodes as usize > free.len() {
                            continue;
                        }
                        best = Some(match best {
                            None => i,
                            Some(j) => {
                                let (a, b) = (&inner.queue[i], &inner.queue[j]);
                                if (a.spec.priority, a.seq) < (b.spec.priority, b.seq) {
                                    i
                                } else {
                                    j
                                }
                            }
                        });
                    }
                    best
                }
            };
            let Some(pick) = pick else { return };
            let job = inner.queue.remove(pick).expect("pick index valid");
            let nodes: Vec<usize> = free[..job.spec.nodes as usize].to_vec();
            for &n in &nodes {
                inner.node_busy[n] = true;
            }
            let wait = sim.now().saturating_since(job.queued_at);
            inner.stats.wait.record_duration(wait);
            inner.dispatching += 1;
            let dispatch = inner.dispatch_latency;
            drop(inner);

            let id = job.id;
            let spec = job.spec;
            let callback = job.callback;
            let this = self.clone();
            let node_list = nodes.clone();
            sim.schedule_in(dispatch, move |sim| {
                // Register as running, then announce.
                let mut finish_event = None;
                let mut kill_event = None;
                if let Some(rt) = spec.runtime {
                    let this2 = this.clone();
                    let run = match spec.walltime {
                        Some(w) if w < rt => None, // walltime fires first
                        _ => Some(rt),
                    };
                    if let Some(rt) = run {
                        finish_event =
                            Some(sim.schedule_in(rt, move |sim| this2.end_job(sim, id, None)));
                    }
                }
                if let Some(w) = spec.walltime {
                    if spec.runtime.is_none_or(|rt| w < rt) {
                        let this2 = this.clone();
                        kill_event = Some(sim.schedule_in(w, move |sim| {
                            this2.end_job(sim, id, Some("walltime exceeded".into()));
                        }));
                    }
                }
                {
                    let mut inner = this.inner.borrow_mut();
                    inner.dispatching -= 1;
                    inner.running.insert(
                        id,
                        RunningJob {
                            callback: Rc::clone(&callback),
                            nodes: node_list.clone(),
                            finish_event,
                            kill_event,
                        },
                    );
                }
                this.trace_event(sim, |site| cg_trace::Event::LrmsStarted {
                    site: site.to_string(),
                    job: id.0,
                    nodes: node_list.len() as u32,
                });
                callback(sim, id, &LrmsEvent::Started { nodes: node_list });
            });
        }
    }
}

/// Records a terminal disposition and evicts the oldest records past the
/// retention cap. Returns the evicted ids so the caller can trace them
/// after releasing the borrow (ids are monotonic, so the just-inserted id
/// is always the newest and never self-evicts).
fn record_done(inner: &mut Inner, id: LocalJobId, disp: LocalDisposition) -> Vec<LocalJobId> {
    inner.done.insert(id, disp);
    let mut evicted = Vec::new();
    while inner.done.len() > inner.retention {
        let (old, _) = inner.done.pop_first().expect("len > cap >= 1");
        evicted.push(old);
    }
    evicted
}

impl std::fmt::Debug for Lrms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Lrms")
            .field("policy", &inner.policy)
            .field("nodes", &inner.node_busy.len())
            .field("queued", &inner.queue.len())
            .field("running", &inner.running.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(u64, String, f64)>>>;

    fn logging_cb(log: Log) -> impl Fn(&mut Sim, LocalJobId, &LrmsEvent) {
        move |sim, id, ev| {
            let tag = match ev {
                LrmsEvent::Queued => "queued".to_string(),
                LrmsEvent::Started { .. } => "started".to_string(),
                LrmsEvent::Finished => "finished".to_string(),
                LrmsEvent::Killed { reason } => format!("killed:{reason}"),
            };
            log.borrow_mut().push((id.0, tag, sim.now().as_secs_f64()));
        }
    }

    fn events_for(log: &Log, id: u64) -> Vec<(String, f64)> {
        log.borrow()
            .iter()
            .filter(|(i, _, _)| *i == id)
            .map(|(_, t, at)| (t.clone(), *at))
            .collect()
    }

    #[test]
    fn job_runs_through_lifecycle() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 2, SimDuration::from_secs(1));
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let id = lrms.submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10)),
            logging_cb(Rc::clone(&log)),
        );
        sim.run();
        let evs = events_for(&log, id.0);
        assert_eq!(evs[0].0, "queued");
        assert_eq!(evs[1], ("started".into(), 1.0), "dispatch latency applied");
        assert_eq!(evs[2], ("finished".into(), 11.0));
        assert_eq!(lrms.stats().finished, 1);
    }

    #[test]
    fn fifo_head_blocks_backfill_does_not() {
        // 3 nodes. Job A (2 nodes, 10 s) runs, leaving one node free; job B
        // (2 nodes) must wait; job C (1 node) behind B: FIFO blocks it behind
        // the stuck head, backfill runs it immediately on the free node.
        let run = |policy: Policy| {
            let mut sim = Sim::new(1);
            let lrms = Lrms::new(policy, 3, SimDuration::ZERO);
            let log: Log = Rc::new(RefCell::new(Vec::new()));
            let mk = |nodes| LocalJobSpec {
                nodes,
                runtime: Some(SimDuration::from_secs(10)),
                walltime: None,
                priority: 0,
                user: "u".into(),
            };
            let _a = lrms.submit(&mut sim, mk(2), logging_cb(Rc::clone(&log)));
            let _b = lrms.submit(&mut sim, mk(2), logging_cb(Rc::clone(&log)));
            let c = lrms.submit(&mut sim, mk(1), logging_cb(Rc::clone(&log)));
            sim.run();
            events_for(&log, c.0)
                .iter()
                .find(|(t, _)| t == "started")
                .map(|&(_, at)| at)
                .unwrap()
        };
        assert_eq!(
            run(Policy::Fifo),
            10.0,
            "FIFO: C waits behind the blocked head"
        );
        assert_eq!(
            run(Policy::FifoBackfill),
            0.0,
            "backfill: C jumps the blocked head"
        );
    }

    #[test]
    fn priority_policy_reorders_queue() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Priority, 1, SimDuration::ZERO);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mk = |priority| LocalJobSpec {
            nodes: 1,
            runtime: Some(SimDuration::from_secs(5)),
            walltime: None,
            priority,
            user: "u".into(),
        };
        // All three land in the queue in the same instant, so the first
        // dispatch already sees the full queue and priority decides alone.
        let low = lrms.submit(&mut sim, mk(10), logging_cb(Rc::clone(&log)));
        let worst = lrms.submit(&mut sim, mk(99), logging_cb(Rc::clone(&log)));
        let best = lrms.submit(&mut sim, mk(1), logging_cb(Rc::clone(&log)));
        sim.run();
        let started_at = |id: LocalJobId| {
            events_for(&log, id.0)
                .iter()
                .find(|(t, _)| t == "started")
                .map(|&(_, at)| at)
                .unwrap()
        };
        assert_eq!(started_at(best), 0.0, "best priority runs first");
        assert_eq!(started_at(low), 5.0);
        assert_eq!(started_at(worst), 10.0);
    }

    #[test]
    fn walltime_kills_overrunning_job() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let spec = LocalJobSpec {
            nodes: 1,
            runtime: Some(SimDuration::from_secs(100)),
            walltime: Some(SimDuration::from_secs(30)),
            priority: 0,
            user: "u".into(),
        };
        let id = lrms.submit(&mut sim, spec, logging_cb(Rc::clone(&log)));
        sim.run();
        let evs = events_for(&log, id.0);
        assert_eq!(evs.last().unwrap().0, "killed:walltime exceeded");
        assert_eq!(evs.last().unwrap().1, 30.0);
        assert_eq!(lrms.free_nodes(), 1, "node freed after kill");
    }

    #[test]
    fn indefinite_job_runs_until_completed() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let spec = LocalJobSpec {
            nodes: 1,
            runtime: None,
            walltime: None,
            priority: 0,
            user: "agent".into(),
        };
        let id = lrms.submit(&mut sim, spec, logging_cb(Rc::clone(&log)));
        sim.run_until(cg_sim::SimTime::from_secs(1_000));
        assert_eq!(lrms.running_count(), 1, "agent still holding the node");
        lrms.complete(&mut sim, id);
        sim.run();
        assert_eq!(events_for(&log, id.0).last().unwrap().0, "finished");
        assert_eq!(lrms.free_nodes(), 1);
    }

    #[test]
    fn kill_queued_job_never_starts() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let blocker = lrms.submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(50)),
            logging_cb(Rc::clone(&log)),
        );
        let victim = lrms.submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(1)),
            logging_cb(Rc::clone(&log)),
        );
        sim.run_until(cg_sim::SimTime::from_secs(5));
        assert!(lrms.kill(&mut sim, victim, "user abort"));
        assert!(
            !lrms.kill(&mut sim, LocalJobId(999), "no such"),
            "unknown id"
        );
        sim.run();
        let evs = events_for(&log, victim.0);
        assert!(evs.iter().all(|(t, _)| t != "started"));
        assert_eq!(evs.last().unwrap().0, "killed:user abort");
        let _ = blocker;
        assert_eq!(lrms.stats().killed, 1);
    }

    #[test]
    fn wait_times_are_recorded() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        lrms.submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10)),
            logging_cb(Rc::clone(&log)),
        );
        lrms.submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10)),
            logging_cb(Rc::clone(&log)),
        );
        sim.run();
        let stats = lrms.stats();
        assert_eq!(stats.wait.count(), 2);
        assert_eq!(stats.wait.min(), Some(0.0));
        assert_eq!(stats.wait.max(), Some(10.0));
    }

    #[test]
    fn queue_admission_bound() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        assert!(lrms.accepts_queued_jobs());
        for _ in 0..6 {
            lrms.submit(
                &mut sim,
                LocalJobSpec::simple(SimDuration::from_secs(1_000)),
                |_, _, _| {},
            );
        }
        sim.run_until(cg_sim::SimTime::from_secs(1));
        // 1 running, 5 queued > 4×1 nodes.
        assert!(!lrms.accepts_queued_jobs());
    }

    #[test]
    fn zero_node_construction_is_a_typed_error() {
        assert_eq!(
            Lrms::try_new(Policy::Fifo, 0, SimDuration::ZERO).err(),
            Some(crate::backend::BackendError::ZeroNodes)
        );
        assert!(Lrms::try_new(Policy::Fifo, 1, SimDuration::ZERO).is_ok());
    }

    #[test]
    fn disposition_retention_evicts_oldest_and_keeps_recent() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 4, SimDuration::ZERO);
        lrms.set_disposition_retention(4);
        let ids: Vec<LocalJobId> = (0..10)
            .map(|_| {
                lrms.submit(
                    &mut sim,
                    LocalJobSpec::simple(SimDuration::from_secs(1)),
                    |_, _, _| {},
                )
            })
            .collect();
        sim.run();
        // The 6 oldest outcomes were evicted; the 4 newest still answer
        // status polls — a rejoining broker finds its *recent* dispatches.
        for id in &ids[..6] {
            assert_eq!(lrms.disposition(*id), None, "evicted {id:?}");
        }
        for id in &ids[6..] {
            assert_eq!(
                lrms.disposition(*id),
                Some(LocalDisposition::Finished),
                "retained {id:?}"
            );
        }
        assert_eq!(lrms.stats().finished, 10, "stats are not evicted");
    }

    #[test]
    fn disposition_eviction_is_traced() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        lrms.set_disposition_retention(1);
        let log = cg_trace::EventLog::new(1024);
        lrms.set_trace(log.clone(), "uab");
        for _ in 0..3 {
            lrms.submit(
                &mut sim,
                LocalJobSpec::simple(SimDuration::from_secs(1)),
                |_, _, _| {},
            );
        }
        sim.run();
        let evicted: Vec<u64> = log
            .snapshot()
            .iter()
            .filter_map(|r| match &r.event {
                cg_trace::Event::DispositionEvicted { site, job } => {
                    assert_eq!(site, "uab");
                    Some(*job)
                }
                _ => None,
            })
            .collect();
        assert_eq!(evicted, [0, 1], "oldest two records evicted in order");
    }

    #[test]
    fn stats_submitted_balances_terminal_counters() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 2, SimDuration::ZERO);
        for i in 0..5u64 {
            lrms.submit(
                &mut sim,
                LocalJobSpec::simple(SimDuration::from_secs(5 + i)),
                |_, _, _| {},
            );
        }
        sim.run_until(cg_sim::SimTime::from_secs(1));
        lrms.kill(&mut sim, LocalJobId(4), "balance test");
        sim.run();
        let stats = lrms.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(
            stats.submitted,
            lrms.queue_depth() as u64 + lrms.running_count() as u64 + stats.finished + stats.killed
        );
    }

    #[test]
    fn multi_node_job_takes_whole_nodes() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 4, SimDuration::ZERO);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let spec = LocalJobSpec {
            nodes: 3,
            runtime: Some(SimDuration::from_secs(10)),
            walltime: None,
            priority: 0,
            user: "mpi".into(),
        };
        lrms.submit(&mut sim, spec, logging_cb(Rc::clone(&log)));
        sim.run_until(cg_sim::SimTime::from_secs(1));
        assert_eq!(lrms.free_nodes(), 1);
        sim.run();
        assert_eq!(lrms.free_nodes(), 4);
        let started_nodes = log
            .borrow()
            .iter()
            .filter(|(_, t, _)| t == "started")
            .count();
        assert_eq!(started_nodes, 1);
    }
}
