//! # cg-site — the grid-site substrate
//!
//! Models everything the paper's jobs traverse *at* a site: worker nodes
//! ([`NodeSpec`]), the local batch scheduler ([`Lrms`], FIFO / backfill /
//! priority policies, walltime enforcement), the Globus-era gatekeeper
//! ([`Gatekeeper`]: GSI auth, jobmanager fork, two-phase commit, sandbox
//! staging), and the MDS information system ([`InformationIndex`]: per-site
//! snapshots that go stale between refreshes, forcing the broker's two-step
//! discovery/selection).
//!
//! These are the layers whose costs the paper's Table I decomposes, and the
//! batch-system "adversary" whose queueing delays motivate the
//! multi-programming mechanism.

#![warn(missing_docs)]

mod backend;
mod columns;
mod gatekeeper;
mod giis;
mod lrms;
mod mds;
mod membership;
mod site;
mod wn;

pub use backend::{
    Backend, BackendCallback, BackendError, BackendHandle, BackendKind, BackendSpec,
    ProcessBackend, RealExecStats, ThreadPoolBackend,
};
pub use columns::AdSnapshot;
pub use gatekeeper::{Gatekeeper, GramCosts, GramEvent};
pub use giis::{GiisConfig, GiisDeltaReport, GiisRoot, LeafStats};
pub use lrms::{
    LocalDisposition, LocalJobId, LocalJobSpec, Lrms, LrmsEvent, LrmsStats, Policy,
    DEFAULT_DISPOSITION_RETENTION,
};
pub use mds::{InformationIndex, RefreshWindow, SiteRecord, SweepReport};
pub use membership::{MembershipConfig, MembershipState, MembershipTable, Transition};
pub use site::{machine_schema, Site, SiteConfig};
pub use wn::NodeSpec;
