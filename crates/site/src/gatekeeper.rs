//! The site gatekeeper — a Globus 2.4 GRAM model.
//!
//! Submission from the broker to a worker node traverses: GSI
//! authentication, the gatekeeper fork of a jobmanager, optional two-phase
//! commit (CrossBroker "uses a two phase commit protocol that guarantees a
//! better detection of error conditions at submission time", §6.1), input
//! sandbox staging, and finally the local batch system. Each layer's cost is
//! explicit so Table I decomposes the same way the paper's numbers do.

use std::rc::Rc;

use cg_net::{Dir, HandshakeProfile, Link, NetError, Session};
use cg_sim::{Sim, SimDuration};
use serde::{Deserialize, Serialize};

use crate::backend::BackendHandle;
use crate::lrms::{LocalJobId, LocalJobSpec, LrmsEvent};

/// Shared submitter-side event callback.
type GramCallback = Rc<dyn Fn(&mut Sim, &GramEvent)>;

/// Calibrated costs of the Globus-era middleware layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GramCosts {
    /// Median time for the gatekeeper to authenticate, authorize (gridmap
    /// lookup) and fork a jobmanager process, seconds. Globus 2.x was
    /// notoriously heavy here.
    pub jobmanager_median_s: f64,
    /// Log-normal sigma of the jobmanager cost (long tail under load).
    pub jobmanager_sigma: f64,
    /// Fixed GridFTP session setup for sandbox staging, seconds.
    pub staging_setup_s: f64,
    /// Job-request message size, bytes (RSL + delegated proxy).
    pub request_bytes: u64,
    /// Status/ack message size, bytes.
    pub ack_bytes: u64,
    /// Whether the submitter runs the two-phase commit exchange.
    pub two_phase_commit: bool,
}

impl GramCosts {
    /// Calibration for the 2006 testbed (Globus 2.4 on Pentium-class
    /// gatekeepers). With LRMS dispatch and console startup this lands the
    /// "Idle" row of Table I near the paper's 17.2 s.
    pub fn globus24() -> Self {
        GramCosts {
            jobmanager_median_s: 12.3,
            jobmanager_sigma: 0.15,
            staging_setup_s: 1.2,
            request_bytes: 6_000,
            ack_bytes: 400,
            two_phase_commit: true,
        }
    }
}

/// Events the submitter observes, each delivered after the status message
/// crosses the broker↔site link.
#[derive(Debug, Clone, PartialEq)]
pub enum GramEvent {
    /// The jobmanager accepted the job and handed it to the LRMS.
    Accepted {
        /// LRMS-local job id.
        local_id: LocalJobId,
    },
    /// The LRMS queued the job (it did NOT start immediately — the signal
    /// CrossBroker's on-line scheduling reacts to by resubmitting elsewhere).
    Queued,
    /// The job started on worker nodes.
    Started {
        /// Allocated node indices.
        nodes: Vec<usize>,
    },
    /// The job finished normally.
    Finished,
    /// The job was killed at the site.
    Killed {
        /// Why.
        reason: String,
    },
    /// Submission failed before reaching the LRMS.
    Failed(NetError),
}

/// A site's gatekeeper: front door from the broker network to the local
/// execution backend.
#[derive(Clone)]
pub struct Gatekeeper {
    lrms: BackendHandle,
    costs: Rc<GramCosts>,
}

impl Gatekeeper {
    /// Wraps an execution backend behind GRAM semantics. Accepts anything
    /// convertible to a [`BackendHandle`] — a bare [`crate::Lrms`] included.
    pub fn new(lrms: impl Into<BackendHandle>, costs: GramCosts) -> Self {
        Gatekeeper {
            lrms: lrms.into(),
            costs: Rc::new(costs),
        }
    }

    /// The execution backend behind this gatekeeper.
    pub fn lrms(&self) -> &BackendHandle {
        &self.lrms
    }

    /// Submits a job through the full GRAM pipeline. `link` is the
    /// broker↔site path; `sandbox_bytes` is staged before the LRMS sees the
    /// job. `on_event` observes [`GramEvent`]s on the broker side.
    pub fn submit(
        &self,
        sim: &mut Sim,
        link: Link,
        spec: LocalJobSpec,
        sandbox_bytes: u64,
        on_event: impl Fn(&mut Sim, &GramEvent) + 'static,
    ) {
        let on_event: GramCallback = Rc::new(on_event);
        let costs = Rc::clone(&self.costs);
        let lrms = self.lrms.clone();

        // 1. GSI authentication to the gatekeeper.
        let link2 = link.clone();
        let fail = {
            let on_event = Rc::clone(&on_event);
            move |sim: &mut Sim, e: NetError| {
                let on_event = Rc::clone(&on_event);
                sim.schedule_now(move |sim| on_event(sim, &GramEvent::Failed(e)));
            }
        };
        Session::connect(
            sim,
            link.clone(),
            Dir::AToB,
            HandshakeProfile::gsi(),
            move |sim, r| {
                let session = match r {
                    Err(e) => return fail(sim, e),
                    Ok(s) => s,
                };
                // 2. Job request (RSL + proxy) to the gatekeeper.
                let costs2 = Rc::clone(&costs);
                let on2 = Rc::clone(&on_event);
                let fail2 = fail.clone();
                let session_cl = session.clone();
                session_cl.send(sim, costs.request_bytes, move |sim, r| {
                    if let Err(e) = r {
                        return fail2(sim, e);
                    }
                    // 3. Gatekeeper forks the jobmanager.
                    let fork = sim
                        .rng()
                        .log_normal_duration(costs2.jobmanager_median_s, costs2.jobmanager_sigma);
                    let costs3 = Rc::clone(&costs2);
                    let session2 = session.clone();
                    sim.schedule_in(fork, move |sim| {
                        // 4. Optional two-phase commit: ready ack to the
                        //    broker, commit message back.
                        let proceed = {
                            let costs4 = Rc::clone(&costs3);
                            let session3 = session2.clone();
                            let on3 = Rc::clone(&on2);
                            let fail3 = fail2.clone();
                            move |sim: &mut Sim| {
                                stage_and_submit(
                                    sim,
                                    session3.clone(),
                                    link2.clone(),
                                    lrms.clone(),
                                    spec.clone(),
                                    sandbox_bytes,
                                    Rc::clone(&costs4),
                                    Rc::clone(&on3),
                                    fail3.clone(),
                                );
                            }
                        };
                        if costs3.two_phase_commit {
                            let fail4 = fail2.clone();
                            let ack = costs3.ack_bytes;
                            let session4 = session2.clone();
                            session2.send_back(sim, ack, move |sim, r| {
                                if let Err(e) = r {
                                    return fail4(sim, e);
                                }
                                let fail5 = fail4.clone();
                                session4.send(sim, ack, move |sim, r| match r {
                                    Err(e) => fail5(sim, e),
                                    Ok(()) => proceed(sim),
                                });
                            });
                        } else {
                            proceed(sim);
                        }
                    });
                });
            },
        );
    }
}

// Staging parameters arrive as one bundle from the submit path; a carrier
// struct would only rename the argument list at its single call site.
#[allow(clippy::too_many_arguments)]
fn stage_and_submit(
    sim: &mut Sim,
    session: Session,
    link: Link,
    lrms: BackendHandle,
    spec: LocalJobSpec,
    sandbox_bytes: u64,
    costs: Rc<GramCosts>,
    on_event: GramCallback,
    fail: impl Fn(&mut Sim, NetError) + Clone + 'static,
) {
    // 5. Stage the input sandbox (GridFTP setup + transfer).
    let setup = SimDuration::from_secs_f64(costs.staging_setup_s);
    let do_stage = move |sim: &mut Sim| {
        let submit_to_lrms = {
            let link = link.clone();
            let on_event = Rc::clone(&on_event);
            move |sim: &mut Sim| {
                // 6. Hand to the LRMS; forward every event across the link.
                let ack_bytes = costs.ack_bytes;
                let forward = move |sim: &mut Sim, ev: GramEvent, link: &Link| {
                    let on_event = Rc::clone(&on_event);
                    link.send(sim, Dir::BToA, ack_bytes, move |sim, r| match r {
                        // Status messages lost to outages are dropped — the
                        // paper's broker re-learns state by polling; models
                        // that care use reliable console streams instead.
                        Err(_) => {}
                        Ok(()) => on_event(sim, &ev),
                    });
                };
                let link2 = link.clone();
                let lrms_cl = lrms.clone();
                lrms_cl.submit(sim, spec, move |sim, local_id, ev| {
                    let mapped = match ev {
                        LrmsEvent::Queued => Some(GramEvent::Accepted { local_id }),
                        LrmsEvent::Started { nodes } => Some(GramEvent::Started {
                            nodes: nodes.clone(),
                        }),
                        LrmsEvent::Finished => Some(GramEvent::Finished),
                        LrmsEvent::Killed { reason } => Some(GramEvent::Killed {
                            reason: reason.clone(),
                        }),
                    };
                    if let Some(ev) = mapped {
                        forward(sim, ev, &link2);
                    }
                    // A job that is queued and not started within the
                    // scheduler cycle is reported as Queued (the broker's
                    // resubmission trigger).
                    if matches!(ev, LrmsEvent::Queued) && lrms_is_backed_up(&lrms) {
                        forward(sim, GramEvent::Queued, &link2);
                    }
                });
            }
        };
        if sandbox_bytes == 0 {
            sim.schedule_in(setup, submit_to_lrms);
        } else {
            sim.schedule_in(setup, move |sim| {
                let fail2 = fail.clone();
                session.send(sim, sandbox_bytes, move |sim, r| match r {
                    Err(e) => fail2(sim, e),
                    Ok(()) => submit_to_lrms(sim),
                });
            });
        }
    };
    do_stage(sim);
}

fn lrms_is_backed_up(lrms: &BackendHandle) -> bool {
    lrms.free_nodes() == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrms::{Lrms, Policy};
    use cg_net::LinkProfile;
    use std::cell::RefCell;

    type Log = Rc<RefCell<Vec<(String, f64)>>>;

    fn logging(log: Log) -> impl Fn(&mut Sim, &GramEvent) {
        move |sim, ev| {
            let tag = match ev {
                GramEvent::Accepted { .. } => "accepted".into(),
                GramEvent::Queued => "queued".into(),
                GramEvent::Started { .. } => "started".into(),
                GramEvent::Finished => "finished".into(),
                GramEvent::Killed { reason } => format!("killed:{reason}"),
                GramEvent::Failed(e) => format!("failed:{e}"),
            };
            log.borrow_mut().push((tag, sim.now().as_secs_f64()));
        }
    }

    fn submit_one(
        link_profile: LinkProfile,
        free_nodes: usize,
        sandbox: u64,
    ) -> (Vec<(String, f64)>, Lrms) {
        let mut sim = Sim::new(42);
        let lrms = Lrms::new(
            Policy::Fifo,
            free_nodes.max(1),
            SimDuration::from_millis(1500),
        );
        if free_nodes == 0 {
            // Occupy the single node with a long batch job.
            lrms.submit(
                &mut sim,
                LocalJobSpec::simple(SimDuration::from_secs(100_000)),
                |_, _, _| {},
            );
            sim.run_until(cg_sim::SimTime::from_secs(10));
        }
        let gk = Gatekeeper::new(lrms.clone(), GramCosts::globus24());
        let link = Link::new(link_profile);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        gk.submit(
            &mut sim,
            link,
            LocalJobSpec::simple(SimDuration::from_secs(60)),
            sandbox,
            logging(Rc::clone(&log)),
        );
        sim.run_until(cg_sim::SimTime::from_secs(4_000));
        let out = log.borrow().clone();
        (out, lrms)
    }

    #[test]
    fn idle_site_submission_lands_in_globus_era_range() {
        let (log, _) = submit_one(LinkProfile::campus(), 4, 1_000_000);
        let started = log
            .iter()
            .find(|(t, _)| t == "started")
            .expect("job started");
        // GSI + jobmanager fork + 2PC + staging + dispatch: several seconds,
        // the order of magnitude Table I reports for the middleware path.
        assert!(
            (8.0..25.0).contains(&started.1),
            "submission pipeline took {}s",
            started.1
        );
        let accepted = log.iter().find(|(t, _)| t == "accepted").unwrap();
        assert!(accepted.1 < started.1);
    }

    #[test]
    fn busy_site_reports_queued() {
        let (log, lrms) = submit_one(LinkProfile::campus(), 0, 0);
        assert!(
            log.iter().any(|(t, _)| t == "queued"),
            "broker must learn the job queued: {log:?}"
        );
        assert!(log.iter().all(|(t, _)| t != "started"));
        assert_eq!(lrms.queue_depth(), 1);
    }

    #[test]
    fn finished_event_reaches_broker() {
        let (log, _) = submit_one(LinkProfile::campus(), 2, 0);
        let finished = log.iter().find(|(t, _)| t == "finished").expect("finished");
        let started = log.iter().find(|(t, _)| t == "started").unwrap();
        assert!(
            (finished.1 - started.1 - 60.0).abs() < 1.0,
            "runtime ≈ 60 s"
        );
    }

    #[test]
    fn dead_link_fails_submission() {
        let mut sim = Sim::new(1);
        let lrms = Lrms::new(Policy::Fifo, 1, SimDuration::ZERO);
        let gk = Gatekeeper::new(lrms, GramCosts::globus24());
        let faults = cg_net::FaultSchedule::from_windows(vec![(
            cg_sim::SimTime::ZERO,
            cg_sim::SimTime::from_secs(1_000),
        )]);
        let link = Link::with_faults(LinkProfile::campus(), faults);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        gk.submit(
            &mut sim,
            link,
            LocalJobSpec::simple(SimDuration::from_secs(1)),
            0,
            logging(Rc::clone(&log)),
        );
        sim.run();
        assert!(
            log.borrow()[0].0.starts_with("failed:"),
            "{:?}",
            log.borrow()
        );
    }

    #[test]
    fn wan_submission_slower_than_campus() {
        let started_at = |p: LinkProfile| {
            let (log, _) = submit_one(p, 4, 1_000_000);
            log.iter().find(|(t, _)| t == "started").unwrap().1
        };
        let campus = started_at(LinkProfile::campus());
        let wan = started_at(LinkProfile::wan_ifca());
        assert!(wan > campus, "wan {wan} campus {campus}");
    }
}
