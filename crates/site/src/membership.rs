//! Site membership lifecycle — the grid's failure detector.
//!
//! Grid sites churn: MDS publications stop arriving when a site's GRIS
//! falls over, live status queries time out when its gatekeeper link
//! drops, and sites come back after rolling upgrades. The broker must
//! keep matchmaking through all of it without dispatching onto hosts it
//! has itself declared unreachable.
//!
//! Each site in the information index carries a five-state machine:
//!
//! ```text
//! Joining ──ok──▶ Alive ──misses/failures──▶ Suspect ──more──▶ Dead
//!                   ▲                           │                │
//!                   │ probation refreshes       └────ok──▶ Rejoined
//!                   └───────────────────────────────────────────┘
//! ```
//!
//! Transitions are driven by two deterministic signals, both on sim
//! time: *missed MDS refreshes* (the index's refresh tick found the
//! site's publication path down) and *failed live queries* (the broker
//! reported an errored or timed-out per-site status RPC). Recovery runs
//! through `Rejoined`, a probation state that is schedulable but only
//! promotes back to `Alive` after a configurable number of clean
//! refreshes — a flapping site keeps cycling Suspect ⇄ Rejoined instead
//! of oscillating in and out of full membership.
//!
//! The machine is pure bookkeeping: it holds no clock and emits no
//! events itself. Callers feed observations in and receive
//! [`Transition`] values out; the broker turns those into trace
//! obituaries (`SiteSuspect` / `SiteDead` / `SiteRejoin`) and reacts —
//! re-matching in-flight work away from the dead site and resetting its
//! failure streaks on rejoin.

use cg_sim::SimTime;

/// Where a site stands in the membership lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipState {
    /// Registered but not yet confirmed by a clean refresh. Schedulable
    /// (optimistic bootstrap: the initial index snapshot is taken
    /// synchronously, before any refresh has had a chance to run).
    Joining,
    /// Healthy, full member.
    Alive,
    /// Missing refreshes or failing queries; withheld from matchmaking
    /// until it proves itself again.
    Suspect,
    /// Declared gone. In-flight work is re-matched elsewhere; nothing
    /// new lands here.
    Dead,
    /// Back from Suspect/Dead, on probation: schedulable again, but a
    /// relapse sends it straight back without passing through Alive.
    Rejoined,
}

impl MembershipState {
    /// May the broker lease or dispatch onto a site in this state?
    /// Exactly the invariant the trace checker enforces: never onto
    /// `Suspect` or `Dead`.
    #[must_use]
    pub fn is_schedulable(self) -> bool {
        !matches!(self, MembershipState::Suspect | MembershipState::Dead)
    }

    /// Stable display name (matches the trace event kinds).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MembershipState::Joining => "Joining",
            MembershipState::Alive => "Alive",
            MembershipState::Suspect => "Suspect",
            MembershipState::Dead => "Dead",
            MembershipState::Rejoined => "Rejoined",
        }
    }
}

/// Thresholds of the failure detector. All counts of consecutive
/// observations; everything is deterministic on the observation order.
#[derive(Debug, Clone, Copy)]
pub struct MembershipConfig {
    /// Consecutive missed MDS refreshes before a site turns `Suspect`.
    pub suspect_after_missed_refreshes: u32,
    /// Consecutive failed/timed-out live queries before `Suspect`.
    pub suspect_after_failed_queries: u32,
    /// Consecutive missed refreshes before `Suspect` hardens to `Dead`.
    pub dead_after_missed_refreshes: u32,
    /// Consecutive failed live queries before `Dead`.
    pub dead_after_failed_queries: u32,
    /// Clean refreshes a `Rejoined` site must survive before it counts
    /// as fully `Alive` again.
    pub rejoin_probation_refreshes: u32,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            suspect_after_missed_refreshes: 2,
            suspect_after_failed_queries: 3,
            dead_after_missed_refreshes: 4,
            dead_after_failed_queries: 6,
            rejoin_probation_refreshes: 2,
        }
    }
}

/// A state change worth reacting to, returned by the `note_*` methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// `Joining → Alive`: first clean observation.
    Joined,
    /// `{Joining, Alive, Rejoined} → Suspect`. Carries the counter
    /// values that crossed the threshold (for the trace obituary).
    Suspected {
        /// Consecutive missed refreshes at the moment of suspicion.
        missed_refreshes: u32,
        /// Consecutive failed live queries at the moment of suspicion.
        failed_queries: u32,
    },
    /// `Suspect → Dead` (or a straight plunge past both thresholds).
    Died,
    /// `{Suspect, Dead} → Rejoined`. Carries when the outage began.
    Rejoined {
        /// Instant the site first turned unhealthy.
        down_since: SimTime,
    },
    /// `Rejoined → Alive`: probation served.
    Stabilized,
}

/// One site's detector state.
#[derive(Debug, Clone)]
struct SiteMembership {
    state: MembershipState,
    missed_refreshes: u32,
    failed_queries: u32,
    /// Set on the healthy → unhealthy edge, cleared on rejoin.
    down_since: Option<SimTime>,
    /// Clean refreshes seen while `Rejoined`.
    probation: u32,
}

impl SiteMembership {
    fn new() -> Self {
        SiteMembership {
            state: MembershipState::Joining,
            missed_refreshes: 0,
            failed_queries: 0,
            down_since: None,
            probation: 0,
        }
    }
}

/// The failure detector for every site in an information index, keyed by
/// site index (the same index order the broker and `AdSnapshot` use).
#[derive(Debug, Clone)]
pub struct MembershipTable {
    config: MembershipConfig,
    sites: Vec<SiteMembership>,
}

impl MembershipTable {
    /// A table of `n` sites, all `Joining`.
    #[must_use]
    pub fn new(n: usize, config: MembershipConfig) -> Self {
        MembershipTable {
            config,
            sites: (0..n).map(|_| SiteMembership::new()).collect(),
        }
    }

    /// Number of tracked sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no sites are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site's current state.
    #[must_use]
    pub fn state(&self, site_index: usize) -> MembershipState {
        self.sites[site_index].state
    }

    /// May the broker lease or dispatch onto this site right now?
    #[must_use]
    pub fn is_schedulable(&self, site_index: usize) -> bool {
        self.sites[site_index].state.is_schedulable()
    }

    /// The site's publication arrived on this refresh tick. The
    /// publication is the site's own heartbeat, so it amnesties *both*
    /// streaks: a site declared unhealthy purely by failed queries would
    /// otherwise never rehabilitate once the broker stops probing it.
    /// (The converse does not hold — a query success proves only the
    /// broker→gatekeeper path and clears only the query streak.)
    pub fn note_refresh_ok(&mut self, site_index: usize, now: SimTime) -> Option<Transition> {
        self.sites[site_index].missed_refreshes = 0;
        self.sites[site_index].failed_queries = 0;
        self.recover(site_index, now, true)
    }

    /// The site's publication path was down on this refresh tick.
    pub fn note_refresh_missed(&mut self, site_index: usize, now: SimTime) -> Option<Transition> {
        let m = &mut self.sites[site_index];
        m.missed_refreshes = m.missed_refreshes.saturating_add(1);
        self.degrade(site_index, now)
    }

    /// A live status query to the site completed cleanly.
    pub fn note_query_ok(&mut self, site_index: usize, now: SimTime) -> Option<Transition> {
        self.sites[site_index].failed_queries = 0;
        self.recover(site_index, now, false)
    }

    /// A live status query to the site errored or timed out.
    pub fn note_query_failure(&mut self, site_index: usize, now: SimTime) -> Option<Transition> {
        let m = &mut self.sites[site_index];
        m.failed_queries = m.failed_queries.saturating_add(1);
        self.degrade(site_index, now)
    }

    /// Crash recovery: seeds a site's detector state directly, bypassing
    /// the observation counters (which died with the broker). An
    /// unhealthy state gets `down_since = now`; counters start clean, so
    /// an ongoing outage re-accumulates evidence while an ended one
    /// rejoins on the next clean observation.
    pub fn restore(&mut self, site_index: usize, state: MembershipState, now: SimTime) {
        let m = &mut self.sites[site_index];
        m.state = state;
        m.missed_refreshes = 0;
        m.failed_queries = 0;
        m.probation = 0;
        m.down_since = if state.is_schedulable() {
            None
        } else {
            Some(now)
        };
    }

    /// Applies the degradation thresholds after a bad observation.
    fn degrade(&mut self, site_index: usize, now: SimTime) -> Option<Transition> {
        let cfg = self.config;
        let m = &mut self.sites[site_index];
        let dead = m.missed_refreshes >= cfg.dead_after_missed_refreshes
            || m.failed_queries >= cfg.dead_after_failed_queries;
        let suspect = m.missed_refreshes >= cfg.suspect_after_missed_refreshes
            || m.failed_queries >= cfg.suspect_after_failed_queries;
        if dead && m.state != MembershipState::Dead {
            m.down_since.get_or_insert(now);
            m.state = MembershipState::Dead;
            return Some(Transition::Died);
        }
        if suspect && m.state.is_schedulable() {
            m.down_since.get_or_insert(now);
            m.state = MembershipState::Suspect;
            return Some(Transition::Suspected {
                missed_refreshes: m.missed_refreshes,
                failed_queries: m.failed_queries,
            });
        }
        None
    }

    /// Applies the recovery edges after a clean observation.
    /// `refresh` marks refresh-driven observations, the only ones that
    /// advance rejoin probation (query successes prove the gatekeeper
    /// path, but membership is confirmed by the publication cycle).
    fn recover(&mut self, site_index: usize, now: SimTime, refresh: bool) -> Option<Transition> {
        let cfg = self.config;
        let m = &mut self.sites[site_index];
        match m.state {
            MembershipState::Joining => {
                m.state = MembershipState::Alive;
                Some(Transition::Joined)
            }
            MembershipState::Suspect | MembershipState::Dead
                if m.missed_refreshes < cfg.suspect_after_missed_refreshes
                    && m.failed_queries < cfg.suspect_after_failed_queries =>
            {
                m.state = MembershipState::Rejoined;
                m.probation = 0;
                Some(Transition::Rejoined {
                    down_since: m.down_since.take().unwrap_or(now),
                })
            }
            MembershipState::Rejoined if refresh => {
                m.probation = m.probation.saturating_add(1);
                if m.probation >= cfg.rejoin_probation_refreshes {
                    m.state = MembershipState::Alive;
                    Some(Transition::Stabilized)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn table() -> MembershipTable {
        MembershipTable::new(2, MembershipConfig::default())
    }

    #[test]
    fn joining_promotes_on_first_clean_observation() {
        let mut m = table();
        assert_eq!(m.state(0), MembershipState::Joining);
        assert!(m.is_schedulable(0), "bootstrap is optimistic");
        assert_eq!(m.note_refresh_ok(0, t(300)), Some(Transition::Joined));
        assert_eq!(m.state(0), MembershipState::Alive);
        // A query success promotes too (it is a clean observation).
        assert_eq!(m.note_query_ok(1, t(10)), Some(Transition::Joined));
    }

    #[test]
    fn missed_refreshes_walk_alive_to_suspect_to_dead() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        assert_eq!(m.note_refresh_missed(0, t(300)), None);
        assert_eq!(
            m.note_refresh_missed(0, t(600)),
            Some(Transition::Suspected {
                missed_refreshes: 2,
                failed_queries: 0
            })
        );
        assert!(!m.is_schedulable(0));
        assert_eq!(m.note_refresh_missed(0, t(900)), None, "still suspect");
        assert_eq!(m.note_refresh_missed(0, t(1200)), Some(Transition::Died));
        assert_eq!(m.state(0), MembershipState::Dead);
        assert_eq!(m.note_refresh_missed(0, t(1500)), None, "dead is sticky");
    }

    #[test]
    fn failed_queries_suspect_and_kill_on_their_own_thresholds() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        assert_eq!(m.note_query_failure(0, t(1)), None);
        assert_eq!(m.note_query_failure(0, t(2)), None);
        assert!(matches!(
            m.note_query_failure(0, t(3)),
            Some(Transition::Suspected {
                failed_queries: 3,
                ..
            })
        ));
        for i in 4..6 {
            assert_eq!(m.note_query_failure(0, t(i)), None);
        }
        assert_eq!(m.note_query_failure(0, t(6)), Some(Transition::Died));
    }

    #[test]
    fn rejoin_runs_probation_before_alive() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        m.note_refresh_missed(0, t(300));
        m.note_refresh_missed(0, t(600)); // -> Suspect at 600
        assert_eq!(
            m.note_refresh_ok(0, t(900)),
            Some(Transition::Rejoined { down_since: t(600) })
        );
        assert_eq!(m.state(0), MembershipState::Rejoined);
        assert!(m.is_schedulable(0), "probation is schedulable");
        assert_eq!(m.note_refresh_ok(0, t(1200)), None, "one clean refresh");
        assert_eq!(m.note_refresh_ok(0, t(1500)), Some(Transition::Stabilized));
        assert_eq!(m.state(0), MembershipState::Alive);
    }

    #[test]
    fn query_success_rejoins_but_does_not_advance_probation() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        for i in 0..6 {
            m.note_query_failure(0, t(i));
        }
        assert_eq!(m.state(0), MembershipState::Dead);
        assert!(matches!(
            m.note_query_ok(0, t(10)),
            Some(Transition::Rejoined { .. })
        ));
        // Query successes alone never finish probation.
        for i in 11..20 {
            assert_eq!(m.note_query_ok(0, t(i)), None);
        }
        assert_eq!(m.state(0), MembershipState::Rejoined);
    }

    #[test]
    fn a_flapping_site_relapses_from_rejoined_without_reaching_alive() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        m.note_refresh_missed(0, t(300));
        m.note_refresh_missed(0, t(600)); // Suspect
        m.note_refresh_ok(0, t(900)); // Rejoined
        m.note_refresh_missed(0, t(1200));
        assert!(matches!(
            m.note_refresh_missed(0, t(1500)),
            Some(Transition::Suspected { .. })
        ));
        assert_eq!(m.state(0), MembershipState::Suspect);
    }

    #[test]
    fn rejoin_requires_the_other_counter_to_be_healthy_too() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        // Suspect via queries, while refreshes also start missing.
        for i in 0..3 {
            m.note_query_failure(0, t(i));
        }
        m.note_refresh_missed(0, t(300));
        m.note_refresh_missed(0, t(600));
        // A query success resets the query streak, but the refresh streak
        // is still past threshold: no rejoin yet.
        assert_eq!(m.note_query_ok(0, t(700)), None);
        assert_eq!(m.state(0), MembershipState::Suspect);
        // A clean refresh clears the remaining streak and rejoins.
        assert!(matches!(
            m.note_refresh_ok(0, t(900)),
            Some(Transition::Rejoined { .. })
        ));
    }

    #[test]
    fn a_clean_refresh_amnesties_a_query_killed_site() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        for i in 0..6 {
            m.note_query_failure(0, t(i));
        }
        assert_eq!(m.state(0), MembershipState::Dead);
        // No more queries reach a dead site, but its publications resume:
        // the heartbeat clears the query streak and rejoins it.
        assert!(matches!(
            m.note_refresh_ok(0, t(300)),
            Some(Transition::Rejoined { .. })
        ));
    }

    #[test]
    fn down_since_survives_the_suspect_to_dead_walk() {
        let mut m = table();
        m.note_refresh_ok(0, t(0));
        m.note_refresh_missed(0, t(300));
        m.note_refresh_missed(0, t(600)); // Suspect at 600
        m.note_refresh_missed(0, t(900));
        m.note_refresh_missed(0, t(1200)); // Dead
        assert_eq!(
            m.note_refresh_ok(0, t(1500)),
            Some(Transition::Rejoined { down_since: t(600) }),
            "the outage began at first suspicion, not at death"
        );
    }
}
