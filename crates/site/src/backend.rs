//! Pluggable execution backends — the abstraction over "the thing that runs
//! jobs at a site".
//!
//! The paper's broker drives exactly one kind of local resource manager (a
//! PBS-like batch scheduler, modelled by [`Lrms`]). Real brokers dispatch to
//! heterogeneous execution services — Venugopal et al.'s Gridbus broker
//! abstracts the middleware interface for exactly this reason. The
//! [`Backend`] trait is that seam: the gatekeeper, the MDS publisher and the
//! broker's dispatch/reconciliation paths all speak to a [`BackendHandle`]
//! and never name a concrete executor.
//!
//! Three implementations ship:
//!
//! * the sim [`Lrms`] itself (the default — bit-identical to the
//!   pre-refactor behavior, since it *is* the pre-refactor type);
//! * [`ThreadPoolBackend`] — an in-process pool of real worker threads that
//!   execute a task per started job, with real elapsed time observed only
//!   through the [`cg_console::mono_ns`] chokepoint;
//! * [`ProcessBackend`] — an external-process runner that spawns and reaps a
//!   real child process per started job.
//!
//! **The sim-time bridging rule** (DESIGN §7k): every backend delegates all
//! *sim-visible* scheduling — queueing, dispatch latency, node accounting,
//! lifecycle events, terminal dispositions — to the deterministic [`Lrms`]
//! core. Real execution (threads, processes) rides *alongside* the sim and
//! reports only into backend-local counters ([`RealExecStats`]), read via
//! `mono_ns()` so deterministic harnesses can inject a fake clock. Nothing a
//! real executor does may influence event order, job outcomes or stats seen
//! by the sim: same seed, same schedule, on any machine, under any backend.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use cg_console::mono_ns;
use cg_sim::{Sim, SimDuration};
use serde::{Deserialize, Serialize};

use crate::lrms::{LocalDisposition, LocalJobId, LocalJobSpec, Lrms, LrmsEvent, LrmsStats, Policy};

/// Shared lifecycle callback handed to [`Backend::submit_rc`]: observes every
/// [`LrmsEvent`] for the submitted job, exactly as [`Lrms::submit`]'s
/// callback does.
pub type BackendCallback = Rc<dyn Fn(&mut Sim, LocalJobId, &LrmsEvent)>;

/// Which concrete executor sits behind a [`BackendHandle`]. Recorded on
/// dispatch trace events so replays know what ran the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The simulated batch scheduler ([`Lrms`]) — the default.
    SimLrms,
    /// In-process thread-pool executor ([`ThreadPoolBackend`]).
    ThreadPool,
    /// External-process runner ([`ProcessBackend`]).
    Process,
}

impl BackendKind {
    /// Stable label used in trace events and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::SimLrms => "sim-lrms",
            BackendKind::ThreadPool => "thread-pool",
            BackendKind::Process => "process",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed construction failure for backends (and [`Lrms::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// A backend over zero worker nodes can never dispatch anything; the
    /// old `Lrms::new` wedged silently on this.
    ZeroNodes,
    /// A thread-pool backend with zero executor threads.
    ZeroThreads,
    /// A process backend with an empty program path.
    EmptyProgram,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::ZeroNodes => f.write_str("backend configured with zero worker nodes"),
            BackendError::ZeroThreads => {
                f.write_str("thread-pool backend configured with zero executor threads")
            }
            BackendError::EmptyProgram => {
                f.write_str("process backend configured with an empty program path")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Declarative backend choice, carried by `SiteConfig` and `BrokerConfig`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendSpec {
    /// The simulated LRMS (default).
    #[default]
    Sim,
    /// In-process thread pool with `threads` real workers.
    ThreadPool {
        /// Number of executor threads (must be ≥ 1).
        threads: usize,
    },
    /// External-process runner spawning `program` once per started job.
    Process {
        /// Program to spawn (argument-less; must be non-empty).
        program: String,
    },
}

impl BackendSpec {
    /// The kind this spec builds.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendSpec::Sim => BackendKind::SimLrms,
            BackendSpec::ThreadPool { .. } => BackendKind::ThreadPool,
            BackendSpec::Process { .. } => BackendKind::Process,
        }
    }

    /// Builds the backend over `nodes` worker nodes.
    ///
    /// # Errors
    /// Returns a [`BackendError`] when the spec is structurally invalid
    /// (zero nodes, zero threads, empty program).
    pub fn build(
        &self,
        policy: Policy,
        nodes: usize,
        dispatch_latency: SimDuration,
        disposition_retention: usize,
    ) -> Result<BackendHandle, BackendError> {
        let handle = match self {
            BackendSpec::Sim => {
                BackendHandle::from(Lrms::try_new(policy, nodes, dispatch_latency)?)
            }
            BackendSpec::ThreadPool { threads } => BackendHandle::from(ThreadPoolBackend::new(
                policy,
                nodes,
                dispatch_latency,
                *threads,
            )?),
            BackendSpec::Process { program } => BackendHandle::from(ProcessBackend::new(
                policy,
                nodes,
                dispatch_latency,
                program.clone(),
            )?),
        };
        handle.set_disposition_retention(disposition_retention);
        Ok(handle)
    }
}

/// Counters a real executor accumulates *outside* the sim: how many real
/// tasks/processes it launched, finished and failed to launch, and the real
/// nanoseconds they took as observed through `mono_ns()`. Purely
/// informational — by the sim-time bridging rule these never feed back into
/// scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealExecStats {
    /// Real tasks (threads) or processes launched.
    pub launched: u64,
    /// Real tasks/processes that ran and were reaped.
    pub completed: u64,
    /// Launch attempts that failed (spawn error, pool gone).
    pub failed: u64,
    /// Total real execution time, nanoseconds via `mono_ns()`.
    pub real_ns: u64,
}

/// The execution-backend contract. Semantics mirror [`Lrms`] exactly; the
/// conformance suite (`tests/backend_conformance.rs`) holds every
/// implementation to it:
///
/// 1. `Queued` is always the first event, dispatch applies
///    `dispatch_latency` before `Started` (dispatch-latency ordering);
/// 2. killing a queued job delivers `Killed` without ever `Started`;
/// 3. terminal [`LocalDisposition`]s are retained (up to the configured cap)
///    for rejoin reconciliation to poll;
/// 4. [`Backend::accepts_queued_jobs`] reflects the bounded-queue admission
///    rule the broker's co-allocation path consults;
/// 5. same seed ⇒ same event schedule, regardless of real execution.
pub trait Backend {
    /// Which concrete executor this is.
    fn kind(&self) -> BackendKind;

    /// Submits a job; `callback` observes every lifecycle event. See
    /// [`Lrms::submit`].
    fn submit_rc(&self, sim: &mut Sim, spec: LocalJobSpec, callback: BackendCallback)
        -> LocalJobId;

    /// Ends a running job early with `Finished`. See [`Lrms::complete`].
    fn complete(&self, sim: &mut Sim, id: LocalJobId);

    /// Kills a queued or running job. Returns whether the job was known.
    fn kill(&self, sim: &mut Sim, id: LocalJobId, reason: &str) -> bool;

    /// Status poll: where the job is now, or how it ended. See
    /// [`Lrms::disposition`].
    fn disposition(&self, id: LocalJobId) -> Option<LocalDisposition>;

    /// Free nodes right now.
    fn free_nodes(&self) -> usize;

    /// Total nodes.
    fn total_nodes(&self) -> usize;

    /// Jobs waiting in the queue.
    fn queue_depth(&self) -> usize;

    /// Jobs currently running.
    fn running_count(&self) -> usize;

    /// Jobs inside the dispatch-latency window (off the queue, not yet
    /// started) — see [`Lrms::dispatching_count`].
    fn dispatching_count(&self) -> usize;

    /// Whether the queue has room by the site's admission policy.
    fn accepts_queued_jobs(&self) -> bool;

    /// Scheduler metrics so far.
    fn stats(&self) -> LrmsStats;

    /// Routes lifecycle transitions into `log`, labelled with `site`.
    fn set_trace(&self, log: cg_trace::EventLog, site: String);

    /// Caps how many terminal dispositions are retained for status polls.
    fn set_disposition_retention(&self, cap: usize);

    /// Real-execution counters. Zero for purely simulated backends.
    fn real_exec(&self) -> RealExecStats {
        RealExecStats::default()
    }

    /// Blocks until all real execution launched so far has completed. A
    /// no-op for backends without asynchronous real work.
    fn quiesce(&self) {}
}

/// A cloneable, type-erased backend. Clones share the underlying executor.
///
/// The inherent methods mirror [`Lrms`]'s API one-for-one so code written
/// against `site.lrms()` keeps compiling unchanged against any backend.
#[derive(Clone)]
pub struct BackendHandle {
    inner: Rc<dyn Backend>,
}

impl BackendHandle {
    /// Wraps a concrete backend.
    pub fn new(backend: impl Backend + 'static) -> Self {
        BackendHandle {
            inner: Rc::new(backend),
        }
    }

    /// Which concrete executor this handle drives.
    pub fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    /// Submits a job; `callback` observes every lifecycle event.
    pub fn submit(
        &self,
        sim: &mut Sim,
        spec: LocalJobSpec,
        callback: impl Fn(&mut Sim, LocalJobId, &LrmsEvent) + 'static,
    ) -> LocalJobId {
        self.inner.submit_rc(sim, spec, Rc::new(callback))
    }

    /// Submits with an already-shared callback.
    pub fn submit_rc(
        &self,
        sim: &mut Sim,
        spec: LocalJobSpec,
        callback: BackendCallback,
    ) -> LocalJobId {
        self.inner.submit_rc(sim, spec, callback)
    }

    /// Ends a running job early with `Finished`.
    pub fn complete(&self, sim: &mut Sim, id: LocalJobId) {
        self.inner.complete(sim, id);
    }

    /// Kills a queued or running job. Returns whether the job was known.
    pub fn kill(&self, sim: &mut Sim, id: LocalJobId, reason: impl Into<String>) -> bool {
        self.inner.kill(sim, id, &reason.into())
    }

    /// Status poll: where the job is now, or how it ended.
    pub fn disposition(&self, id: LocalJobId) -> Option<LocalDisposition> {
        self.inner.disposition(id)
    }

    /// Free nodes right now.
    pub fn free_nodes(&self) -> usize {
        self.inner.free_nodes()
    }

    /// Total nodes.
    pub fn total_nodes(&self) -> usize {
        self.inner.total_nodes()
    }

    /// Jobs waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }

    /// Jobs currently running.
    pub fn running_count(&self) -> usize {
        self.inner.running_count()
    }

    /// Jobs inside the dispatch-latency window.
    pub fn dispatching_count(&self) -> usize {
        self.inner.dispatching_count()
    }

    /// Whether the queue has room by the site's admission policy.
    pub fn accepts_queued_jobs(&self) -> bool {
        self.inner.accepts_queued_jobs()
    }

    /// Scheduler metrics so far.
    pub fn stats(&self) -> LrmsStats {
        self.inner.stats()
    }

    /// Routes lifecycle transitions into `log`, labelled with `site`.
    pub fn set_trace(&self, log: cg_trace::EventLog, site: impl Into<String>) {
        self.inner.set_trace(log, site.into());
    }

    /// Caps how many terminal dispositions are retained for status polls.
    pub fn set_disposition_retention(&self, cap: usize) {
        self.inner.set_disposition_retention(cap);
    }

    /// Real-execution counters (zero for the sim backend).
    pub fn real_exec(&self) -> RealExecStats {
        self.inner.real_exec()
    }

    /// Blocks until all real execution launched so far has completed.
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }
}

impl std::fmt::Debug for BackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendHandle")
            .field("kind", &self.kind())
            .field("nodes", &self.total_nodes())
            .field("queued", &self.queue_depth())
            .field("running", &self.running_count())
            .finish()
    }
}

impl From<Lrms> for BackendHandle {
    fn from(lrms: Lrms) -> Self {
        BackendHandle::new(lrms)
    }
}

impl From<ThreadPoolBackend> for BackendHandle {
    fn from(b: ThreadPoolBackend) -> Self {
        BackendHandle::new(b)
    }
}

impl From<ProcessBackend> for BackendHandle {
    fn from(b: ProcessBackend) -> Self {
        BackendHandle::new(b)
    }
}

impl Backend for Lrms {
    fn kind(&self) -> BackendKind {
        BackendKind::SimLrms
    }

    fn submit_rc(
        &self,
        sim: &mut Sim,
        spec: LocalJobSpec,
        callback: BackendCallback,
    ) -> LocalJobId {
        Lrms::submit_rc(self, sim, spec, callback)
    }

    fn complete(&self, sim: &mut Sim, id: LocalJobId) {
        Lrms::complete(self, sim, id);
    }

    fn kill(&self, sim: &mut Sim, id: LocalJobId, reason: &str) -> bool {
        Lrms::kill(self, sim, id, reason)
    }

    fn disposition(&self, id: LocalJobId) -> Option<LocalDisposition> {
        Lrms::disposition(self, id)
    }

    fn free_nodes(&self) -> usize {
        Lrms::free_nodes(self)
    }

    fn total_nodes(&self) -> usize {
        Lrms::total_nodes(self)
    }

    fn queue_depth(&self) -> usize {
        Lrms::queue_depth(self)
    }

    fn running_count(&self) -> usize {
        Lrms::running_count(self)
    }

    fn dispatching_count(&self) -> usize {
        Lrms::dispatching_count(self)
    }

    fn accepts_queued_jobs(&self) -> bool {
        Lrms::accepts_queued_jobs(self)
    }

    fn stats(&self) -> LrmsStats {
        Lrms::stats(self)
    }

    fn set_trace(&self, log: cg_trace::EventLog, site: String) {
        Lrms::set_trace(self, log, site);
    }

    fn set_disposition_retention(&self, cap: usize) {
        Lrms::set_disposition_retention(self, cap);
    }
}

// ── Thread-pool backend ─────────────────────────────────────────────────

/// Counters shared with the worker threads.
#[derive(Default)]
struct PoolCounters {
    launched: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    real_ns: AtomicU64,
}

enum PoolMsg {
    Run(u64),
    Shutdown,
}

/// N real worker threads fed through an mpsc channel.
struct WorkerPool {
    tx: mpsc::Sender<PoolMsg>,
    handles: RefCell<Vec<std::thread::JoinHandle<()>>>,
    counters: Arc<PoolCounters>,
    threads: usize,
}

impl WorkerPool {
    fn spawn(threads: usize) -> Self {
        let (tx, rx) = mpsc::channel::<PoolMsg>();
        let rx = Arc::new(Mutex::new(rx));
        let counters = Arc::new(PoolCounters::default());
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = Arc::clone(&rx);
            let counters = Arc::clone(&counters);
            handles.push(std::thread::spawn(move || loop {
                let msg = {
                    let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard.recv()
                };
                match msg {
                    Ok(PoolMsg::Run(job)) => {
                        let t0 = mono_ns();
                        // The "payload": a trivially real computation the
                        // optimizer cannot delete. What matters is that a
                        // real thread ran it and real time elapsed.
                        std::hint::black_box(job.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let dt = mono_ns().saturating_sub(t0);
                        counters.real_ns.fetch_add(dt, Ordering::Relaxed);
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(PoolMsg::Shutdown) | Err(_) => break,
                }
            }));
        }
        WorkerPool {
            tx,
            handles: RefCell::new(handles),
            counters,
            threads,
        }
    }

    fn launch(&self, job: u64) {
        self.counters.launched.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(PoolMsg::Run(job)).is_err() {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> RealExecStats {
        RealExecStats {
            launched: self.counters.launched.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            real_ns: self.counters.real_ns.load(Ordering::Relaxed),
        }
    }

    fn quiesce(&self) {
        loop {
            let s = self.snapshot();
            if s.completed + s.failed >= s.launched {
                return;
            }
            std::thread::yield_now();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for _ in 0..self.threads {
            let _ = self.tx.send(PoolMsg::Shutdown);
        }
        for h in self.handles.borrow_mut().drain(..) {
            let _ = h.join();
        }
    }
}

/// In-process thread-pool executor.
///
/// All sim-visible scheduling delegates to a deterministic [`Lrms`] core;
/// each `Started` event additionally launches a real task on one of the
/// pool's worker threads. Real elapsed time is observed exclusively through
/// [`cg_console::mono_ns`] and lands in [`RealExecStats`] — never in the
/// sim (the sim-time bridging rule).
pub struct ThreadPoolBackend {
    core: Lrms,
    pool: Rc<WorkerPool>,
}

impl ThreadPoolBackend {
    /// Builds the backend with `threads` real executor threads.
    ///
    /// # Errors
    /// [`BackendError::ZeroNodes`] / [`BackendError::ZeroThreads`] on
    /// structurally useless configurations.
    pub fn new(
        policy: Policy,
        nodes: usize,
        dispatch_latency: SimDuration,
        threads: usize,
    ) -> Result<Self, BackendError> {
        if threads == 0 {
            return Err(BackendError::ZeroThreads);
        }
        Ok(ThreadPoolBackend {
            core: Lrms::try_new(policy, nodes, dispatch_latency)?,
            pool: Rc::new(WorkerPool::spawn(threads)),
        })
    }
}

impl Backend for ThreadPoolBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::ThreadPool
    }

    fn submit_rc(
        &self,
        sim: &mut Sim,
        spec: LocalJobSpec,
        callback: BackendCallback,
    ) -> LocalJobId {
        let pool = Rc::clone(&self.pool);
        self.core.submit_rc(
            sim,
            spec,
            Rc::new(move |sim, id, ev| {
                if matches!(ev, LrmsEvent::Started { .. }) {
                    pool.launch(id.0);
                }
                callback(sim, id, ev);
            }),
        )
    }

    fn complete(&self, sim: &mut Sim, id: LocalJobId) {
        self.core.complete(sim, id);
    }

    fn kill(&self, sim: &mut Sim, id: LocalJobId, reason: &str) -> bool {
        self.core.kill(sim, id, reason)
    }

    fn disposition(&self, id: LocalJobId) -> Option<LocalDisposition> {
        self.core.disposition(id)
    }

    fn free_nodes(&self) -> usize {
        self.core.free_nodes()
    }

    fn total_nodes(&self) -> usize {
        self.core.total_nodes()
    }

    fn queue_depth(&self) -> usize {
        self.core.queue_depth()
    }

    fn running_count(&self) -> usize {
        self.core.running_count()
    }

    fn dispatching_count(&self) -> usize {
        self.core.dispatching_count()
    }

    fn accepts_queued_jobs(&self) -> bool {
        self.core.accepts_queued_jobs()
    }

    fn stats(&self) -> LrmsStats {
        self.core.stats()
    }

    fn set_trace(&self, log: cg_trace::EventLog, site: String) {
        self.core.set_trace(log, site);
    }

    fn set_disposition_retention(&self, cap: usize) {
        self.core.set_disposition_retention(cap);
    }

    fn real_exec(&self) -> RealExecStats {
        self.pool.snapshot()
    }

    fn quiesce(&self) {
        self.pool.quiesce();
    }
}

// ── External-process backend ────────────────────────────────────────────

struct LiveChild {
    job: u64,
    child: std::process::Child,
    spawned_ns: u64,
}

/// Spawns and reaps one real child process per started job. Sim-side only —
/// no extra threads — so plain `Cell`/`RefCell` state suffices.
struct ProcessRunner {
    program: String,
    children: RefCell<Vec<LiveChild>>,
    spawned: Cell<u64>,
    reaped: Cell<u64>,
    failed: Cell<u64>,
    real_ns: Cell<u64>,
}

impl ProcessRunner {
    fn spawn_for(&self, job: u64) {
        let spawned_ns = mono_ns();
        match std::process::Command::new(&self.program)
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
        {
            Ok(child) => {
                self.spawned.set(self.spawned.get() + 1);
                self.children.borrow_mut().push(LiveChild {
                    job,
                    child,
                    spawned_ns,
                });
            }
            Err(_) => self.failed.set(self.failed.get() + 1),
        }
    }

    fn reap(&self, job: u64) {
        let live = {
            let mut children = self.children.borrow_mut();
            children
                .iter()
                .position(|c| c.job == job)
                .map(|at| children.swap_remove(at))
        };
        if let Some(mut live) = live {
            let _ = live.child.kill();
            let _ = live.child.wait();
            self.reaped.set(self.reaped.get() + 1);
            self.real_ns
                .set(self.real_ns.get() + mono_ns().saturating_sub(live.spawned_ns));
        }
    }

    fn snapshot(&self) -> RealExecStats {
        RealExecStats {
            launched: self.spawned.get() + self.failed.get(),
            completed: self.reaped.get(),
            failed: self.failed.get(),
            real_ns: self.real_ns.get(),
        }
    }
}

impl Drop for ProcessRunner {
    fn drop(&mut self) {
        for live in self.children.get_mut().drain(..) {
            let mut child = live.child;
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// External-process runner.
///
/// Delegates all sim-visible scheduling to a deterministic [`Lrms`] core;
/// each `Started` event additionally spawns `program` as a real child
/// process, reaped when the sim delivers the job's terminal event (or at
/// drop). Dispositions come from the core's recorded terminal outcomes, so
/// the backend stays deterministic under the sim governor even though the
/// child's real lifetime is arbitrary.
pub struct ProcessBackend {
    core: Lrms,
    runner: Rc<ProcessRunner>,
}

impl ProcessBackend {
    /// Builds the backend; `program` is spawned once per started job.
    ///
    /// # Errors
    /// [`BackendError::ZeroNodes`] / [`BackendError::EmptyProgram`] on
    /// structurally useless configurations.
    pub fn new(
        policy: Policy,
        nodes: usize,
        dispatch_latency: SimDuration,
        program: String,
    ) -> Result<Self, BackendError> {
        if program.is_empty() {
            return Err(BackendError::EmptyProgram);
        }
        Ok(ProcessBackend {
            core: Lrms::try_new(policy, nodes, dispatch_latency)?,
            runner: Rc::new(ProcessRunner {
                program,
                children: RefCell::new(Vec::new()),
                spawned: Cell::new(0),
                reaped: Cell::new(0),
                failed: Cell::new(0),
                real_ns: Cell::new(0),
            }),
        })
    }

    /// The default real program: exits immediately, exists everywhere.
    pub fn default_program() -> String {
        "true".to_string()
    }
}

impl Backend for ProcessBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Process
    }

    fn submit_rc(
        &self,
        sim: &mut Sim,
        spec: LocalJobSpec,
        callback: BackendCallback,
    ) -> LocalJobId {
        let runner = Rc::clone(&self.runner);
        self.core.submit_rc(
            sim,
            spec,
            Rc::new(move |sim, id, ev| {
                match ev {
                    LrmsEvent::Started { .. } => runner.spawn_for(id.0),
                    LrmsEvent::Finished | LrmsEvent::Killed { .. } => runner.reap(id.0),
                    LrmsEvent::Queued => {}
                }
                callback(sim, id, ev);
            }),
        )
    }

    fn complete(&self, sim: &mut Sim, id: LocalJobId) {
        self.core.complete(sim, id);
    }

    fn kill(&self, sim: &mut Sim, id: LocalJobId, reason: &str) -> bool {
        self.core.kill(sim, id, reason)
    }

    fn disposition(&self, id: LocalJobId) -> Option<LocalDisposition> {
        self.core.disposition(id)
    }

    fn free_nodes(&self) -> usize {
        self.core.free_nodes()
    }

    fn total_nodes(&self) -> usize {
        self.core.total_nodes()
    }

    fn queue_depth(&self) -> usize {
        self.core.queue_depth()
    }

    fn running_count(&self) -> usize {
        self.core.running_count()
    }

    fn dispatching_count(&self) -> usize {
        self.core.dispatching_count()
    }

    fn accepts_queued_jobs(&self) -> bool {
        self.core.accepts_queued_jobs()
    }

    fn stats(&self) -> LrmsStats {
        self.core.stats()
    }

    fn set_trace(&self, log: cg_trace::EventLog, site: String) {
        self.core.set_trace(log, site);
    }

    fn set_disposition_retention(&self, cap: usize) {
        self.core.set_disposition_retention(cap);
    }

    fn real_exec(&self) -> RealExecStats {
        self.runner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_sim::SimTime;

    fn drive_one(handle: &BackendHandle) -> (LocalJobId, Vec<String>) {
        let mut sim = Sim::new(1);
        let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = Rc::clone(&log);
        let id = handle.submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(5)),
            move |_, _, ev| {
                log2.borrow_mut().push(match ev {
                    LrmsEvent::Queued => "queued".into(),
                    LrmsEvent::Started { .. } => "started".into(),
                    LrmsEvent::Finished => "finished".into(),
                    LrmsEvent::Killed { reason } => format!("killed:{reason}"),
                });
            },
        );
        sim.run();
        let out = log.borrow().clone();
        (id, out)
    }

    #[test]
    fn thread_pool_runs_real_tasks_without_touching_sim_outcomes() {
        let backend =
            ThreadPoolBackend::new(Policy::Fifo, 2, SimDuration::ZERO, 2).expect("valid config");
        let handle = BackendHandle::from(backend);
        let (id, events) = drive_one(&handle);
        assert_eq!(events, ["queued", "started", "finished"]);
        assert_eq!(handle.disposition(id), Some(LocalDisposition::Finished));
        handle.quiesce();
        let real = handle.real_exec();
        assert_eq!(real.launched, 1);
        assert_eq!(real.completed, 1);
    }

    #[test]
    fn process_backend_spawns_and_reaps() {
        let backend = ProcessBackend::new(
            Policy::Fifo,
            1,
            SimDuration::ZERO,
            ProcessBackend::default_program(),
        )
        .expect("valid config");
        let handle = BackendHandle::from(backend);
        let (id, events) = drive_one(&handle);
        assert_eq!(events, ["queued", "started", "finished"]);
        assert_eq!(handle.disposition(id), Some(LocalDisposition::Finished));
        let real = handle.real_exec();
        // Either the spawn worked and was reaped, or the environment lacks
        // the program — both leave sim outcomes (asserted above) intact.
        assert_eq!(real.launched, 1);
        assert_eq!(real.completed + real.failed, 1);
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        assert_eq!(
            ThreadPoolBackend::new(Policy::Fifo, 0, SimDuration::ZERO, 1).err(),
            Some(BackendError::ZeroNodes)
        );
        assert_eq!(
            ThreadPoolBackend::new(Policy::Fifo, 1, SimDuration::ZERO, 0).err(),
            Some(BackendError::ZeroThreads)
        );
        assert_eq!(
            ProcessBackend::new(Policy::Fifo, 1, SimDuration::ZERO, String::new()).err(),
            Some(BackendError::EmptyProgram)
        );
        assert_eq!(
            BackendSpec::Sim
                .build(Policy::Fifo, 0, SimDuration::ZERO, 16)
                .err(),
            Some(BackendError::ZeroNodes)
        );
    }

    #[test]
    fn same_seed_same_schedule_across_backends() {
        // The deterministic core drives all sim-visible behavior: every
        // backend must produce the identical event sequence and timings.
        let spec_for = |spec: &BackendSpec| {
            spec.build(Policy::FifoBackfill, 2, SimDuration::from_millis(1_500), 64)
                .expect("valid")
        };
        let run = |handle: &BackendHandle| {
            let mut sim = Sim::new(7);
            let log: Rc<RefCell<Vec<(u64, String, u64)>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..6u64 {
                let log2 = Rc::clone(&log);
                let spec = LocalJobSpec {
                    nodes: 1 + u32::try_from(i % 2).expect("small"),
                    runtime: Some(SimDuration::from_secs(3 + i)),
                    walltime: None,
                    priority: 0,
                    user: "conf".into(),
                };
                handle.submit(&mut sim, spec, move |sim, id, ev| {
                    let tag = match ev {
                        LrmsEvent::Queued => "q",
                        LrmsEvent::Started { .. } => "s",
                        LrmsEvent::Finished => "f",
                        LrmsEvent::Killed { .. } => "k",
                    };
                    log2.borrow_mut()
                        .push((id.0, tag.into(), sim.now().as_nanos()));
                });
            }
            sim.run_until(SimTime::from_secs(2));
            // Kill one queued straggler mid-flight, then drain.
            let mut sim2 = sim;
            handle.kill(&mut sim2, LocalJobId(5), "conformance kill");
            sim2.run();
            let out = log.borrow().clone();
            out
        };
        let sim_events = run(&spec_for(&BackendSpec::Sim));
        let pool_events = run(&spec_for(&BackendSpec::ThreadPool { threads: 2 }));
        let proc_events = run(&spec_for(&BackendSpec::Process {
            program: ProcessBackend::default_program(),
        }));
        assert_eq!(sim_events, pool_events, "thread pool diverged from sim");
        assert_eq!(sim_events, proc_events, "process runner diverged from sim");
    }
}
