//! The information system — a Globus MDS (GRIS/GIIS) model.
//!
//! Each site publishes its state to the project index on a refresh interval,
//! so the index's answer is *stale* by up to that interval. That staleness is
//! why CrossBroker's resource selection "contacts each remote site
//! individually and gets the most updated information" after the initial
//! discovery (§6.1) — the two-step cost structure Table I's text reports
//! (discovery ≈ 0.5 s, selection ≈ 3 s for 20 sites).
//!
//! The index stores its view as an epoch-tagged columnar [`AdSnapshot`]:
//! each refresh advances the snapshot with per-site deltas (unchanged sites
//! share the previous `Arc<Ad>` and keep their epoch) and a query response
//! is an `Arc` clone of the snapshot as it stood *when the index serviced
//! the request* — never data that arrived while the reply was on the wire.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use cg_jdl::Ad;
use cg_net::{Dir, FaultSchedule, Link, NetError};
use cg_sim::{Sim, SimDuration, SimTime};

use crate::columns::AdSnapshot;
use crate::membership::{MembershipConfig, MembershipState, MembershipTable, Transition};
use crate::site::Site;

/// Callback invoked (after the index's own state settles) for every
/// membership transition, refresh-driven or reported. The broker hangs
/// its obituary/re-match logic here.
type MembershipObserver = Rc<dyn Fn(&mut Sim, usize, &Transition)>;

/// One site's entry in the index — the row-shaped compatibility view
/// derived from the columnar snapshot by [`InformationIndex::snapshot`].
#[derive(Debug, Clone)]
pub struct SiteRecord {
    /// Site name.
    pub site: String,
    /// The machine ad as of the last refresh (possibly stale).
    pub ad: Ad,
    /// When the entry was refreshed.
    pub published_at: SimTime,
}

struct Inner {
    sites: Vec<Site>,
    snapshot: Arc<AdSnapshot>,
    refreshed_at: SimTime,
    /// Per-site instant of the last publication that actually arrived;
    /// lags `refreshed_at` for sites whose publish path was down.
    published_at: Vec<SimTime>,
    refresh_interval: SimDuration,
    /// Index-side processing per query, seconds (LDAP search in 2006).
    query_cpu_s: f64,
    refreshes: u64,
    /// Outage windows on each site's GRIS→GIIS publication path; a site
    /// whose path is down at refresh time keeps its stale column and
    /// accrues a missed refresh. Shorter than `sites` means the rest
    /// publish cleanly.
    publish_faults: Vec<FaultSchedule>,
    membership: MembershipTable,
    observer: Option<MembershipObserver>,
}

/// The aggregated index (GIIS). Clones share state.
#[derive(Clone)]
pub struct InformationIndex {
    inner: Rc<RefCell<Inner>>,
}

impl InformationIndex {
    /// Builds the index over `sites` and starts the refresh cycle. The first
    /// snapshot is taken immediately; subsequent refreshes run every
    /// `refresh_interval`.
    pub fn start(sim: &mut Sim, sites: Vec<Site>, refresh_interval: SimDuration) -> Self {
        InformationIndex::start_with_faults(
            sim,
            sites,
            refresh_interval,
            Vec::new(),
            MembershipConfig::default(),
        )
    }

    /// Like [`InformationIndex::start`], but with per-site outage windows
    /// on the publication paths and explicit failure-detector thresholds.
    /// A site whose path is down when a refresh tick fires keeps its
    /// previous (stale) column, keeps its old per-site `published_at`,
    /// and accrues a missed refresh toward `Suspect`/`Dead`.
    pub fn start_with_faults(
        sim: &mut Sim,
        sites: Vec<Site>,
        refresh_interval: SimDuration,
        publish_faults: Vec<FaultSchedule>,
        membership: MembershipConfig,
    ) -> Self {
        let ads: Vec<Ad> = sites.iter().map(Site::machine_ad).collect();
        let n = sites.len();
        let index = InformationIndex {
            inner: Rc::new(RefCell::new(Inner {
                sites,
                snapshot: Arc::new(AdSnapshot::build(ads)),
                refreshed_at: sim.now(),
                published_at: vec![sim.now(); n],
                refresh_interval,
                query_cpu_s: 0.42,
                refreshes: 0,
                publish_faults,
                membership: MembershipTable::new(n, membership),
                observer: None,
            })),
        };
        index.schedule_refresh(sim);
        index
    }

    fn schedule_refresh(&self, sim: &mut Sim) {
        let this = self.clone();
        let interval = self.inner.borrow().refresh_interval;
        sim.schedule_in(interval, move |sim| {
            let transitions = {
                let mut inner = this.inner.borrow_mut();
                let now = sim.now();
                let mut transitions = Vec::new();
                // Each site publishes independently: a down path keeps the
                // stale column (same Arc, same epoch) and counts a miss.
                let fresh: Vec<Ad> = inner
                    .sites
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        if inner.publish_faults.get(i).is_some_and(|f| f.is_down(now)) {
                            inner.snapshot.ad(i).clone()
                        } else {
                            s.machine_ad()
                        }
                    })
                    .collect();
                for i in 0..inner.sites.len() {
                    let down = inner.publish_faults.get(i).is_some_and(|f| f.is_down(now));
                    let tr = if down {
                        inner.membership.note_refresh_missed(i, now)
                    } else {
                        inner.published_at[i] = now;
                        inner.membership.note_refresh_ok(i, now)
                    };
                    if let Some(tr) = tr {
                        transitions.push((i, tr));
                    }
                }
                // Incremental advance: only sites whose ad changed get a new
                // epoch; the rest share the previous snapshot's allocations.
                inner.snapshot = Arc::new(inner.snapshot.advance(fresh));
                inner.refreshed_at = now;
                inner.refreshes += 1;
                transitions
            };
            this.notify(sim, transitions);
            this.schedule_refresh(sim);
        });
    }

    /// Registers the single membership observer, replacing any previous
    /// one. Invoked once per transition, after the index's own state has
    /// settled, for both refresh-driven and reported observations.
    pub fn set_membership_observer(
        &self,
        observer: impl Fn(&mut Sim, usize, &Transition) + 'static,
    ) {
        self.inner.borrow_mut().observer = Some(Rc::new(observer));
    }

    /// Feeds a live-query outcome at `site_index` into the failure
    /// detector (`ok = false` covers both errored and timed-out RPCs) and
    /// notifies the observer of any resulting transition.
    pub fn report_query(&self, sim: &mut Sim, site_index: usize, ok: bool) {
        let transition = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            if ok {
                inner.membership.note_query_ok(site_index, now)
            } else {
                inner.membership.note_query_failure(site_index, now)
            }
        };
        if let Some(tr) = transition {
            self.notify(sim, vec![(site_index, tr)]);
        }
    }

    fn notify(&self, sim: &mut Sim, transitions: Vec<(usize, Transition)>) {
        if transitions.is_empty() {
            return;
        }
        let observer = self.inner.borrow().observer.clone();
        if let Some(observer) = observer {
            for (i, tr) in transitions {
                observer(sim, i, &tr);
            }
        }
    }

    /// The site's current membership state.
    pub fn membership_state(&self, site_index: usize) -> MembershipState {
        self.inner.borrow().membership.state(site_index)
    }

    /// Crash recovery: seeds a site's membership state (by name) from a
    /// journal fold. Unknown names are ignored; no transition is
    /// notified — restoration is bookkeeping, not an observation.
    pub fn restore_membership(&self, site: &str, state: MembershipState, now: SimTime) {
        let mut inner = self.inner.borrow_mut();
        if let Some(i) = inner.sites.iter().position(|s| s.name() == site) {
            inner.membership.restore(i, state, now);
        }
    }

    /// May the broker lease or dispatch onto this site right now?
    pub fn is_schedulable(&self, site_index: usize) -> bool {
        self.inner.borrow().membership.is_schedulable(site_index)
    }

    /// Instant of the site's last publication that actually arrived.
    pub fn published_at(&self, site_index: usize) -> SimTime {
        self.inner.borrow().published_at[site_index]
    }

    /// Age of the site's column at `now` — how stale matchmaking data for
    /// this site is. Zero right after a clean refresh; grows across
    /// missed publications.
    pub fn staleness(&self, site_index: usize, now: SimTime) -> SimDuration {
        now.saturating_since(self.inner.borrow().published_at[site_index])
    }

    /// When the last refresh cycle ran (whether or not every site's
    /// publication arrived).
    pub fn refreshed_at(&self) -> SimTime {
        self.inner.borrow().refreshed_at
    }

    /// Queries the index over `link` (the broker→MDS path). The response
    /// carries every site record; its size scales with the number of sites.
    ///
    /// The delivered snapshot is the index's state at *service time* — the
    /// instant the MDS finished processing the request and serialized its
    /// answer. A refresh that fires while the response is in flight is
    /// invisible to this query (the staleness model the module header
    /// documents), and `resp_bytes` is sized from that same snapshot.
    pub fn query(
        &self,
        sim: &mut Sim,
        link: &Link,
        on: impl FnOnce(&mut Sim, Result<Arc<AdSnapshot>, NetError>) + 'static,
    ) {
        let service = SimDuration::from_secs_f64(self.inner.borrow().query_cpu_s);
        let this = self.clone();
        let link2 = link.clone();
        link.send(sim, Dir::AToB, 250, move |sim, r| match r {
            Err(e) => on(sim, Err(e)),
            Ok(()) => {
                sim.schedule_in(service, move |sim| {
                    // Service completes here: snapshot what the MDS can
                    // actually serve, before the reply hits the wire.
                    let snap = Arc::clone(&this.inner.borrow().snapshot);
                    let resp_bytes = 300 + 900 * snap.len() as u64; // LDAP entries
                    link2.send(sim, Dir::BToA, resp_bytes, move |sim, r| match r {
                        Err(e) => on(sim, Err(e)),
                        Ok(()) => on(sim, Ok(snap)),
                    });
                });
            }
        });
    }

    /// Number of completed refresh cycles.
    pub fn refreshes(&self) -> u64 {
        self.inner.borrow().refreshes
    }

    /// The current columnar snapshot, without network cost — the shape
    /// matchmaking consumes directly. An `Arc` clone, not a table copy.
    pub fn snapshot_arc(&self) -> Arc<AdSnapshot> {
        Arc::clone(&self.inner.borrow().snapshot)
    }

    /// Current (possibly stale) records, without network cost — for tests
    /// and reports; clones each ad out of the columnar store.
    pub fn snapshot(&self) -> Vec<SiteRecord> {
        let inner = self.inner.borrow();
        inner
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| SiteRecord {
                site: s.name().to_string(),
                ad: inner.snapshot.ad(i).clone(),
                published_at: inner.published_at[i],
            })
            .collect()
    }

    /// The current records as an indexed ad list — the discovery-snapshot
    /// shape the map-based matchmaking path consumes (`filter_candidates`,
    /// and the parallel engine's `ParallelMatcher::new`). Site index `i` is
    /// the position in the index's site list, matching the broker's
    /// `SiteHandle` order.
    pub fn snapshot_ads(&self) -> Vec<(usize, Ad)> {
        self.inner.borrow().snapshot.indexed_ads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrms::{LocalJobSpec, Policy};
    use crate::site::{Site, SiteConfig};
    use cg_jdl::Value;
    use cg_net::LinkProfile;

    fn test_site(sim: &mut Sim, name: &str, nodes: usize) -> Site {
        let _ = sim;
        Site::new(SiteConfig {
            name: name.into(),
            nodes,
            policy: Policy::Fifo,
            ..SiteConfig::default()
        })
    }

    #[test]
    fn index_snapshots_go_stale_until_refresh() {
        let mut sim = Sim::new(1);
        let site = test_site(&mut sim, "uab", 2);
        let index =
            InformationIndex::start(&mut sim, vec![site.clone()], SimDuration::from_secs(300));
        // Initial snapshot: 2 free CPUs.
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2)
        );
        // Occupy a node; the index must NOT see it until refresh.
        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2),
            "stale value before refresh"
        );
        sim.run_until(SimTime::from_secs(301));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(1),
            "fresh value after refresh"
        );
        assert_eq!(index.refreshes(), 1);
    }

    #[test]
    fn refresh_advances_epochs_only_for_changed_sites() {
        let mut sim = Sim::new(7);
        let busy = test_site(&mut sim, "busy", 2);
        let idle = test_site(&mut sim, "idle", 2);
        let index = InformationIndex::start(
            &mut sim,
            vec![busy.clone(), idle],
            SimDuration::from_secs(300),
        );
        let s0 = index.snapshot_arc();
        assert_eq!(s0.epoch(), 0);

        busy.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(301));
        let s1 = index.snapshot_arc();
        assert_eq!(s1.epoch(), 1);
        assert_eq!(
            s1.dirty_since(s0.epoch()).collect::<Vec<_>>(),
            vec![0],
            "only the site whose ad changed is dirty"
        );
        assert_eq!(s1.free_cpus(0), 1);
        assert_eq!(s1.site_epoch(1), 0, "idle site keeps epoch 0");
        assert!(
            std::sync::Arc::ptr_eq(s0.ad_arc(1), s1.ad_arc(1)),
            "idle site's ad is shared across refreshes"
        );
    }

    #[test]
    fn snapshot_ads_indexes_sites_in_registration_order() {
        let mut sim = Sim::new(4);
        let sites: Vec<Site> = (0..3)
            .map(|i| test_site(&mut sim, &format!("s{i}"), 1 + i))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let ads = index.snapshot_ads();
        assert_eq!(ads.len(), 3);
        for (i, (idx, ad)) in ads.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(ad.get("FreeCpus").unwrap(), &Value::Int(1 + i as i64));
        }
    }

    #[test]
    fn a_down_publish_path_keeps_the_stale_column_and_drives_membership() {
        let mut sim = Sim::new(5);
        let flaky = test_site(&mut sim, "flaky", 2);
        let steady = test_site(&mut sim, "steady", 2);
        // flaky's publication path is down for the first three refreshes
        // (t=300, 600, 900), back for t=1200 onward.
        let faults =
            FaultSchedule::from_windows(vec![(SimTime::from_secs(200), SimTime::from_secs(1000))]);
        let index = InformationIndex::start_with_faults(
            &mut sim,
            vec![flaky.clone(), steady],
            SimDuration::from_secs(300),
            vec![faults],
            MembershipConfig::default(),
        );
        let seen: Rc<RefCell<Vec<(usize, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        index.set_membership_observer(move |_, i, tr| s.borrow_mut().push((i, *tr)));

        // Occupy a node so flaky's ad actually changes under the outage.
        flaky.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(901));
        // Three missed refreshes: Suspect, column still showing the
        // initial 2 free CPUs.
        assert_eq!(index.membership_state(0), MembershipState::Suspect);
        assert!(!index.is_schedulable(0));
        assert_eq!(index.snapshot_arc().free_cpus(0), 2, "column is stale");
        assert_eq!(index.published_at(0), SimTime::ZERO);
        assert_eq!(
            index.staleness(0, SimTime::from_secs(900)),
            SimDuration::from_secs(900)
        );
        assert_eq!(index.membership_state(1), MembershipState::Alive);
        assert_eq!(index.staleness(1, index.refreshed_at()), SimDuration::ZERO);

        // Path restored: the next refresh publishes, rejoins, and the
        // column catches up.
        sim.run_until(SimTime::from_secs(1201));
        assert_eq!(index.membership_state(0), MembershipState::Rejoined);
        assert!(index.is_schedulable(0));
        assert_eq!(index.snapshot_arc().free_cpus(0), 1);
        // Probation: two clean refreshes promote back to Alive.
        sim.run_until(SimTime::from_secs(1801));
        assert_eq!(index.membership_state(0), MembershipState::Alive);

        let seen = seen.borrow();
        assert!(
            matches!(
                seen.as_slice(),
                [
                    (1, Transition::Joined),
                    (0, Transition::Suspected { .. }),
                    (0, Transition::Rejoined { .. }),
                    (0, Transition::Stabilized),
                ]
            ),
            "{seen:?}"
        );
    }

    #[test]
    fn reported_query_failures_reach_the_observer() {
        let mut sim = Sim::new(6);
        let site = test_site(&mut sim, "x", 1);
        let index = InformationIndex::start_with_faults(
            &mut sim,
            vec![site],
            SimDuration::from_secs(300),
            Vec::new(),
            MembershipConfig {
                suspect_after_failed_queries: 2,
                ..MembershipConfig::default()
            },
        );
        let seen: Rc<RefCell<Vec<(usize, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        index.set_membership_observer(move |_, i, tr| s.borrow_mut().push((i, *tr)));
        index.report_query(&mut sim, 0, false);
        index.report_query(&mut sim, 0, false);
        assert_eq!(index.membership_state(0), MembershipState::Suspect);
        index.report_query(&mut sim, 0, true);
        assert_eq!(index.membership_state(0), MembershipState::Rejoined);
        assert!(matches!(
            seen.borrow().as_slice(),
            [
                (0, Transition::Suspected { .. }),
                (0, Transition::Rejoined { .. })
            ]
        ));
    }

    #[test]
    fn query_cost_is_around_half_a_second_on_the_mds_path() {
        // Paper §6.1: discovery "takes around 0.5 seconds" with the index in
        // Germany and the broker in Spain.
        let mut sim = Sim::new(2);
        let sites: Vec<Site> = (0..20)
            .map(|i| test_site(&mut sim, &format!("site{i}"), 4))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let link = Link::new(LinkProfile::wan_mds());
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        index.query(&mut sim, &link, move |sim, r| {
            assert_eq!(r.unwrap().len(), 20);
            *d.borrow_mut() = Some(sim.now().as_secs_f64());
        });
        sim.run_until(SimTime::from_secs(10));
        let t = done.borrow().unwrap();
        assert!(
            (0.2..0.9).contains(&t),
            "discovery took {t}s, expected ~0.5"
        );
    }

    #[test]
    fn query_fails_over_dead_link() {
        let mut sim = Sim::new(3);
        let site = test_site(&mut sim, "x", 1);
        let index = InformationIndex::start(&mut sim, vec![site], SimDuration::from_secs(300));
        let faults =
            cg_net::FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(100))]);
        let link = Link::with_faults(LinkProfile::wan_mds(), faults);
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        index.query(&mut sim, &link, move |_, r| {
            *g.borrow_mut() = Some(r.is_err());
        });
        sim.run_until(SimTime::from_secs(50));
        assert_eq!(*got.borrow(), Some(true));
    }

    #[test]
    fn refresh_during_response_transit_does_not_leak_into_the_reply() {
        // Regression for the mid-flight freshness leak: the old query path
        // cloned the records when the response *arrived*, so a refresh that
        // fired while the reply was on the wire leaked data newer than the
        // MDS could have served.
        //
        // Timeline on a deliberately slow link (1 kbps, no jitter):
        //   request (250 B)  ≈ 2.0 s transit  → service 0.42 s ends ≈ 2.4 s
        //   response (1200 B) ≈ 9.6 s transit → delivery ≈ 12 s
        // A 10 000 s job submitted at t=0 occupies a node at ~1.5 s
        // (dispatch latency), and refreshes at 5 s and 10 s publish
        // FreeCpus = 1 — both land between service and delivery.
        let mut sim = Sim::new(9);
        let site = test_site(&mut sim, "uab", 2);
        let index =
            InformationIndex::start(&mut sim, vec![site.clone()], SimDuration::from_secs(5));
        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        let link = Link::new(LinkProfile {
            name: "drip".into(),
            base_latency_s: 0.0,
            jitter_s: 0.0,
            bandwidth_bps: 1_000.0,
            loss_prob: 0.0,
            per_msg_overhead_s: 0.0,
        });
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        let idx = index.clone();
        index.query(&mut sim, &link, move |sim, r| {
            let snap = r.unwrap();
            *g.borrow_mut() = Some((sim.now().as_secs_f64(), snap.free_cpus(0), idx.refreshes()));
        });
        sim.run_until(SimTime::from_secs(60));
        let (t, free, refreshes) = got.borrow().expect("query must complete");
        assert!(t > 10.0, "response delivery at {t}s should be after 10s");
        assert!(
            refreshes >= 2,
            "refreshes must have fired mid-flight (got {refreshes})"
        );
        assert_eq!(
            free, 2,
            "response must show the service-time snapshot (FreeCpus=2), \
             not the refreshed value that arrived while the reply was on the wire"
        );
    }
}
