//! The information system — a Globus MDS (GRIS/GIIS) model.
//!
//! Each site publishes its state to the project index on a refresh interval,
//! so the index's answer is *stale* by up to that interval. That staleness is
//! why CrossBroker's resource selection "contacts each remote site
//! individually and gets the most updated information" after the initial
//! discovery (§6.1) — the two-step cost structure Table I's text reports
//! (discovery ≈ 0.5 s, selection ≈ 3 s for 20 sites).

use std::cell::RefCell;
use std::rc::Rc;

use cg_jdl::Ad;
use cg_net::{rpc_call, Dir, Link, NetError};
use cg_sim::{Sim, SimDuration, SimTime};

use crate::site::Site;

/// One site's entry in the index.
#[derive(Debug, Clone)]
pub struct SiteRecord {
    /// Site name.
    pub site: String,
    /// The machine ad as of the last refresh (possibly stale).
    pub ad: Ad,
    /// When the entry was refreshed.
    pub published_at: SimTime,
}

struct Inner {
    sites: Vec<Site>,
    records: Vec<SiteRecord>,
    refresh_interval: SimDuration,
    /// Index-side processing per query, seconds (LDAP search in 2006).
    query_cpu_s: f64,
    refreshes: u64,
}

/// The aggregated index (GIIS). Clones share state.
#[derive(Clone)]
pub struct InformationIndex {
    inner: Rc<RefCell<Inner>>,
}

impl InformationIndex {
    /// Builds the index over `sites` and starts the refresh cycle. The first
    /// snapshot is taken immediately; subsequent refreshes run every
    /// `refresh_interval`.
    pub fn start(sim: &mut Sim, sites: Vec<Site>, refresh_interval: SimDuration) -> Self {
        let records = sites
            .iter()
            .map(|s| SiteRecord {
                site: s.name().to_string(),
                ad: s.machine_ad(),
                published_at: sim.now(),
            })
            .collect();
        let index = InformationIndex {
            inner: Rc::new(RefCell::new(Inner {
                sites,
                records,
                refresh_interval,
                query_cpu_s: 0.42,
                refreshes: 0,
            })),
        };
        index.schedule_refresh(sim);
        index
    }

    fn schedule_refresh(&self, sim: &mut Sim) {
        let this = self.clone();
        let interval = self.inner.borrow().refresh_interval;
        sim.schedule_in(interval, move |sim| {
            {
                let mut inner = this.inner.borrow_mut();
                let now = sim.now();
                let fresh: Vec<SiteRecord> = inner
                    .sites
                    .iter()
                    .map(|s| SiteRecord {
                        site: s.name().to_string(),
                        ad: s.machine_ad(),
                        published_at: now,
                    })
                    .collect();
                inner.records = fresh;
                inner.refreshes += 1;
            }
            this.schedule_refresh(sim);
        });
    }

    /// Queries the index over `link` (the broker→MDS path). The response
    /// carries every site record; its size scales with the number of sites.
    pub fn query(
        &self,
        sim: &mut Sim,
        link: &Link,
        on: impl FnOnce(&mut Sim, Result<Vec<SiteRecord>, NetError>) + 'static,
    ) {
        let inner = self.inner.borrow();
        let resp_bytes = 300 + 900 * inner.records.len() as u64; // LDAP entries
        let service = SimDuration::from_secs_f64(inner.query_cpu_s);
        drop(inner);
        let this = self.clone();
        rpc_call(
            sim,
            link,
            Dir::AToB,
            250,
            resp_bytes,
            service,
            move |sim, r| match r {
                Err(e) => on(sim, Err(e)),
                Ok(()) => {
                    let records = this.inner.borrow().records.clone();
                    on(sim, Ok(records));
                }
            },
        );
    }

    /// Number of completed refresh cycles.
    pub fn refreshes(&self) -> u64 {
        self.inner.borrow().refreshes
    }

    /// Current (possibly stale) records, without network cost — for tests.
    pub fn snapshot(&self) -> Vec<SiteRecord> {
        self.inner.borrow().records.clone()
    }

    /// The current records as an indexed ad list — the discovery-snapshot
    /// shape matchmaking consumes (`filter_candidates`, and the parallel
    /// engine's `ParallelMatcher::new`). Site index `i` is the position in
    /// the index's site list, matching the broker's `SiteHandle` order.
    pub fn snapshot_ads(&self) -> Vec<(usize, Ad)> {
        self.inner
            .borrow()
            .records
            .iter()
            .enumerate()
            .map(|(i, rec)| (i, rec.ad.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrms::{LocalJobSpec, Policy};
    use crate::site::{Site, SiteConfig};
    use cg_jdl::Value;
    use cg_net::LinkProfile;

    fn test_site(sim: &mut Sim, name: &str, nodes: usize) -> Site {
        let _ = sim;
        Site::new(SiteConfig {
            name: name.into(),
            nodes,
            policy: Policy::Fifo,
            ..SiteConfig::default()
        })
    }

    #[test]
    fn index_snapshots_go_stale_until_refresh() {
        let mut sim = Sim::new(1);
        let site = test_site(&mut sim, "uab", 2);
        let index =
            InformationIndex::start(&mut sim, vec![site.clone()], SimDuration::from_secs(300));
        // Initial snapshot: 2 free CPUs.
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2)
        );
        // Occupy a node; the index must NOT see it until refresh.
        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2),
            "stale value before refresh"
        );
        sim.run_until(SimTime::from_secs(301));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(1),
            "fresh value after refresh"
        );
        assert_eq!(index.refreshes(), 1);
    }

    #[test]
    fn snapshot_ads_indexes_sites_in_registration_order() {
        let mut sim = Sim::new(4);
        let sites: Vec<Site> = (0..3)
            .map(|i| test_site(&mut sim, &format!("s{i}"), 1 + i))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let ads = index.snapshot_ads();
        assert_eq!(ads.len(), 3);
        for (i, (idx, ad)) in ads.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(ad.get("FreeCpus").unwrap(), &Value::Int(1 + i as i64));
        }
    }

    #[test]
    fn query_cost_is_around_half_a_second_on_the_mds_path() {
        // Paper §6.1: discovery "takes around 0.5 seconds" with the index in
        // Germany and the broker in Spain.
        let mut sim = Sim::new(2);
        let sites: Vec<Site> = (0..20)
            .map(|i| test_site(&mut sim, &format!("site{i}"), 4))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let link = Link::new(LinkProfile::wan_mds());
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        index.query(&mut sim, &link, move |sim, r| {
            assert_eq!(r.unwrap().len(), 20);
            *d.borrow_mut() = Some(sim.now().as_secs_f64());
        });
        sim.run_until(SimTime::from_secs(10));
        let t = done.borrow().unwrap();
        assert!(
            (0.2..0.9).contains(&t),
            "discovery took {t}s, expected ~0.5"
        );
    }

    #[test]
    fn query_fails_over_dead_link() {
        let mut sim = Sim::new(3);
        let site = test_site(&mut sim, "x", 1);
        let index = InformationIndex::start(&mut sim, vec![site], SimDuration::from_secs(300));
        let faults =
            cg_net::FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(100))]);
        let link = Link::with_faults(LinkProfile::wan_mds(), faults);
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        index.query(&mut sim, &link, move |_, r| {
            *g.borrow_mut() = Some(r.is_err());
        });
        sim.run_until(SimTime::from_secs(50));
        assert_eq!(*got.borrow(), Some(true));
    }
}
