//! The information system — a Globus MDS (GRIS/GIIS) model.
//!
//! Each site publishes its state to the project index on a refresh interval,
//! so the index's answer is *stale* by up to that interval. That staleness is
//! why CrossBroker's resource selection "contacts each remote site
//! individually and gets the most updated information" after the initial
//! discovery (§6.1) — the two-step cost structure Table I's text reports
//! (discovery ≈ 0.5 s, selection ≈ 3 s for 20 sites).
//!
//! The index stores its view as an epoch-tagged columnar [`AdSnapshot`]:
//! each refresh advances the snapshot with per-site deltas (unchanged sites
//! share the previous `Arc<Ad>` and keep their epoch) and a query response
//! is an `Arc` clone of the snapshot as it stood *when the index serviced
//! the request* — never data that arrived while the reply was on the wire.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use cg_jdl::Ad;
use cg_net::{Dir, FaultSchedule, Link, NetError};
use cg_sim::{Sim, SimDuration, SimTime};

use crate::columns::AdSnapshot;
use crate::membership::{MembershipConfig, MembershipState, MembershipTable, Transition};
use crate::site::Site;

/// Callback invoked (after the index's own state settles) for every
/// membership transition, refresh-driven or reported. The broker hangs
/// its obituary/re-match logic here.
type MembershipObserver = Rc<dyn Fn(&mut Sim, usize, &Transition)>;

/// Callback invoked after every snapshot advance — a sweep close (legacy
/// or windowed) or a late-reply merge — with the advance's accounting and
/// the snapshot as it stands afterwards. The GIIS aggregation layer hangs
/// its delta propagation here.
type SweepObserver = Rc<dyn Fn(&mut Sim, &SweepReport, &Arc<AdSnapshot>)>;

/// Windowed-refresh parameters: instead of the legacy instantaneous walk,
/// each refresh tick opens a *sweep* that pulls at most `fanout` sites
/// concurrently (the same windowing shape as the broker's
/// `live_query_fanout`), so sweep duration scales as
/// `ceil(sites / fanout) × RTT` instead of `sites × RTT`.
#[derive(Debug, Clone)]
pub struct RefreshWindow {
    /// Maximum concurrent in-flight site pulls per sweep (min 1).
    pub fanout: usize,
    /// Per-site GRIS→GIIS publication latency; shorter than the site list
    /// means the remainder publish instantaneously.
    pub latency: Vec<SimDuration>,
}

impl Default for RefreshWindow {
    fn default() -> Self {
        RefreshWindow {
            fanout: 4,
            latency: Vec::new(),
        }
    }
}

/// Accounting for one snapshot advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// Sites whose publication arrived and was applied in this advance.
    pub refreshed: usize,
    /// Sites whose publish path was down at attempt time — these accrue
    /// a missed refresh toward `Suspect`.
    pub missed: usize,
    /// Sites whose reply was merely in flight (or not yet attempted) when
    /// the tick closed the sweep — amnestied: neither refreshed nor
    /// missed, so a slow-but-healthy link never drifts toward `Suspect`.
    pub amnestied: usize,
    /// True when this advance merged a late reply from an already-closed
    /// sweep rather than closing a sweep itself.
    pub late: bool,
}

/// In-progress windowed sweep.
struct SweepState {
    /// Sweep generation — replies carry it so a late arrival (after the
    /// tick force-closed this sweep) is recognized and merged separately.
    gen: u64,
    /// Sites not yet attempted, in index order.
    pending: std::collections::VecDeque<usize>,
    /// Attempted sites whose reply has not yet arrived.
    in_flight: usize,
    /// Arrived publications, buffered until the sweep closes.
    arrived: Vec<(usize, Ad)>,
    /// Sites whose path was down at attempt time.
    missed: usize,
}

/// One site's entry in the index — the row-shaped compatibility view
/// derived from the columnar snapshot by [`InformationIndex::snapshot`].
#[derive(Debug, Clone)]
pub struct SiteRecord {
    /// Site name.
    pub site: String,
    /// The machine ad as of the last refresh (possibly stale).
    pub ad: Ad,
    /// When the entry was refreshed.
    pub published_at: SimTime,
}

struct Inner {
    sites: Vec<Site>,
    snapshot: Arc<AdSnapshot>,
    refreshed_at: SimTime,
    /// Per-site instant of the last publication that actually arrived;
    /// lags `refreshed_at` for sites whose publish path was down.
    published_at: Vec<SimTime>,
    refresh_interval: SimDuration,
    /// Index-side processing per query, seconds (LDAP search in 2006).
    query_cpu_s: f64,
    refreshes: u64,
    /// Outage windows on each site's GRIS→GIIS publication path; a site
    /// whose path is down at refresh time keeps its stale column and
    /// accrues a missed refresh. Shorter than `sites` means the rest
    /// publish cleanly.
    publish_faults: Vec<FaultSchedule>,
    membership: MembershipTable,
    observer: Option<MembershipObserver>,
    /// `Some` puts the refresh cycle in windowed mode.
    window: Option<RefreshWindow>,
    sweep: Option<SweepState>,
    next_sweep_gen: u64,
    /// Total late replies merged after their sweep closed.
    late_merges: u64,
    /// Total in-flight/unattempted sites amnestied at forced sweep closes.
    amnestied: u64,
    sweep_observer: Option<SweepObserver>,
}

/// The aggregated index (GIIS). Clones share state.
#[derive(Clone)]
pub struct InformationIndex {
    inner: Rc<RefCell<Inner>>,
}

impl InformationIndex {
    /// Builds the index over `sites` and starts the refresh cycle. The first
    /// snapshot is taken immediately; subsequent refreshes run every
    /// `refresh_interval`.
    pub fn start(sim: &mut Sim, sites: Vec<Site>, refresh_interval: SimDuration) -> Self {
        InformationIndex::start_with_faults(
            sim,
            sites,
            refresh_interval,
            Vec::new(),
            MembershipConfig::default(),
        )
    }

    /// Like [`InformationIndex::start`], but with per-site outage windows
    /// on the publication paths and explicit failure-detector thresholds.
    /// A site whose path is down when a refresh tick fires keeps its
    /// previous (stale) column, keeps its old per-site `published_at`,
    /// and accrues a missed refresh toward `Suspect`/`Dead`.
    pub fn start_with_faults(
        sim: &mut Sim,
        sites: Vec<Site>,
        refresh_interval: SimDuration,
        publish_faults: Vec<FaultSchedule>,
        membership: MembershipConfig,
    ) -> Self {
        let ads: Vec<Ad> = sites.iter().map(Site::machine_ad).collect();
        let n = sites.len();
        let index = InformationIndex {
            inner: Rc::new(RefCell::new(Inner {
                sites,
                snapshot: Arc::new(AdSnapshot::build(ads)),
                refreshed_at: sim.now(),
                published_at: vec![sim.now(); n],
                refresh_interval,
                query_cpu_s: 0.42,
                refreshes: 0,
                publish_faults,
                membership: MembershipTable::new(n, membership),
                observer: None,
                window: None,
                sweep: None,
                next_sweep_gen: 0,
                late_merges: 0,
                amnestied: 0,
                sweep_observer: None,
            })),
        };
        index.schedule_refresh(sim);
        index
    }

    /// Like [`InformationIndex::start_with_faults`], but the refresh cycle
    /// runs as windowed sweeps (at most `window.fanout` concurrent site
    /// pulls, per-site publication latency) instead of the legacy
    /// instantaneous walk. Sites whose publish path is down *at boot* get
    /// a placeholder column (`FreeCpus = 0`, `AcceptsQueued = false`)
    /// until their first publication arrives — so a mass join surfaces as
    /// a genuine per-site delta, not a pre-populated row.
    pub fn start_windowed(
        sim: &mut Sim,
        sites: Vec<Site>,
        refresh_interval: SimDuration,
        window: RefreshWindow,
        publish_faults: Vec<FaultSchedule>,
        membership: MembershipConfig,
    ) -> Self {
        let now = sim.now();
        let ads: Vec<Ad> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if publish_faults.get(i).is_some_and(|f| f.is_down(now)) {
                    unregistered_ad(s.name())
                } else {
                    s.machine_ad()
                }
            })
            .collect();
        let n = sites.len();
        let index = InformationIndex {
            inner: Rc::new(RefCell::new(Inner {
                sites,
                snapshot: Arc::new(AdSnapshot::build(ads)),
                refreshed_at: now,
                published_at: vec![now; n],
                refresh_interval,
                query_cpu_s: 0.42,
                refreshes: 0,
                publish_faults,
                membership: MembershipTable::new(n, membership),
                observer: None,
                window: Some(window),
                sweep: None,
                next_sweep_gen: 0,
                late_merges: 0,
                amnestied: 0,
                sweep_observer: None,
            })),
        };
        index.schedule_windowed_tick(sim);
        index
    }

    fn schedule_refresh(&self, sim: &mut Sim) {
        let this = self.clone();
        let interval = self.inner.borrow().refresh_interval;
        sim.schedule_in(interval, move |sim| {
            let (transitions, report, snap) = {
                let mut inner = this.inner.borrow_mut();
                let now = sim.now();
                let mut transitions = Vec::new();
                let mut missed = 0;
                // Each site publishes independently: a down path keeps the
                // stale column (same Arc, same epoch) and counts a miss.
                let fresh: Vec<Ad> = inner
                    .sites
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        if inner.publish_faults.get(i).is_some_and(|f| f.is_down(now)) {
                            inner.snapshot.ad(i).clone()
                        } else {
                            s.machine_ad()
                        }
                    })
                    .collect();
                for i in 0..inner.sites.len() {
                    let down = inner.publish_faults.get(i).is_some_and(|f| f.is_down(now));
                    let tr = if down {
                        missed += 1;
                        inner.membership.note_refresh_missed(i, now)
                    } else {
                        inner.published_at[i] = now;
                        inner.membership.note_refresh_ok(i, now)
                    };
                    if let Some(tr) = tr {
                        transitions.push((i, tr));
                    }
                }
                // Incremental advance: only sites whose ad changed get a new
                // epoch; the rest share the previous snapshot's allocations.
                inner.snapshot = Arc::new(inner.snapshot.advance(fresh));
                inner.refreshed_at = now;
                inner.refreshes += 1;
                let report = SweepReport {
                    refreshed: inner.sites.len() - missed,
                    missed,
                    amnestied: 0,
                    late: false,
                };
                (transitions, report, Arc::clone(&inner.snapshot))
            };
            this.notify(sim, transitions);
            this.notify_sweep(sim, &report, &snap);
            this.schedule_refresh(sim);
        });
    }

    fn schedule_windowed_tick(&self, sim: &mut Sim) {
        let this = self.clone();
        let interval = self.inner.borrow().refresh_interval;
        sim.schedule_in(interval, move |sim| {
            // Force-close whatever the previous sweep left open (amnesty
            // for in-flight and unattempted sites), then open a new sweep.
            this.close_sweep(sim);
            this.begin_sweep(sim);
            this.schedule_windowed_tick(sim);
        });
    }

    fn begin_sweep(&self, sim: &mut Sim) {
        {
            let mut inner = self.inner.borrow_mut();
            let gen = inner.next_sweep_gen;
            inner.next_sweep_gen += 1;
            inner.sweep = Some(SweepState {
                gen,
                pending: (0..inner.sites.len()).collect(),
                in_flight: 0,
                arrived: Vec::new(),
                missed: 0,
            });
        }
        self.pump_sweep(sim);
    }

    /// Launches site pulls until the fanout window is full; closes the
    /// sweep early once every site has been attempted and settled.
    fn pump_sweep(&self, sim: &mut Sim) {
        enum Pump {
            Close,
            Wait,
            Missed(usize, Option<Transition>),
            Pull(usize, u64, SimDuration, Ad),
        }
        loop {
            let step = {
                let mut inner = self.inner.borrow_mut();
                let now = sim.now();
                let fanout = inner
                    .window
                    .as_ref()
                    .map_or(usize::MAX, |w| w.fanout.max(1));
                let Some(sweep) = inner.sweep.as_mut() else {
                    return;
                };
                if sweep.in_flight >= fanout {
                    return;
                }
                let gen = sweep.gen;
                let popped = sweep.pending.pop_front();
                let settled = sweep.in_flight == 0;
                match popped {
                    // Pending drained: close once the last reply settles.
                    None if settled => Pump::Close,
                    None => Pump::Wait,
                    Some(i) => {
                        if inner.publish_faults.get(i).is_some_and(|f| f.is_down(now)) {
                            // Down at attempt time: a genuine miss, counted
                            // immediately — no reply will ever arrive.
                            inner.sweep.as_mut().expect("sweep open").missed += 1;
                            Pump::Missed(i, inner.membership.note_refresh_missed(i, now))
                        } else {
                            inner.sweep.as_mut().expect("sweep open").in_flight += 1;
                            let latency = inner
                                .window
                                .as_ref()
                                .and_then(|w| w.latency.get(i).copied())
                                .unwrap_or(SimDuration::ZERO);
                            Pump::Pull(i, gen, latency, inner.sites[i].machine_ad())
                        }
                    }
                }
            };
            match step {
                Pump::Close => {
                    self.close_sweep(sim);
                    return;
                }
                Pump::Wait => return,
                Pump::Missed(i, tr) => {
                    if let Some(tr) = tr {
                        self.notify(sim, vec![(i, tr)]);
                    }
                }
                Pump::Pull(i, gen, latency, ad) => {
                    let this = self.clone();
                    sim.schedule_in(latency, move |sim| {
                        this.publish_arrived(sim, gen, i, ad);
                    });
                }
            }
        }
    }

    /// A site's publication reply lands. If its sweep is still open the
    /// ad is buffered for the sweep's single `apply_delta`; if the tick
    /// already force-closed that sweep the reply is *late* — merged
    /// immediately as its own one-site delta. Either way the reply proves
    /// the path is healthy, so the failure detector records a clean
    /// refresh (the late-reply amnesty satellite).
    fn publish_arrived(&self, sim: &mut Sim, gen: u64, i: usize, ad: Ad) {
        let (transition, late) = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            inner.published_at[i] = now;
            let tr = inner.membership.note_refresh_ok(i, now);
            let current = inner.sweep.as_mut().filter(|s| s.gen == gen);
            match current {
                Some(sweep) => {
                    sweep.arrived.push((i, ad));
                    sweep.in_flight -= 1;
                    (tr, None)
                }
                None => {
                    inner.snapshot = Arc::new(inner.snapshot.apply_delta(&[(i, Arc::new(ad))]));
                    inner.late_merges += 1;
                    let report = SweepReport {
                        refreshed: 1,
                        missed: 0,
                        amnestied: 0,
                        late: true,
                    };
                    (tr, Some((report, Arc::clone(&inner.snapshot))))
                }
            }
        };
        if let Some(tr) = transition {
            self.notify(sim, vec![(i, tr)]);
        }
        match late {
            Some((report, snap)) => self.notify_sweep(sim, &report, &snap),
            None => self.pump_sweep(sim),
        }
    }

    /// Closes the open sweep (if any): applies the buffered arrivals as
    /// one delta, stamps the refresh cycle, and amnesties whatever was
    /// still in flight or unattempted — those sites are neither refreshed
    /// nor missed this cycle.
    fn close_sweep(&self, sim: &mut Sim) {
        let closed = {
            let mut inner = self.inner.borrow_mut();
            let Some(sweep) = inner.sweep.take() else {
                return;
            };
            let amnestied = sweep.in_flight + sweep.pending.len();
            inner.amnestied += amnestied as u64;
            let changes: Vec<(usize, Arc<Ad>)> = sweep
                .arrived
                .into_iter()
                .map(|(i, ad)| (i, Arc::new(ad)))
                .collect();
            inner.snapshot = Arc::new(inner.snapshot.apply_delta(&changes));
            inner.refreshed_at = sim.now();
            inner.refreshes += 1;
            let report = SweepReport {
                refreshed: changes.len(),
                missed: sweep.missed,
                amnestied,
                late: false,
            };
            (report, Arc::clone(&inner.snapshot))
        };
        self.notify_sweep(sim, &closed.0, &closed.1);
    }

    /// Registers the single sweep observer, replacing any previous one.
    /// Fires after every snapshot advance — legacy refresh, windowed
    /// sweep close, or late-reply merge.
    pub fn set_sweep_observer(
        &self,
        observer: impl Fn(&mut Sim, &SweepReport, &Arc<AdSnapshot>) + 'static,
    ) {
        self.inner.borrow_mut().sweep_observer = Some(Rc::new(observer));
    }

    fn notify_sweep(&self, sim: &mut Sim, report: &SweepReport, snap: &Arc<AdSnapshot>) {
        let observer = self.inner.borrow().sweep_observer.clone();
        if let Some(observer) = observer {
            observer(sim, report, snap);
        }
    }

    /// Total late replies merged after their sweep force-closed.
    pub fn late_merges(&self) -> u64 {
        self.inner.borrow().late_merges
    }

    /// Total site-sweeps amnestied (reply in flight or unattempted at a
    /// forced close) — each of these would have been a missed refresh
    /// under the old accounting.
    pub fn amnestied(&self) -> u64 {
        self.inner.borrow().amnestied
    }

    /// Registers the single membership observer, replacing any previous
    /// one. Invoked once per transition, after the index's own state has
    /// settled, for both refresh-driven and reported observations.
    pub fn set_membership_observer(
        &self,
        observer: impl Fn(&mut Sim, usize, &Transition) + 'static,
    ) {
        self.inner.borrow_mut().observer = Some(Rc::new(observer));
    }

    /// Feeds a live-query outcome at `site_index` into the failure
    /// detector (`ok = false` covers both errored and timed-out RPCs) and
    /// notifies the observer of any resulting transition.
    pub fn report_query(&self, sim: &mut Sim, site_index: usize, ok: bool) {
        let transition = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            if ok {
                inner.membership.note_query_ok(site_index, now)
            } else {
                inner.membership.note_query_failure(site_index, now)
            }
        };
        if let Some(tr) = transition {
            self.notify(sim, vec![(site_index, tr)]);
        }
    }

    fn notify(&self, sim: &mut Sim, transitions: Vec<(usize, Transition)>) {
        if transitions.is_empty() {
            return;
        }
        let observer = self.inner.borrow().observer.clone();
        if let Some(observer) = observer {
            for (i, tr) in transitions {
                observer(sim, i, &tr);
            }
        }
    }

    /// The site's current membership state.
    pub fn membership_state(&self, site_index: usize) -> MembershipState {
        self.inner.borrow().membership.state(site_index)
    }

    /// Crash recovery: seeds a site's membership state (by name) from a
    /// journal fold. Unknown names are ignored; no transition is
    /// notified — restoration is bookkeeping, not an observation.
    pub fn restore_membership(&self, site: &str, state: MembershipState, now: SimTime) {
        let mut inner = self.inner.borrow_mut();
        if let Some(i) = inner.sites.iter().position(|s| s.name() == site) {
            inner.membership.restore(i, state, now);
        }
    }

    /// May the broker lease or dispatch onto this site right now?
    pub fn is_schedulable(&self, site_index: usize) -> bool {
        self.inner.borrow().membership.is_schedulable(site_index)
    }

    /// Instant of the site's last publication that actually arrived.
    pub fn published_at(&self, site_index: usize) -> SimTime {
        self.inner.borrow().published_at[site_index]
    }

    /// Age of the site's column at `now` — how stale matchmaking data for
    /// this site is. Zero right after a clean refresh; grows across
    /// missed publications.
    pub fn staleness(&self, site_index: usize, now: SimTime) -> SimDuration {
        now.saturating_since(self.inner.borrow().published_at[site_index])
    }

    /// When the last refresh cycle ran (whether or not every site's
    /// publication arrived).
    pub fn refreshed_at(&self) -> SimTime {
        self.inner.borrow().refreshed_at
    }

    /// Queries the index over `link` (the broker→MDS path). The response
    /// carries every site record; its size scales with the number of sites.
    ///
    /// The delivered snapshot is the index's state at *service time* — the
    /// instant the MDS finished processing the request and serialized its
    /// answer. A refresh that fires while the response is in flight is
    /// invisible to this query (the staleness model the module header
    /// documents), and `resp_bytes` is sized from that same snapshot.
    pub fn query(
        &self,
        sim: &mut Sim,
        link: &Link,
        on: impl FnOnce(&mut Sim, Result<Arc<AdSnapshot>, NetError>) + 'static,
    ) {
        let service = SimDuration::from_secs_f64(self.inner.borrow().query_cpu_s);
        let this = self.clone();
        let link2 = link.clone();
        link.send(sim, Dir::AToB, 250, move |sim, r| match r {
            Err(e) => on(sim, Err(e)),
            Ok(()) => {
                sim.schedule_in(service, move |sim| {
                    // Service completes here: snapshot what the MDS can
                    // actually serve, before the reply hits the wire.
                    let snap = Arc::clone(&this.inner.borrow().snapshot);
                    let resp_bytes = 300 + 900 * snap.len() as u64; // LDAP entries
                    link2.send(sim, Dir::BToA, resp_bytes, move |sim, r| match r {
                        Err(e) => on(sim, Err(e)),
                        Ok(()) => on(sim, Ok(snap)),
                    });
                });
            }
        });
    }

    /// Number of completed refresh cycles.
    pub fn refreshes(&self) -> u64 {
        self.inner.borrow().refreshes
    }

    /// The current columnar snapshot, without network cost — the shape
    /// matchmaking consumes directly. An `Arc` clone, not a table copy.
    pub fn snapshot_arc(&self) -> Arc<AdSnapshot> {
        Arc::clone(&self.inner.borrow().snapshot)
    }

    /// Current (possibly stale) records, without network cost — for tests
    /// and reports; clones each ad out of the columnar store.
    pub fn snapshot(&self) -> Vec<SiteRecord> {
        let inner = self.inner.borrow();
        inner
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| SiteRecord {
                site: s.name().to_string(),
                ad: inner.snapshot.ad(i).clone(),
                published_at: inner.published_at[i],
            })
            .collect()
    }

    /// The current records as an indexed ad list — the discovery-snapshot
    /// shape the map-based matchmaking path consumes (`filter_candidates`,
    /// and the parallel engine's `ParallelMatcher`). Site index `i` is
    /// the position in the index's site list, matching the broker's
    /// `SiteHandle` order. Every ad is `Arc`-shared with the snapshot —
    /// no deep clone per call.
    pub fn snapshot_ads(&self) -> Vec<(usize, Arc<Ad>)> {
        self.inner.borrow().snapshot.indexed_ads()
    }
}

/// Placeholder column for a site that has never published: named but
/// unschedulable, so its first real publication is a genuine delta.
fn unregistered_ad(name: &str) -> Ad {
    let mut ad = Ad::new();
    ad.set_str("Site", name)
        .set_int("FreeCpus", 0)
        .set_bool("AcceptsQueued", false);
    ad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrms::{LocalJobSpec, Policy};
    use crate::site::{Site, SiteConfig};
    use cg_jdl::Value;
    use cg_net::LinkProfile;

    fn test_site(sim: &mut Sim, name: &str, nodes: usize) -> Site {
        let _ = sim;
        Site::new(SiteConfig {
            name: name.into(),
            nodes,
            policy: Policy::Fifo,
            ..SiteConfig::default()
        })
    }

    #[test]
    fn index_snapshots_go_stale_until_refresh() {
        let mut sim = Sim::new(1);
        let site = test_site(&mut sim, "uab", 2);
        let index =
            InformationIndex::start(&mut sim, vec![site.clone()], SimDuration::from_secs(300));
        // Initial snapshot: 2 free CPUs.
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2)
        );
        // Occupy a node; the index must NOT see it until refresh.
        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2),
            "stale value before refresh"
        );
        sim.run_until(SimTime::from_secs(301));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(1),
            "fresh value after refresh"
        );
        assert_eq!(index.refreshes(), 1);
    }

    #[test]
    fn refresh_advances_epochs_only_for_changed_sites() {
        let mut sim = Sim::new(7);
        let busy = test_site(&mut sim, "busy", 2);
        let idle = test_site(&mut sim, "idle", 2);
        let index = InformationIndex::start(
            &mut sim,
            vec![busy.clone(), idle],
            SimDuration::from_secs(300),
        );
        let s0 = index.snapshot_arc();
        assert_eq!(s0.epoch(), 0);

        busy.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(301));
        let s1 = index.snapshot_arc();
        assert_eq!(s1.epoch(), 1);
        assert_eq!(
            s1.dirty_since(s0.epoch()).collect::<Vec<_>>(),
            vec![0],
            "only the site whose ad changed is dirty"
        );
        assert_eq!(s1.free_cpus(0), 1);
        assert_eq!(s1.site_epoch(1), 0, "idle site keeps epoch 0");
        assert!(
            std::sync::Arc::ptr_eq(s0.ad_arc(1), s1.ad_arc(1)),
            "idle site's ad is shared across refreshes"
        );
    }

    #[test]
    fn snapshot_ads_indexes_sites_in_registration_order() {
        let mut sim = Sim::new(4);
        let sites: Vec<Site> = (0..3)
            .map(|i| test_site(&mut sim, &format!("s{i}"), 1 + i))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let ads = index.snapshot_ads();
        assert_eq!(ads.len(), 3);
        for (i, (idx, ad)) in ads.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(ad.get("FreeCpus").unwrap(), &Value::Int(1 + i as i64));
        }
    }

    #[test]
    fn a_down_publish_path_keeps_the_stale_column_and_drives_membership() {
        let mut sim = Sim::new(5);
        let flaky = test_site(&mut sim, "flaky", 2);
        let steady = test_site(&mut sim, "steady", 2);
        // flaky's publication path is down for the first three refreshes
        // (t=300, 600, 900), back for t=1200 onward.
        let faults =
            FaultSchedule::from_windows(vec![(SimTime::from_secs(200), SimTime::from_secs(1000))]);
        let index = InformationIndex::start_with_faults(
            &mut sim,
            vec![flaky.clone(), steady],
            SimDuration::from_secs(300),
            vec![faults],
            MembershipConfig::default(),
        );
        let seen: Rc<RefCell<Vec<(usize, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        index.set_membership_observer(move |_, i, tr| s.borrow_mut().push((i, *tr)));

        // Occupy a node so flaky's ad actually changes under the outage.
        flaky.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(901));
        // Three missed refreshes: Suspect, column still showing the
        // initial 2 free CPUs.
        assert_eq!(index.membership_state(0), MembershipState::Suspect);
        assert!(!index.is_schedulable(0));
        assert_eq!(index.snapshot_arc().free_cpus(0), 2, "column is stale");
        assert_eq!(index.published_at(0), SimTime::ZERO);
        assert_eq!(
            index.staleness(0, SimTime::from_secs(900)),
            SimDuration::from_secs(900)
        );
        assert_eq!(index.membership_state(1), MembershipState::Alive);
        assert_eq!(index.staleness(1, index.refreshed_at()), SimDuration::ZERO);

        // Path restored: the next refresh publishes, rejoins, and the
        // column catches up.
        sim.run_until(SimTime::from_secs(1201));
        assert_eq!(index.membership_state(0), MembershipState::Rejoined);
        assert!(index.is_schedulable(0));
        assert_eq!(index.snapshot_arc().free_cpus(0), 1);
        // Probation: two clean refreshes promote back to Alive.
        sim.run_until(SimTime::from_secs(1801));
        assert_eq!(index.membership_state(0), MembershipState::Alive);

        let seen = seen.borrow();
        assert!(
            matches!(
                seen.as_slice(),
                [
                    (1, Transition::Joined),
                    (0, Transition::Suspected { .. }),
                    (0, Transition::Rejoined { .. }),
                    (0, Transition::Stabilized),
                ]
            ),
            "{seen:?}"
        );
    }

    #[test]
    fn reported_query_failures_reach_the_observer() {
        let mut sim = Sim::new(6);
        let site = test_site(&mut sim, "x", 1);
        let index = InformationIndex::start_with_faults(
            &mut sim,
            vec![site],
            SimDuration::from_secs(300),
            Vec::new(),
            MembershipConfig {
                suspect_after_failed_queries: 2,
                ..MembershipConfig::default()
            },
        );
        let seen: Rc<RefCell<Vec<(usize, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        index.set_membership_observer(move |_, i, tr| s.borrow_mut().push((i, *tr)));
        index.report_query(&mut sim, 0, false);
        index.report_query(&mut sim, 0, false);
        assert_eq!(index.membership_state(0), MembershipState::Suspect);
        index.report_query(&mut sim, 0, true);
        assert_eq!(index.membership_state(0), MembershipState::Rejoined);
        assert!(matches!(
            seen.borrow().as_slice(),
            [
                (0, Transition::Suspected { .. }),
                (0, Transition::Rejoined { .. })
            ]
        ));
    }

    #[test]
    fn query_cost_is_around_half_a_second_on_the_mds_path() {
        // Paper §6.1: discovery "takes around 0.5 seconds" with the index in
        // Germany and the broker in Spain.
        let mut sim = Sim::new(2);
        let sites: Vec<Site> = (0..20)
            .map(|i| test_site(&mut sim, &format!("site{i}"), 4))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let link = Link::new(LinkProfile::wan_mds());
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        index.query(&mut sim, &link, move |sim, r| {
            assert_eq!(r.unwrap().len(), 20);
            *d.borrow_mut() = Some(sim.now().as_secs_f64());
        });
        sim.run_until(SimTime::from_secs(10));
        let t = done.borrow().unwrap();
        assert!(
            (0.2..0.9).contains(&t),
            "discovery took {t}s, expected ~0.5"
        );
    }

    #[test]
    fn query_fails_over_dead_link() {
        let mut sim = Sim::new(3);
        let site = test_site(&mut sim, "x", 1);
        let index = InformationIndex::start(&mut sim, vec![site], SimDuration::from_secs(300));
        let faults =
            cg_net::FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(100))]);
        let link = Link::with_faults(LinkProfile::wan_mds(), faults);
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        index.query(&mut sim, &link, move |_, r| {
            *g.borrow_mut() = Some(r.is_err());
        });
        sim.run_until(SimTime::from_secs(50));
        assert_eq!(*got.borrow(), Some(true));
    }

    #[test]
    fn windowed_refresh_converges_with_bounded_fanout() {
        let mut sim = Sim::new(11);
        let sites: Vec<Site> = (0..6)
            .map(|i| test_site(&mut sim, &format!("s{i}"), 2))
            .collect();
        let busy = sites[0].clone();
        let index = InformationIndex::start_windowed(
            &mut sim,
            sites,
            SimDuration::from_secs(60),
            RefreshWindow {
                fanout: 2,
                latency: vec![SimDuration::from_secs(1); 6],
            },
            Vec::new(),
            MembershipConfig::default(),
        );
        busy.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        // Sweep opens at t=60 and pulls two sites per 1 s wave: waves at
        // 60, 61, 62, last replies land at 63 — not 6 × RTT serial.
        sim.run_until(SimTime::from_secs(64));
        assert_eq!(index.refreshes(), 1);
        assert_eq!(index.refreshed_at(), SimTime::from_secs(63));
        let snap = index.snapshot_arc();
        assert_eq!(snap.free_cpus(0), 1, "sweep captured the occupied node");
        for i in 0..6 {
            assert_eq!(index.membership_state(i), MembershipState::Alive);
        }
    }

    #[test]
    fn in_flight_replies_are_amnestied_not_counted_as_missed() {
        // Satellite regression: a site whose reply is merely in flight when
        // the tick force-closes the sweep must NOT accrue a missed refresh.
        // Site 0's publication takes 90 s against a 60 s interval, so every
        // sweep closes with its reply still in the air; under the old
        // accounting (amnestied == missed) it would cross
        // `suspect_after_missed_refreshes = 2` by the third tick and sit in
        // `Suspect` forever despite a perfectly healthy path.
        let mut sim = Sim::new(12);
        let slow = test_site(&mut sim, "slow", 2);
        let fast = test_site(&mut sim, "fast", 2);
        let index = InformationIndex::start_windowed(
            &mut sim,
            vec![slow, fast],
            SimDuration::from_secs(60),
            RefreshWindow {
                fanout: 4,
                latency: vec![SimDuration::from_secs(90), SimDuration::from_secs(1)],
            },
            Vec::new(),
            MembershipConfig::default(),
        );
        let seen: Rc<RefCell<Vec<(usize, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        index.set_membership_observer(move |_, i, tr| s.borrow_mut().push((i, *tr)));
        sim.run_until(SimTime::from_secs(400));

        let threshold = u64::from(MembershipConfig::default().suspect_after_missed_refreshes);
        assert!(
            index.amnestied() >= threshold,
            "enough amnestied sweeps ({}) that the old missed-refresh \
             accounting would have suspected the site",
            index.amnestied()
        );
        assert_eq!(index.membership_state(0), MembershipState::Alive);
        assert!(
            seen.borrow()
                .iter()
                .all(|(_, tr)| !matches!(tr, Transition::Suspected { .. })),
            "no site may be suspected under slow-but-healthy links: {:?}",
            seen.borrow()
        );
        // The late replies still land: each merges as its own delta and
        // refreshes the failure detector and the column's publish stamp.
        assert!(
            index.late_merges() >= 2,
            "late merges: {}",
            index.late_merges()
        );
        assert_eq!(index.published_at(0), SimTime::from_secs(390));
        assert_eq!(index.snapshot_arc().free_cpus(0), 2);
    }

    #[test]
    fn windowed_mode_still_suspects_a_down_publish_path() {
        // Amnesty is only for in-flight replies; a path that is down at
        // attempt time counts a miss immediately, exactly like the legacy
        // walk.
        let mut sim = Sim::new(13);
        let dark = test_site(&mut sim, "dark", 2);
        let lit = test_site(&mut sim, "lit", 2);
        let faults =
            FaultSchedule::from_windows(vec![(SimTime::from_secs(30), SimTime::from_secs(10_000))]);
        let index = InformationIndex::start_windowed(
            &mut sim,
            vec![dark, lit],
            SimDuration::from_secs(60),
            RefreshWindow {
                fanout: 4,
                latency: vec![SimDuration::from_secs(1); 2],
            },
            vec![faults],
            MembershipConfig::default(),
        );
        sim.run_until(SimTime::from_secs(200));
        assert_eq!(index.membership_state(0), MembershipState::Suspect);
        assert!(!index.is_schedulable(0));
        assert_eq!(index.membership_state(1), MembershipState::Alive);
        assert_eq!(index.amnestied(), 0);
    }

    #[test]
    fn dark_at_boot_sites_hold_a_placeholder_until_their_first_publication() {
        // The mass-join foundation: a site whose path is down at t=0 boots
        // as an unschedulable placeholder column, and its first real
        // publication surfaces as a genuine one-site delta.
        let mut sim = Sim::new(14);
        let joiner = test_site(&mut sim, "joiner", 4);
        let steady = test_site(&mut sim, "steady", 2);
        let faults = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(100))]);
        let index = InformationIndex::start_windowed(
            &mut sim,
            vec![joiner, steady],
            SimDuration::from_secs(60),
            RefreshWindow {
                fanout: 4,
                latency: vec![SimDuration::from_secs(1); 2],
            },
            vec![faults],
            MembershipConfig::default(),
        );
        let boot = index.snapshot_arc();
        assert_eq!(boot.free_cpus(0), 0, "placeholder until first publish");
        assert!(!boot.accepts_queued(0));
        assert_eq!(boot.free_cpus(1), 2, "up-at-boot site has its real ad");

        // t=60 sweep: joiner's path still down — placeholder held.
        sim.run_until(SimTime::from_secs(65));
        let held = index.snapshot_arc();
        assert_eq!(held.free_cpus(0), 0);

        // t=120 sweep: path restored, first publication lands.
        sim.run_until(SimTime::from_secs(125));
        let joined = index.snapshot_arc();
        assert_eq!(joined.free_cpus(0), 4);
        assert!(joined.accepts_queued(0));
        assert_eq!(
            joined.dirty_since(held.epoch()).collect::<Vec<_>>(),
            vec![0],
            "the join is a one-site delta, not a full-snapshot invalidation"
        );
    }

    #[test]
    fn refresh_during_response_transit_does_not_leak_into_the_reply() {
        // Regression for the mid-flight freshness leak: the old query path
        // cloned the records when the response *arrived*, so a refresh that
        // fired while the reply was on the wire leaked data newer than the
        // MDS could have served.
        //
        // Timeline on a deliberately slow link (1 kbps, no jitter):
        //   request (250 B)  ≈ 2.0 s transit  → service 0.42 s ends ≈ 2.4 s
        //   response (1200 B) ≈ 9.6 s transit → delivery ≈ 12 s
        // A 10 000 s job submitted at t=0 occupies a node at ~1.5 s
        // (dispatch latency), and refreshes at 5 s and 10 s publish
        // FreeCpus = 1 — both land between service and delivery.
        let mut sim = Sim::new(9);
        let site = test_site(&mut sim, "uab", 2);
        let index =
            InformationIndex::start(&mut sim, vec![site.clone()], SimDuration::from_secs(5));
        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        let link = Link::new(LinkProfile {
            name: "drip".into(),
            base_latency_s: 0.0,
            jitter_s: 0.0,
            bandwidth_bps: 1_000.0,
            loss_prob: 0.0,
            per_msg_overhead_s: 0.0,
        });
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        let idx = index.clone();
        index.query(&mut sim, &link, move |sim, r| {
            let snap = r.unwrap();
            *g.borrow_mut() = Some((sim.now().as_secs_f64(), snap.free_cpus(0), idx.refreshes()));
        });
        sim.run_until(SimTime::from_secs(60));
        let (t, free, refreshes) = got.borrow().expect("query must complete");
        assert!(t > 10.0, "response delivery at {t}s should be after 10s");
        assert!(
            refreshes >= 2,
            "refreshes must have fired mid-flight (got {refreshes})"
        );
        assert_eq!(
            free, 2,
            "response must show the service-time snapshot (FreeCpus=2), \
             not the refreshed value that arrived while the reply was on the wire"
        );
    }
}
