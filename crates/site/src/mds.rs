//! The information system — a Globus MDS (GRIS/GIIS) model.
//!
//! Each site publishes its state to the project index on a refresh interval,
//! so the index's answer is *stale* by up to that interval. That staleness is
//! why CrossBroker's resource selection "contacts each remote site
//! individually and gets the most updated information" after the initial
//! discovery (§6.1) — the two-step cost structure Table I's text reports
//! (discovery ≈ 0.5 s, selection ≈ 3 s for 20 sites).
//!
//! The index stores its view as an epoch-tagged columnar [`AdSnapshot`]:
//! each refresh advances the snapshot with per-site deltas (unchanged sites
//! share the previous `Arc<Ad>` and keep their epoch) and a query response
//! is an `Arc` clone of the snapshot as it stood *when the index serviced
//! the request* — never data that arrived while the reply was on the wire.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use cg_jdl::Ad;
use cg_net::{Dir, Link, NetError};
use cg_sim::{Sim, SimDuration, SimTime};

use crate::columns::AdSnapshot;
use crate::site::Site;

/// One site's entry in the index — the row-shaped compatibility view
/// derived from the columnar snapshot by [`InformationIndex::snapshot`].
#[derive(Debug, Clone)]
pub struct SiteRecord {
    /// Site name.
    pub site: String,
    /// The machine ad as of the last refresh (possibly stale).
    pub ad: Ad,
    /// When the entry was refreshed.
    pub published_at: SimTime,
}

struct Inner {
    sites: Vec<Site>,
    snapshot: Arc<AdSnapshot>,
    refreshed_at: SimTime,
    refresh_interval: SimDuration,
    /// Index-side processing per query, seconds (LDAP search in 2006).
    query_cpu_s: f64,
    refreshes: u64,
}

/// The aggregated index (GIIS). Clones share state.
#[derive(Clone)]
pub struct InformationIndex {
    inner: Rc<RefCell<Inner>>,
}

impl InformationIndex {
    /// Builds the index over `sites` and starts the refresh cycle. The first
    /// snapshot is taken immediately; subsequent refreshes run every
    /// `refresh_interval`.
    pub fn start(sim: &mut Sim, sites: Vec<Site>, refresh_interval: SimDuration) -> Self {
        let ads: Vec<Ad> = sites.iter().map(Site::machine_ad).collect();
        let index = InformationIndex {
            inner: Rc::new(RefCell::new(Inner {
                sites,
                snapshot: Arc::new(AdSnapshot::build(ads)),
                refreshed_at: sim.now(),
                refresh_interval,
                query_cpu_s: 0.42,
                refreshes: 0,
            })),
        };
        index.schedule_refresh(sim);
        index
    }

    fn schedule_refresh(&self, sim: &mut Sim) {
        let this = self.clone();
        let interval = self.inner.borrow().refresh_interval;
        sim.schedule_in(interval, move |sim| {
            {
                let mut inner = this.inner.borrow_mut();
                let fresh: Vec<Ad> = inner.sites.iter().map(Site::machine_ad).collect();
                // Incremental advance: only sites whose ad changed get a new
                // epoch; the rest share the previous snapshot's allocations.
                inner.snapshot = Arc::new(inner.snapshot.advance(fresh));
                inner.refreshed_at = sim.now();
                inner.refreshes += 1;
            }
            this.schedule_refresh(sim);
        });
    }

    /// Queries the index over `link` (the broker→MDS path). The response
    /// carries every site record; its size scales with the number of sites.
    ///
    /// The delivered snapshot is the index's state at *service time* — the
    /// instant the MDS finished processing the request and serialized its
    /// answer. A refresh that fires while the response is in flight is
    /// invisible to this query (the staleness model the module header
    /// documents), and `resp_bytes` is sized from that same snapshot.
    pub fn query(
        &self,
        sim: &mut Sim,
        link: &Link,
        on: impl FnOnce(&mut Sim, Result<Arc<AdSnapshot>, NetError>) + 'static,
    ) {
        let service = SimDuration::from_secs_f64(self.inner.borrow().query_cpu_s);
        let this = self.clone();
        let link2 = link.clone();
        link.send(sim, Dir::AToB, 250, move |sim, r| match r {
            Err(e) => on(sim, Err(e)),
            Ok(()) => {
                sim.schedule_in(service, move |sim| {
                    // Service completes here: snapshot what the MDS can
                    // actually serve, before the reply hits the wire.
                    let snap = Arc::clone(&this.inner.borrow().snapshot);
                    let resp_bytes = 300 + 900 * snap.len() as u64; // LDAP entries
                    link2.send(sim, Dir::BToA, resp_bytes, move |sim, r| match r {
                        Err(e) => on(sim, Err(e)),
                        Ok(()) => on(sim, Ok(snap)),
                    });
                });
            }
        });
    }

    /// Number of completed refresh cycles.
    pub fn refreshes(&self) -> u64 {
        self.inner.borrow().refreshes
    }

    /// The current columnar snapshot, without network cost — the shape
    /// matchmaking consumes directly. An `Arc` clone, not a table copy.
    pub fn snapshot_arc(&self) -> Arc<AdSnapshot> {
        Arc::clone(&self.inner.borrow().snapshot)
    }

    /// Current (possibly stale) records, without network cost — for tests
    /// and reports; clones each ad out of the columnar store.
    pub fn snapshot(&self) -> Vec<SiteRecord> {
        let inner = self.inner.borrow();
        inner
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| SiteRecord {
                site: s.name().to_string(),
                ad: inner.snapshot.ad(i).clone(),
                published_at: inner.refreshed_at,
            })
            .collect()
    }

    /// The current records as an indexed ad list — the discovery-snapshot
    /// shape the map-based matchmaking path consumes (`filter_candidates`,
    /// and the parallel engine's `ParallelMatcher::new`). Site index `i` is
    /// the position in the index's site list, matching the broker's
    /// `SiteHandle` order.
    pub fn snapshot_ads(&self) -> Vec<(usize, Ad)> {
        self.inner.borrow().snapshot.indexed_ads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrms::{LocalJobSpec, Policy};
    use crate::site::{Site, SiteConfig};
    use cg_jdl::Value;
    use cg_net::LinkProfile;

    fn test_site(sim: &mut Sim, name: &str, nodes: usize) -> Site {
        let _ = sim;
        Site::new(SiteConfig {
            name: name.into(),
            nodes,
            policy: Policy::Fifo,
            ..SiteConfig::default()
        })
    }

    #[test]
    fn index_snapshots_go_stale_until_refresh() {
        let mut sim = Sim::new(1);
        let site = test_site(&mut sim, "uab", 2);
        let index =
            InformationIndex::start(&mut sim, vec![site.clone()], SimDuration::from_secs(300));
        // Initial snapshot: 2 free CPUs.
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2)
        );
        // Occupy a node; the index must NOT see it until refresh.
        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(100));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(2),
            "stale value before refresh"
        );
        sim.run_until(SimTime::from_secs(301));
        assert_eq!(
            index.snapshot()[0].ad.get("FreeCpus").unwrap(),
            &Value::Int(1),
            "fresh value after refresh"
        );
        assert_eq!(index.refreshes(), 1);
    }

    #[test]
    fn refresh_advances_epochs_only_for_changed_sites() {
        let mut sim = Sim::new(7);
        let busy = test_site(&mut sim, "busy", 2);
        let idle = test_site(&mut sim, "idle", 2);
        let index = InformationIndex::start(
            &mut sim,
            vec![busy.clone(), idle],
            SimDuration::from_secs(300),
        );
        let s0 = index.snapshot_arc();
        assert_eq!(s0.epoch(), 0);

        busy.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        sim.run_until(SimTime::from_secs(301));
        let s1 = index.snapshot_arc();
        assert_eq!(s1.epoch(), 1);
        assert_eq!(
            s1.dirty_since(s0.epoch()).collect::<Vec<_>>(),
            vec![0],
            "only the site whose ad changed is dirty"
        );
        assert_eq!(s1.free_cpus(0), 1);
        assert_eq!(s1.site_epoch(1), 0, "idle site keeps epoch 0");
        assert!(
            std::sync::Arc::ptr_eq(s0.ad_arc(1), s1.ad_arc(1)),
            "idle site's ad is shared across refreshes"
        );
    }

    #[test]
    fn snapshot_ads_indexes_sites_in_registration_order() {
        let mut sim = Sim::new(4);
        let sites: Vec<Site> = (0..3)
            .map(|i| test_site(&mut sim, &format!("s{i}"), 1 + i))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let ads = index.snapshot_ads();
        assert_eq!(ads.len(), 3);
        for (i, (idx, ad)) in ads.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(ad.get("FreeCpus").unwrap(), &Value::Int(1 + i as i64));
        }
    }

    #[test]
    fn query_cost_is_around_half_a_second_on_the_mds_path() {
        // Paper §6.1: discovery "takes around 0.5 seconds" with the index in
        // Germany and the broker in Spain.
        let mut sim = Sim::new(2);
        let sites: Vec<Site> = (0..20)
            .map(|i| test_site(&mut sim, &format!("site{i}"), 4))
            .collect();
        let index = InformationIndex::start(&mut sim, sites, SimDuration::from_secs(300));
        let link = Link::new(LinkProfile::wan_mds());
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        index.query(&mut sim, &link, move |sim, r| {
            assert_eq!(r.unwrap().len(), 20);
            *d.borrow_mut() = Some(sim.now().as_secs_f64());
        });
        sim.run_until(SimTime::from_secs(10));
        let t = done.borrow().unwrap();
        assert!(
            (0.2..0.9).contains(&t),
            "discovery took {t}s, expected ~0.5"
        );
    }

    #[test]
    fn query_fails_over_dead_link() {
        let mut sim = Sim::new(3);
        let site = test_site(&mut sim, "x", 1);
        let index = InformationIndex::start(&mut sim, vec![site], SimDuration::from_secs(300));
        let faults =
            cg_net::FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(100))]);
        let link = Link::with_faults(LinkProfile::wan_mds(), faults);
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        index.query(&mut sim, &link, move |_, r| {
            *g.borrow_mut() = Some(r.is_err());
        });
        sim.run_until(SimTime::from_secs(50));
        assert_eq!(*got.borrow(), Some(true));
    }

    #[test]
    fn refresh_during_response_transit_does_not_leak_into_the_reply() {
        // Regression for the mid-flight freshness leak: the old query path
        // cloned the records when the response *arrived*, so a refresh that
        // fired while the reply was on the wire leaked data newer than the
        // MDS could have served.
        //
        // Timeline on a deliberately slow link (1 kbps, no jitter):
        //   request (250 B)  ≈ 2.0 s transit  → service 0.42 s ends ≈ 2.4 s
        //   response (1200 B) ≈ 9.6 s transit → delivery ≈ 12 s
        // A 10 000 s job submitted at t=0 occupies a node at ~1.5 s
        // (dispatch latency), and refreshes at 5 s and 10 s publish
        // FreeCpus = 1 — both land between service and delivery.
        let mut sim = Sim::new(9);
        let site = test_site(&mut sim, "uab", 2);
        let index =
            InformationIndex::start(&mut sim, vec![site.clone()], SimDuration::from_secs(5));
        site.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        let link = Link::new(LinkProfile {
            name: "drip".into(),
            base_latency_s: 0.0,
            jitter_s: 0.0,
            bandwidth_bps: 1_000.0,
            loss_prob: 0.0,
            per_msg_overhead_s: 0.0,
        });
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        let idx = index.clone();
        index.query(&mut sim, &link, move |sim, r| {
            let snap = r.unwrap();
            *g.borrow_mut() = Some((sim.now().as_secs_f64(), snap.free_cpus(0), idx.refreshes()));
        });
        sim.run_until(SimTime::from_secs(60));
        let (t, free, refreshes) = got.borrow().expect("query must complete");
        assert!(t > 10.0, "response delivery at {t}s should be after 10s");
        assert!(
            refreshes >= 2,
            "refreshes must have fired mid-flight (got {refreshes})"
        );
        assert_eq!(
            free, 2,
            "response must show the service-time snapshot (FreeCpus=2), \
             not the refreshed value that arrived while the reply was on the wire"
        );
    }
}
