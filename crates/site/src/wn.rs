//! Worker-node descriptions.
//!
//! The CrossGrid testbed ranged "mostly from Pentium III to Pentium Xeon
//! based systems, with RAM memories up to 2GB" (§6); node presets mirror
//! that mix so matchmaking has real heterogeneity to chew on.

use serde::{Deserialize, Serialize};

/// Hardware/software description of one worker node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// CPU architecture string advertised to MDS (e.g. `"i686"`).
    pub arch: String,
    /// Operating system string (e.g. `"LINUX-2.4"`).
    pub op_sys: String,
    /// CPUs on the node.
    pub cpus: u32,
    /// Physical memory, MB.
    pub memory_mb: u32,
    /// Relative CPU speed (1.0 = the paper's reference Pentium III).
    pub speed_factor: f64,
}

impl NodeSpec {
    /// A Pentium III class node — the testbed's slow end and our reference.
    pub fn pentium_iii() -> Self {
        NodeSpec {
            arch: "i686".into(),
            op_sys: "LINUX-2.4".into(),
            cpus: 1,
            memory_mb: 512,
            speed_factor: 1.0,
        }
    }

    /// A Pentium Xeon class node — the testbed's fast end.
    pub fn pentium_xeon() -> Self {
        NodeSpec {
            arch: "i686".into(),
            op_sys: "LINUX-2.4".into(),
            cpus: 2,
            memory_mb: 2048,
            speed_factor: 1.8,
        }
    }

    /// Scales a nominal CPU burst to this node's wall-clock time.
    pub fn scale_cpu(&self, nominal_secs: f64) -> f64 {
        nominal_secs / self.speed_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_testbed_description() {
        let p3 = NodeSpec::pentium_iii();
        let xeon = NodeSpec::pentium_xeon();
        assert_eq!(p3.memory_mb, 512);
        assert_eq!(xeon.memory_mb, 2048, "RAM up to 2 GB");
        assert!(xeon.speed_factor > p3.speed_factor);
    }

    #[test]
    fn cpu_scaling_divides_by_speed() {
        let xeon = NodeSpec::pentium_xeon();
        assert!((xeon.scale_cpu(1.8) - 1.0).abs() < 1e-12);
        let p3 = NodeSpec::pentium_iii();
        assert_eq!(p3.scale_cpu(2.5), 2.5);
    }
}
