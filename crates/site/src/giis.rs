//! Two-tier GIIS aggregation — the hierarchy that takes the information
//! system from tens of sites to a thousand.
//!
//! The flat model ([`InformationIndex`]) rebuilds one snapshot over *all*
//! sites every refresh, so both refresh fan-out and downstream matchmaking
//! invalidation scale with the total grid. Globus MDS solved this with a
//! GRIS→GIIS tree: site-level reporters register into regional indexes,
//! which register into a root index. This module models that shape with
//! two tiers:
//!
//! * **Leaves** — one windowed [`InformationIndex`] per region (at most
//!   `branching` sites each), sweeping its own sites concurrently.
//! * **Root** — a single merged columnar [`AdSnapshot`] over the whole
//!   grid, advanced only by *deltas*: after each leaf sweep the leaf's
//!   `dirty_since(last-seen-epoch)` set is remapped into global site
//!   indexes and shipped up the tree with `uplink_latency`; a sweep that
//!   changed nothing ships nothing.
//!
//! A refresh or membership change at one site therefore costs the root
//! O(changed sites), not O(all sites) — and the broker's incremental
//! matchmaking (`dirty_since` on the root snapshot) inherits the same
//! bound.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use cg_jdl::Ad;
use cg_net::FaultSchedule;
use cg_sim::{Sim, SimDuration};

use crate::columns::AdSnapshot;
use crate::mds::{InformationIndex, RefreshWindow, SweepReport};
use crate::membership::{MembershipConfig, MembershipState, Transition};
use crate::site::Site;

/// Shape of the two-tier hierarchy.
#[derive(Debug, Clone)]
pub struct GiisConfig {
    /// Maximum sites per leaf index (min 1). Sites are partitioned into
    /// contiguous leaves in registration order, so global site index `g`
    /// lives in leaf `g / branching` at local index `g % branching`.
    pub branching: usize,
    /// Leaf refresh interval (each leaf sweeps on this period).
    pub refresh_interval: SimDuration,
    /// Per-leaf windowed-refresh parameters; `window.latency` is indexed
    /// by *global* site index and sliced per leaf.
    pub window: RefreshWindow,
    /// Leaf→root propagation latency for delta and membership uplinks.
    pub uplink_latency: SimDuration,
    /// Failure-detector thresholds, applied per leaf.
    pub membership: MembershipConfig,
}

impl Default for GiisConfig {
    fn default() -> Self {
        GiisConfig {
            branching: 32,
            refresh_interval: SimDuration::from_secs(300),
            window: RefreshWindow::default(),
            uplink_latency: SimDuration::from_secs_f64(0.05),
            membership: MembershipConfig::default(),
        }
    }
}

/// One delta merged into the root snapshot, reported to the observer
/// after the merge settles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GiisDeltaReport {
    /// Which leaf shipped the delta.
    pub leaf: usize,
    /// Root snapshot epoch after the merge.
    pub root_epoch: u64,
    /// Number of sites the delta touched (always > 0 — empty sweeps ship
    /// nothing).
    pub changed: usize,
    /// True when the delta came from a late-reply merge rather than a
    /// sweep close.
    pub late: bool,
}

/// Per-leaf health counters, for reports and gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafStats {
    /// Sites in this leaf.
    pub sites: usize,
    /// Completed sweeps.
    pub refreshes: u64,
    /// Late replies merged after their sweep closed.
    pub late_merges: u64,
    /// Site-sweeps amnestied at forced closes.
    pub amnestied: u64,
}

type DeltaObserver = Rc<dyn Fn(&mut Sim, &GiisDeltaReport)>;
type MembershipObserver = Rc<dyn Fn(&mut Sim, usize, &Transition)>;

struct RootInner {
    snapshot: Arc<AdSnapshot>,
    /// Last leaf epoch already folded into the root, per leaf.
    leaf_seen: Vec<u64>,
    /// Root's (uplink-delayed) view of per-site schedulability.
    schedulable: Vec<bool>,
    deltas_merged: u64,
    delta_sites: u64,
    observer: Option<DeltaObserver>,
    membership_observer: Option<MembershipObserver>,
}

/// The root aggregator. Clones share state.
#[derive(Clone)]
pub struct GiisRoot {
    leaves: Rc<Vec<InformationIndex>>,
    /// Global site index of each leaf's first site.
    leaf_base: Rc<Vec<usize>>,
    branching: usize,
    uplink_latency: SimDuration,
    inner: Rc<RefCell<RootInner>>,
}

impl GiisRoot {
    /// Partitions `sites` into contiguous leaves of at most
    /// `config.branching` sites, starts a windowed [`InformationIndex`]
    /// per leaf, and wires each leaf's sweep and membership observers to
    /// propagate deltas and transitions up to the root with
    /// `config.uplink_latency`. `publish_faults` is indexed by global
    /// site index, like `config.window.latency`.
    pub fn start(
        sim: &mut Sim,
        sites: Vec<Site>,
        config: &GiisConfig,
        publish_faults: Vec<FaultSchedule>,
    ) -> Self {
        let branching = config.branching.max(1);
        let n = sites.len();
        let mut leaves = Vec::new();
        let mut leaf_base = Vec::new();
        let mut site_iter = sites.into_iter();
        let mut base = 0;
        while base < n {
            let chunk: Vec<Site> = site_iter.by_ref().take(branching).collect();
            let take = chunk.len();
            let window = RefreshWindow {
                fanout: config.window.fanout,
                latency: slice_or_empty(&config.window.latency, base, take),
            };
            let faults = slice_or_empty(&publish_faults, base, take);
            leaves.push(InformationIndex::start_windowed(
                sim,
                chunk,
                config.refresh_interval,
                window,
                faults,
                config.membership,
            ));
            leaf_base.push(base);
            base += take;
        }

        // Boot snapshot: the concatenation of the leaves' boot snapshots,
        // in global order — including placeholder columns for sites whose
        // publish path is dark at t=0.
        let ads: Vec<Ad> = leaves
            .iter()
            .flat_map(|leaf| {
                let snap = leaf.snapshot_arc();
                (0..snap.len())
                    .map(move |i| snap.ad(i).clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        let root = GiisRoot {
            leaf_base: Rc::new(leaf_base),
            branching,
            uplink_latency: config.uplink_latency,
            inner: Rc::new(RefCell::new(RootInner {
                snapshot: Arc::new(AdSnapshot::build(ads)),
                leaf_seen: vec![0; leaves.len()],
                schedulable: vec![true; n],
                deltas_merged: 0,
                delta_sites: 0,
                observer: None,
                membership_observer: None,
            })),
            leaves: Rc::new(leaves),
        };
        for (l, leaf) in root.leaves.iter().enumerate() {
            root.wire_leaf(l, leaf);
        }
        root
    }

    /// Hooks one leaf's sweep and membership observers to the root. The
    /// observers capture the root's inner state only (never a leaf
    /// handle), so no `Rc` cycle forms.
    fn wire_leaf(&self, l: usize, leaf: &InformationIndex) {
        let base = self.leaf_base[l];
        let inner = Rc::clone(&self.inner);
        let uplink = self.uplink_latency;
        leaf.set_sweep_observer(move |sim, report: &SweepReport, snap| {
            let changes: Vec<(usize, Arc<Ad>)> = {
                let mut r = inner.borrow_mut();
                let seen = r.leaf_seen[l];
                r.leaf_seen[l] = snap.epoch();
                snap.dirty_since(seen)
                    .map(|i| (base + i, Arc::clone(snap.ad_arc(i))))
                    .collect()
            };
            if changes.is_empty() {
                return; // nothing changed → nothing ships up the tree
            }
            let inner = Rc::clone(&inner);
            let late = report.late;
            sim.schedule_in(uplink, move |sim| {
                let (report, observer) = {
                    let mut r = inner.borrow_mut();
                    r.snapshot = Arc::new(r.snapshot.apply_delta(&changes));
                    r.deltas_merged += 1;
                    r.delta_sites += changes.len() as u64;
                    (
                        GiisDeltaReport {
                            leaf: l,
                            root_epoch: r.snapshot.epoch(),
                            changed: changes.len(),
                            late,
                        },
                        r.observer.clone(),
                    )
                };
                if let Some(observer) = observer {
                    observer(sim, &report);
                }
            });
        });

        let inner = Rc::clone(&self.inner);
        let uplink = self.uplink_latency;
        leaf.set_membership_observer(move |sim, i, tr| {
            let global = base + i;
            let schedulable = !matches!(tr, Transition::Suspected { .. } | Transition::Died);
            let inner = Rc::clone(&inner);
            let tr = *tr;
            sim.schedule_in(uplink, move |sim| {
                let observer = {
                    let mut r = inner.borrow_mut();
                    r.schedulable[global] = schedulable;
                    r.membership_observer.clone()
                };
                if let Some(observer) = observer {
                    observer(sim, global, &tr);
                }
            });
        });
    }

    /// The merged grid-wide columnar snapshot — an `Arc` clone, not a
    /// table copy. Its `dirty_since` carries the same O(changed-sites)
    /// bound the leaves publish.
    pub fn snapshot_arc(&self) -> Arc<AdSnapshot> {
        Arc::clone(&self.inner.borrow().snapshot)
    }

    /// Total sites across all leaves.
    pub fn len(&self) -> usize {
        self.inner.borrow().schedulable.len()
    }

    /// True when the hierarchy aggregates no sites.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The leaf indexes, in partition order — for tests and reports.
    pub fn leaves(&self) -> &[InformationIndex] {
        &self.leaves
    }

    /// Maps a global site index to `(leaf, local-index-within-leaf)`.
    pub fn leaf_of(&self, global: usize) -> (usize, usize) {
        (global / self.branching, global % self.branching)
    }

    /// The root's uplink-delayed view of whether the site may be leased
    /// or dispatched onto.
    pub fn is_schedulable(&self, global: usize) -> bool {
        self.inner.borrow().schedulable[global]
    }

    /// The site's membership state, read directly from its leaf (the
    /// leaf's instant view, not the uplink-delayed one).
    pub fn membership_state(&self, global: usize) -> MembershipState {
        let (l, i) = self.leaf_of(global);
        self.leaves[l].membership_state(i)
    }

    /// Number of deltas merged into the root.
    pub fn deltas_merged(&self) -> u64 {
        self.inner.borrow().deltas_merged
    }

    /// Cumulative sites touched across all merged deltas — the hierarchy's
    /// total propagation work. Under localized churn this grows with the
    /// churned set, not the grid.
    pub fn delta_sites(&self) -> u64 {
        self.inner.borrow().delta_sites
    }

    /// Per-leaf health counters, in partition order.
    pub fn leaf_stats(&self) -> Vec<LeafStats> {
        self.leaves
            .iter()
            .zip(self.leaf_base.iter().enumerate())
            .map(|(leaf, (l, &base))| {
                let next = self
                    .leaf_base
                    .get(l + 1)
                    .copied()
                    .unwrap_or_else(|| self.len());
                LeafStats {
                    sites: next - base,
                    refreshes: leaf.refreshes(),
                    late_merges: leaf.late_merges(),
                    amnestied: leaf.amnestied(),
                }
            })
            .collect()
    }

    /// Registers the single delta observer, replacing any previous one —
    /// invoked after each delta merges into the root snapshot.
    pub fn set_delta_observer(&self, observer: impl Fn(&mut Sim, &GiisDeltaReport) + 'static) {
        self.inner.borrow_mut().observer = Some(Rc::new(observer));
    }

    /// Registers the single membership observer, replacing any previous
    /// one — invoked with *global* site indexes, after the transition has
    /// propagated up the tree (i.e. `uplink_latency` after the leaf saw
    /// it).
    pub fn set_membership_observer(
        &self,
        observer: impl Fn(&mut Sim, usize, &Transition) + 'static,
    ) {
        self.inner.borrow_mut().membership_observer = Some(Rc::new(observer));
    }
}

fn slice_or_empty<T: Clone>(v: &[T], base: usize, len: usize) -> Vec<T> {
    if base >= v.len() {
        return Vec::new();
    }
    v[base..(base + len).min(v.len())].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrms::{LocalJobSpec, Policy};
    use crate::site::{Site, SiteConfig};
    use cg_sim::SimTime;

    fn grid(n: usize) -> Vec<Site> {
        (0..n)
            .map(|i| {
                Site::new(SiteConfig {
                    name: format!("site{i:03}"),
                    nodes: 2 + i % 3,
                    policy: Policy::Fifo,
                    ..SiteConfig::default()
                })
            })
            .collect()
    }

    fn test_config() -> GiisConfig {
        GiisConfig {
            branching: 3,
            refresh_interval: SimDuration::from_secs(60),
            uplink_latency: SimDuration::from_secs(1),
            ..GiisConfig::default()
        }
    }

    #[test]
    fn sites_partition_into_leaves_in_global_order() {
        let mut sim = Sim::new(21);
        let root = GiisRoot::start(&mut sim, grid(8), &test_config(), Vec::new());
        assert_eq!(root.leaves().len(), 3, "ceil(8/3) leaves");
        assert_eq!(root.len(), 8);
        let snap = root.snapshot_arc();
        for g in 0..8 {
            assert_eq!(snap.site_name(g), Some(format!("site{g:03}").as_str()));
            let (l, i) = root.leaf_of(g);
            assert_eq!((l, i), (g / 3, g % 3));
        }
    }

    #[test]
    fn one_changed_site_ships_a_one_site_delta() {
        let mut sim = Sim::new(22);
        let sites = grid(9);
        let busy = sites[4].clone(); // leaf 1, local index 1
        let root = GiisRoot::start(&mut sim, sites, &test_config(), Vec::new());
        let boot = root.snapshot_arc();
        let seen: Rc<RefCell<Vec<GiisDeltaReport>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        root.set_delta_observer(move |_, r| s.borrow_mut().push(*r));

        busy.lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(10_000)),
            |_, _, _| {},
        );
        // Leaf sweeps at t=60 close instantly (zero publish latency); the
        // one leaf with a change ships its delta, landing at t=61.
        sim.run_until(SimTime::from_secs(62));
        assert_eq!(root.deltas_merged(), 1, "quiet leaves ship nothing");
        assert_eq!(root.delta_sites(), 1);
        let reports = seen.borrow();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].leaf, 1);
        assert_eq!(reports[0].changed, 1);
        assert!(!reports[0].late);

        let snap = root.snapshot_arc();
        assert_eq!(
            snap.dirty_since(boot.epoch()).collect::<Vec<_>>(),
            vec![4],
            "root invalidation is exactly the changed site"
        );
        assert_eq!(snap.free_cpus(4), boot.free_cpus(4) - 1);
        // Every unchanged site still shares its boot allocation.
        for g in (0..9).filter(|&g| g != 4) {
            assert!(Arc::ptr_eq(boot.ad_arc(g), snap.ad_arc(g)));
        }
    }

    #[test]
    fn membership_transitions_surface_globally_after_the_uplink() {
        let mut sim = Sim::new(23);
        // Site 7 (leaf 2, local 1) never publishes: two missed sweeps at
        // t=60 and t=120 suspect it at the leaf; the root hears one
        // uplink later.
        let mut faults = vec![FaultSchedule::default(); 8];
        faults[7] = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(100_000))]);
        let root = GiisRoot::start(&mut sim, grid(8), &test_config(), faults);
        let seen: Rc<RefCell<Vec<(usize, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        root.set_membership_observer(move |_, g, tr| s.borrow_mut().push((g, *tr)));

        sim.run_until(SimTime::from_secs(130));
        assert_eq!(root.membership_state(7), MembershipState::Suspect);
        assert!(!root.is_schedulable(7), "uplink-delayed view caught up");
        assert!(root.is_schedulable(6));
        assert!(
            seen.borrow()
                .iter()
                .any(|(g, tr)| *g == 7 && matches!(tr, Transition::Suspected { .. })),
            "{:?}",
            seen.borrow()
        );
    }

    #[test]
    fn mass_join_marks_exactly_the_joining_sites_dirty() {
        let mut sim = Sim::new(24);
        // Sites 6..9 are dark at boot (placeholder columns) and join when
        // their publish paths come up at t=70 — between the first sweep
        // (t=60, still dark) and the second (t=120).
        let n = 9;
        let mut faults = vec![FaultSchedule::default(); n];
        for f in faults.iter_mut().skip(6) {
            *f = FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(70))]);
        }
        let root = GiisRoot::start(&mut sim, grid(n), &test_config(), faults);
        let boot = root.snapshot_arc();
        for g in 6..n {
            assert_eq!(boot.free_cpus(g), 0, "dark site boots as placeholder");
        }
        sim.run_until(SimTime::from_secs(122));
        let snap = root.snapshot_arc();
        let mut dirty: Vec<usize> = snap.dirty_since(boot.epoch()).collect();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![6, 7, 8], "joiners and only joiners are dirty");
        assert_eq!(root.delta_sites(), 3, "no full-snapshot invalidation");
        for g in 6..n {
            assert!(snap.free_cpus(g) > 0, "joined site published its real ad");
        }
    }
}
