//! Named counters, gauges and histograms shared across the broker stack.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use cg_sim::{OnlineStats, SampleSet};

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, SampleSet>,
}

/// A process-wide metrics registry. Clones share storage; all operations
/// are `&self` and thread-safe, so simulation code and the real console
/// threads can feed the same registry.
///
/// Histograms retain raw samples ([`SampleSet`]) so percentiles stay exact;
/// [`MetricsRegistry::histogram_stats`] condenses one to moment statistics
/// ([`OnlineStats`]) for cheap reporting.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Registry>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Registry> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds 1 to counter `name` (creating it at zero).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Last value set on gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Moment statistics of histogram `name`, `None` when it has no samples.
    pub fn histogram_stats(&self, name: &str) -> Option<OnlineStats> {
        let inner = self.lock();
        let set = inner.histograms.get(name)?;
        if set.is_empty() {
            return None;
        }
        let mut stats = OnlineStats::new();
        for &x in set.samples() {
            stats.record(x);
        }
        Some(stats)
    }

    /// The `p`-th percentile of histogram `name` (`p` in 0..=100).
    pub fn percentile(&self, name: &str, p: f64) -> Option<f64> {
        self.lock().histograms.get(name)?.percentile(p)
    }

    /// Names of all counters touched so far.
    pub fn counter_names(&self) -> Vec<String> {
        self.lock().counters.keys().cloned().collect()
    }

    /// A human-readable dump of everything in the registry, sorted by name.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let inner = self.lock();
        let mut out = String::new();
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, v) in &inner.gauges {
            let _ = writeln!(out, "gauge {name} = {v}");
        }
        for (name, set) in &inner.histograms {
            let _ = writeln!(out, "histogram {name}: {}", set.summary());
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
    }

    #[test]
    fn histograms_expose_moments_and_percentiles() {
        let m = MetricsRegistry::new();
        assert!(m.histogram_stats("h").is_none());
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.observe("h", x);
        }
        let stats = m.histogram_stats("h").unwrap();
        assert_eq!(stats.count(), 4);
        assert!((stats.mean() - 2.5).abs() < 1e-12);
        assert_eq!(m.percentile("h", 0.0), Some(1.0));
        assert_eq!(m.percentile("h", 100.0), Some(4.0));
    }

    #[test]
    fn clones_share_storage() {
        let m = MetricsRegistry::new();
        let n = m.clone();
        n.inc("shared");
        assert_eq!(m.counter("shared"), 1);
    }

    #[test]
    fn summary_lists_everything() {
        let m = MetricsRegistry::new();
        m.inc("a.count");
        m.set_gauge("b.gauge", 7.0);
        m.observe("c.hist", 1.0);
        let s = m.summary();
        assert!(s.contains("counter a.count = 1"));
        assert!(s.contains("gauge b.gauge = 7"));
        assert!(s.contains("histogram c.hist"));
    }
}
