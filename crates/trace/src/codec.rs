//! Compact binary encoding of [`TimedEvent`] for the durable journal.
//!
//! The workspace's `serde` is a no-op offline shim, so — exactly like the
//! JSON rendering in [`crate::event`] — the wire format is written by hand
//! and lives next to the enum: adding an [`Event`] variant without updating
//! the codec fails to compile via the exhaustive matches below.
//!
//! Layout: `at_ns: u64 LE`, `seq: u64 LE`, `tag: u8`, then the variant's
//! fields in declaration order. Scalars are little-endian; booleans are one
//! byte (0/1); `f64` is its IEEE-754 bit pattern; strings are a `u32 LE`
//! byte length followed by UTF-8 bytes.

use crate::event::{Event, TimedEvent};
use cg_sim::SimTime;
use std::fmt;

/// A structural decode failure. Deliberately small and `'static`: the
/// journal wraps it with the file offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended inside a field.
    UnexpectedEof,
    /// An unknown event tag byte.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A versioned blob had an unknown version byte.
    BadVersion(u8),
    /// Decoding finished before the end of the buffer.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "record truncated mid-field"),
            CodecError::BadTag(t) => write!(f, "unknown event tag {t}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadVersion(v) => write!(f, "unknown blob version {v}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after record"),
        }
    }
}

impl std::error::Error for CodecError {}

// ── primitive writers ───────────────────────────────────────────────────

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(s.as_bytes());
}

// ── cursor-based readers ────────────────────────────────────────────────

/// A bounds-checked read cursor over a byte slice.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

// ── event codec ─────────────────────────────────────────────────────────

/// Appends the binary encoding of `ev` to `out`.
pub fn encode_event(ev: &TimedEvent, out: &mut Vec<u8>) {
    put_u64(out, ev.at.as_nanos());
    put_u64(out, ev.seq);
    match &ev.event {
        Event::JobSubmitted {
            job,
            user,
            interactive,
        } => {
            put_u8(out, 0);
            put_u64(out, *job);
            put_str(out, user);
            put_bool(out, *interactive);
        }
        Event::JobAd {
            job,
            jdl,
            runtime_ns,
        } => {
            put_u8(out, 1);
            put_u64(out, *job);
            put_str(out, jdl);
            put_u64(out, *runtime_ns);
        }
        Event::JobQueued { job } => {
            put_u8(out, 2);
            put_u64(out, *job);
        }
        Event::QueueRetry { job } => {
            put_u8(out, 3);
            put_u64(out, *job);
        }
        Event::LeaseGranted {
            job,
            target,
            until_ns,
        } => {
            put_u8(out, 4);
            put_u64(out, *job);
            put_str(out, target);
            put_u64(out, *until_ns);
        }
        Event::JobDispatched {
            job,
            target,
            backend,
        } => {
            put_u8(out, 5);
            put_u64(out, *job);
            put_str(out, target);
            put_str(out, backend);
        }
        Event::JobStarted { job } => {
            put_u8(out, 6);
            put_u64(out, *job);
        }
        Event::JobResubmitted { job, attempt } => {
            put_u8(out, 7);
            put_u64(out, *job);
            put_u32(out, *attempt);
        }
        Event::JobBackoff {
            job,
            attempt,
            delay_ns,
        } => {
            put_u8(out, 8);
            put_u64(out, *job);
            put_u32(out, *attempt);
            put_u64(out, *delay_ns);
        }
        Event::JobFinished { job } => {
            put_u8(out, 9);
            put_u64(out, *job);
        }
        Event::JobFailed { job, reason } => {
            put_u8(out, 10);
            put_u64(out, *job);
            put_str(out, reason);
        }
        Event::JobCancelled { job } => {
            put_u8(out, 11);
            put_u64(out, *job);
        }
        Event::JdlDiagnostic {
            job,
            severity,
            code,
            message,
        } => {
            put_u8(out, 12);
            put_u64(out, *job);
            put_str(out, severity);
            put_str(out, code);
            put_str(out, message);
        }
        Event::JdlRejected { job, errors } => {
            put_u8(out, 13);
            put_u64(out, *job);
            put_u32(out, *errors);
        }
        Event::FairShareTick { usages } => {
            put_u8(out, 14);
            put_u32(out, *usages);
        }
        Event::PriorityChanged { usage, kind } => {
            put_u8(out, 15);
            put_u64(out, *usage);
            put_str(out, kind);
        }
        Event::AgentDeployed { agent, site } => {
            put_u8(out, 16);
            put_u64(out, *agent);
            put_str(out, site);
        }
        Event::AgentReady { agent } => {
            put_u8(out, 17);
            put_u64(out, *agent);
        }
        Event::AgentDied {
            agent,
            reason,
            voluntary,
        } => {
            put_u8(out, 18);
            put_u64(out, *agent);
            put_str(out, reason);
            put_bool(out, *voluntary);
        }
        Event::AgentBatchFinished { agent } => {
            put_u8(out, 19);
            put_u64(out, *agent);
        }
        Event::BatchYielded {
            agent,
            job,
            performance_loss,
        } => {
            put_u8(out, 20);
            put_u64(out, *agent);
            put_u64(out, *job);
            put_u32(out, *performance_loss);
        }
        Event::BatchRestored { agent, job } => {
            put_u8(out, 21);
            put_u64(out, *agent);
            put_u64(out, *job);
        }
        Event::SlotStarted {
            machine,
            interactive,
        } => {
            put_u8(out, 22);
            put_str(out, machine);
            put_bool(out, *interactive);
        }
        Event::SlotPreempted {
            machine,
            batch_rate_pct,
        } => {
            put_u8(out, 23);
            put_str(out, machine);
            put_u32(out, *batch_rate_pct);
        }
        Event::SlotRestored { machine } => {
            put_u8(out, 24);
            put_str(out, machine);
        }
        Event::SlotFinished {
            machine,
            interactive,
        } => {
            put_u8(out, 25);
            put_str(out, machine);
            put_bool(out, *interactive);
        }
        Event::ConsoleConnected { job } => {
            put_u8(out, 26);
            put_u64(out, *job);
        }
        Event::ConsoleRetry { job, attempt } => {
            put_u8(out, 27);
            put_u64(out, *job);
            put_u32(out, *attempt);
        }
        Event::ConsoleReady { job } => {
            put_u8(out, 28);
            put_u64(out, *job);
        }
        Event::SpoolAppend { stream, seq } => {
            put_u8(out, 29);
            put_str(out, stream);
            put_u64(out, *seq);
        }
        Event::SpoolAck { stream, seq } => {
            put_u8(out, 30);
            put_str(out, stream);
            put_u64(out, *seq);
        }
        Event::SpoolReplay {
            stream,
            after,
            records,
        } => {
            put_u8(out, 31);
            put_str(out, stream);
            put_u64(out, *after);
            put_u32(out, *records);
        }
        Event::BufferFlush {
            stream,
            reason,
            bytes,
        } => {
            put_u8(out, 32);
            put_str(out, stream);
            put_str(out, reason);
            put_u64(out, *bytes);
        }
        Event::ShadowConnected { rank } => {
            put_u8(out, 33);
            put_u32(out, *rank);
        }
        Event::ShadowDisconnected { rank } => {
            put_u8(out, 34);
            put_u32(out, *rank);
        }
        Event::LrmsQueued { site, job } => {
            put_u8(out, 35);
            put_str(out, site);
            put_u64(out, *job);
        }
        Event::LrmsStarted { site, job, nodes } => {
            put_u8(out, 36);
            put_str(out, site);
            put_u64(out, *job);
            put_u32(out, *nodes);
        }
        Event::LrmsFinished { site, job } => {
            put_u8(out, 37);
            put_str(out, site);
            put_u64(out, *job);
        }
        Event::LrmsKilled { site, job, reason } => {
            put_u8(out, 38);
            put_str(out, site);
            put_u64(out, *job);
            put_str(out, reason);
        }
        Event::DispositionEvicted { site, job } => {
            put_u8(out, 51);
            put_str(out, site);
            put_u64(out, *job);
        }
        Event::BrokerRecovered {
            jobs,
            requeued,
            resubmitted,
            agents_lost,
        } => {
            put_u8(out, 39);
            put_u64(out, *jobs);
            put_u64(out, *requeued);
            put_u64(out, *resubmitted);
            put_u64(out, *agents_lost);
        }
        Event::Measurement { name, value } => {
            put_u8(out, 40);
            put_str(out, name);
            put_f64(out, *value);
        }
        Event::RankNanDiscarded { job, site } => {
            put_u8(out, 41);
            put_u64(out, *job);
            put_str(out, site);
        }
        Event::PolicyDecision {
            job,
            policy,
            site,
            score,
        } => {
            put_u8(out, 42);
            put_u64(out, *job);
            put_str(out, policy);
            put_str(out, site);
            put_f64(out, *score);
        }
        Event::SiteSuspect {
            site,
            missed_refreshes,
            failed_queries,
        } => {
            put_u8(out, 43);
            put_str(out, site);
            put_u32(out, *missed_refreshes);
            put_u32(out, *failed_queries);
        }
        Event::SiteDead { site, in_flight } => {
            put_u8(out, 44);
            put_str(out, site);
            put_u32(out, *in_flight);
        }
        Event::SiteRejoin { site, down_ns } => {
            put_u8(out, 45);
            put_str(out, site);
            put_u64(out, *down_ns);
        }
        Event::LiveQueryTimeout { job, site, attempt } => {
            put_u8(out, 46);
            put_u64(out, *job);
            put_str(out, site);
            put_u32(out, *attempt);
        }
        Event::QueryRetry {
            job,
            site,
            attempt,
            delay_ns,
        } => {
            put_u8(out, 47);
            put_u64(out, *job);
            put_str(out, site);
            put_u32(out, *attempt);
            put_u64(out, *delay_ns);
        }
        Event::DegradedMatch { job, staleness_ns } => {
            put_u8(out, 48);
            put_u64(out, *job);
            put_u64(out, *staleness_ns);
        }
        Event::GiisDelta {
            leaf,
            epoch,
            changed,
        } => {
            put_u8(out, 49);
            put_u32(out, *leaf);
            put_u64(out, *epoch);
            put_u32(out, *changed);
        }
        Event::RefreshSweep {
            refreshed,
            missed,
            amnestied,
            late_merges,
        } => {
            put_u8(out, 50);
            put_u32(out, *refreshed);
            put_u32(out, *missed);
            put_u32(out, *amnestied);
            put_u32(out, *late_merges);
        }
    }
}

/// Decodes one [`TimedEvent`] from an exact-length buffer.
///
/// # Errors
/// Returns a [`CodecError`] when the buffer is truncated, carries an unknown
/// tag, holds invalid UTF-8, or has bytes left over after the event.
pub fn decode_event(buf: &[u8]) -> Result<TimedEvent, CodecError> {
    let mut c = Cursor::new(buf);
    let at = SimTime::from_nanos(c.u64()?);
    let seq = c.u64()?;
    let tag = c.u8()?;
    let event = match tag {
        0 => Event::JobSubmitted {
            job: c.u64()?,
            user: c.str()?,
            interactive: c.bool()?,
        },
        1 => Event::JobAd {
            job: c.u64()?,
            jdl: c.str()?,
            runtime_ns: c.u64()?,
        },
        2 => Event::JobQueued { job: c.u64()? },
        3 => Event::QueueRetry { job: c.u64()? },
        4 => Event::LeaseGranted {
            job: c.u64()?,
            target: c.str()?,
            until_ns: c.u64()?,
        },
        5 => Event::JobDispatched {
            job: c.u64()?,
            target: c.str()?,
            backend: c.str()?,
        },
        6 => Event::JobStarted { job: c.u64()? },
        7 => Event::JobResubmitted {
            job: c.u64()?,
            attempt: c.u32()?,
        },
        8 => Event::JobBackoff {
            job: c.u64()?,
            attempt: c.u32()?,
            delay_ns: c.u64()?,
        },
        9 => Event::JobFinished { job: c.u64()? },
        10 => Event::JobFailed {
            job: c.u64()?,
            reason: c.str()?,
        },
        11 => Event::JobCancelled { job: c.u64()? },
        12 => Event::JdlDiagnostic {
            job: c.u64()?,
            severity: c.str()?,
            code: c.str()?,
            message: c.str()?,
        },
        13 => Event::JdlRejected {
            job: c.u64()?,
            errors: c.u32()?,
        },
        14 => Event::FairShareTick { usages: c.u32()? },
        15 => Event::PriorityChanged {
            usage: c.u64()?,
            kind: c.str()?,
        },
        16 => Event::AgentDeployed {
            agent: c.u64()?,
            site: c.str()?,
        },
        17 => Event::AgentReady { agent: c.u64()? },
        18 => Event::AgentDied {
            agent: c.u64()?,
            reason: c.str()?,
            voluntary: c.bool()?,
        },
        19 => Event::AgentBatchFinished { agent: c.u64()? },
        20 => Event::BatchYielded {
            agent: c.u64()?,
            job: c.u64()?,
            performance_loss: c.u32()?,
        },
        21 => Event::BatchRestored {
            agent: c.u64()?,
            job: c.u64()?,
        },
        22 => Event::SlotStarted {
            machine: c.str()?,
            interactive: c.bool()?,
        },
        23 => Event::SlotPreempted {
            machine: c.str()?,
            batch_rate_pct: c.u32()?,
        },
        24 => Event::SlotRestored { machine: c.str()? },
        25 => Event::SlotFinished {
            machine: c.str()?,
            interactive: c.bool()?,
        },
        26 => Event::ConsoleConnected { job: c.u64()? },
        27 => Event::ConsoleRetry {
            job: c.u64()?,
            attempt: c.u32()?,
        },
        28 => Event::ConsoleReady { job: c.u64()? },
        29 => Event::SpoolAppend {
            stream: c.str()?,
            seq: c.u64()?,
        },
        30 => Event::SpoolAck {
            stream: c.str()?,
            seq: c.u64()?,
        },
        31 => Event::SpoolReplay {
            stream: c.str()?,
            after: c.u64()?,
            records: c.u32()?,
        },
        32 => Event::BufferFlush {
            stream: c.str()?,
            reason: c.str()?,
            bytes: c.u64()?,
        },
        33 => Event::ShadowConnected { rank: c.u32()? },
        34 => Event::ShadowDisconnected { rank: c.u32()? },
        35 => Event::LrmsQueued {
            site: c.str()?,
            job: c.u64()?,
        },
        36 => Event::LrmsStarted {
            site: c.str()?,
            job: c.u64()?,
            nodes: c.u32()?,
        },
        37 => Event::LrmsFinished {
            site: c.str()?,
            job: c.u64()?,
        },
        38 => Event::LrmsKilled {
            site: c.str()?,
            job: c.u64()?,
            reason: c.str()?,
        },
        51 => Event::DispositionEvicted {
            site: c.str()?,
            job: c.u64()?,
        },
        39 => Event::BrokerRecovered {
            jobs: c.u64()?,
            requeued: c.u64()?,
            resubmitted: c.u64()?,
            agents_lost: c.u64()?,
        },
        40 => Event::Measurement {
            name: c.str()?,
            value: c.f64()?,
        },
        41 => Event::RankNanDiscarded {
            job: c.u64()?,
            site: c.str()?,
        },
        42 => Event::PolicyDecision {
            job: c.u64()?,
            policy: c.str()?,
            site: c.str()?,
            score: c.f64()?,
        },
        43 => Event::SiteSuspect {
            site: c.str()?,
            missed_refreshes: c.u32()?,
            failed_queries: c.u32()?,
        },
        44 => Event::SiteDead {
            site: c.str()?,
            in_flight: c.u32()?,
        },
        45 => Event::SiteRejoin {
            site: c.str()?,
            down_ns: c.u64()?,
        },
        46 => Event::LiveQueryTimeout {
            job: c.u64()?,
            site: c.str()?,
            attempt: c.u32()?,
        },
        47 => Event::QueryRetry {
            job: c.u64()?,
            site: c.str()?,
            attempt: c.u32()?,
            delay_ns: c.u64()?,
        },
        48 => Event::DegradedMatch {
            job: c.u64()?,
            staleness_ns: c.u64()?,
        },
        49 => Event::GiisDelta {
            leaf: c.u32()?,
            epoch: c.u64()?,
            changed: c.u32()?,
        },
        50 => Event::RefreshSweep {
            refreshed: c.u32()?,
            missed: c.u32()?,
            amnestied: c.u32()?,
            late_merges: c.u32()?,
        },
        other => return Err(CodecError::BadTag(other)),
    };
    if !c.is_empty() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(TimedEvent { at, seq, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::JobSubmitted {
                job: 7,
                user: "alice".into(),
                interactive: true,
            },
            Event::JobAd {
                job: 7,
                jdl: "[\n  Executable = \"i\";\n]".into(),
                runtime_ns: 60_000_000_000,
            },
            Event::JobQueued { job: 1 },
            Event::QueueRetry { job: 1 },
            Event::LeaseGranted {
                job: 7,
                target: "site:cesga".into(),
                until_ns: 99,
            },
            Event::JobDispatched {
                job: 7,
                target: "agent:3".into(),
                backend: "thread-pool".into(),
            },
            Event::JobStarted { job: 7 },
            Event::JobResubmitted { job: 7, attempt: 2 },
            Event::JobBackoff {
                job: 7,
                attempt: 2,
                delay_ns: 4_000_000_000,
            },
            Event::JobFinished { job: 7 },
            Event::JobFailed {
                job: 8,
                reason: "lost \"quotes\" and\nnewlines".into(),
            },
            Event::JobCancelled { job: 9 },
            Event::JdlDiagnostic {
                job: 2,
                severity: "error".into(),
                code: "E101".into(),
                message: "boom".into(),
            },
            Event::JdlRejected { job: 2, errors: 3 },
            Event::FairShareTick { usages: 4 },
            Event::PriorityChanged {
                usage: 1,
                kind: "interactive".into(),
            },
            Event::AgentDeployed {
                agent: 3,
                site: "cesga".into(),
            },
            Event::AgentReady { agent: 3 },
            Event::AgentDied {
                agent: 3,
                reason: "maintenance".into(),
                voluntary: false,
            },
            Event::AgentBatchFinished { agent: 3 },
            Event::BatchYielded {
                agent: 3,
                job: 7,
                performance_loss: 10,
            },
            Event::BatchRestored { agent: 3, job: 7 },
            Event::SlotStarted {
                machine: "cesga/0".into(),
                interactive: false,
            },
            Event::SlotPreempted {
                machine: "cesga/0".into(),
                batch_rate_pct: 90,
            },
            Event::SlotRestored {
                machine: "cesga/0".into(),
            },
            Event::SlotFinished {
                machine: "cesga/0".into(),
                interactive: true,
            },
            Event::ConsoleConnected { job: 7 },
            Event::ConsoleRetry { job: 7, attempt: 1 },
            Event::ConsoleReady { job: 7 },
            Event::SpoolAppend {
                stream: "stdout".into(),
                seq: 12,
            },
            Event::SpoolAck {
                stream: "stdout".into(),
                seq: 12,
            },
            Event::SpoolReplay {
                stream: "stdout".into(),
                after: 4,
                records: 8,
            },
            Event::BufferFlush {
                stream: "stdout".into(),
                reason: "timeout".into(),
                bytes: 512,
            },
            Event::ShadowConnected { rank: 0 },
            Event::ShadowDisconnected { rank: 0 },
            Event::LrmsQueued {
                site: "cesga".into(),
                job: 0,
            },
            Event::LrmsStarted {
                site: "cesga".into(),
                job: 0,
                nodes: 2,
            },
            Event::LrmsFinished {
                site: "cesga".into(),
                job: 0,
            },
            Event::LrmsKilled {
                site: "cesga".into(),
                job: 0,
                reason: "walltime".into(),
            },
            Event::DispositionEvicted {
                site: "cesga".into(),
                job: 0,
            },
            Event::BrokerRecovered {
                jobs: 5,
                requeued: 1,
                resubmitted: 2,
                agents_lost: 1,
            },
            Event::Measurement {
                name: "table1/response_s".into(),
                value: 1.25,
            },
            Event::RankNanDiscarded {
                job: 7,
                site: "cesga".into(),
            },
            Event::PolicyDecision {
                job: 8,
                policy: "queue-forecast".into(),
                site: "ifca".into(),
                score: 5.75,
            },
            Event::SiteSuspect {
                site: "cesga".into(),
                missed_refreshes: 2,
                failed_queries: 1,
            },
            Event::SiteDead {
                site: "cesga".into(),
                in_flight: 3,
            },
            Event::SiteRejoin {
                site: "cesga".into(),
                down_ns: 600_000_000_000,
            },
            Event::LiveQueryTimeout {
                job: 7,
                site: "cesga".into(),
                attempt: 1,
            },
            Event::QueryRetry {
                job: 7,
                site: "cesga".into(),
                attempt: 2,
                delay_ns: 2_000_000_000,
            },
            Event::DegradedMatch {
                job: 7,
                staleness_ns: 180_000_000_000,
            },
            Event::GiisDelta {
                leaf: 3,
                epoch: 17,
                changed: 4,
            },
            Event::RefreshSweep {
                refreshed: 28,
                missed: 2,
                amnestied: 1,
                late_merges: 1,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let te = TimedEvent {
                at: SimTime::from_nanos(1_000 + i as u64),
                seq: i as u64,
                event,
            };
            let mut buf = Vec::new();
            encode_event(&te, &mut buf);
            let back = decode_event(&buf).unwrap_or_else(|e| panic!("{}: {e}", te.event.kind()));
            assert_eq!(back, te, "{} must round-trip", te.event.kind());
        }
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let te = TimedEvent {
            at: SimTime::from_secs(1),
            seq: 3,
            event: Event::JobFailed {
                job: 8,
                reason: "agent died".into(),
            },
        };
        let mut buf = Vec::new();
        encode_event(&te, &mut buf);
        for cut in 0..buf.len() {
            assert!(
                decode_event(&buf[..cut]).is_err(),
                "decoding a {cut}-byte prefix must fail, not panic"
            );
        }
    }

    #[test]
    fn bad_tag_and_trailing_bytes_are_rejected() {
        let te = TimedEvent {
            at: SimTime::ZERO,
            seq: 0,
            event: Event::JobStarted { job: 1 },
        };
        let mut buf = Vec::new();
        encode_event(&te, &mut buf);
        let mut bad_tag = buf.clone();
        bad_tag[16] = 0xfe;
        assert_eq!(decode_event(&bad_tag), Err(CodecError::BadTag(0xfe)));
        let mut trailing = buf;
        trailing.push(0);
        assert_eq!(decode_event(&trailing), Err(CodecError::TrailingBytes));
    }
}
