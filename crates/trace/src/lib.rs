//! # cg-trace — lifecycle event log & metrics for the CrossBroker stack
//!
//! Every layer of the broker (matchmaking, leases, glide-in agents, VM
//! slots, fair-share, the Grid Console, site LRMSes) emits typed,
//! sim-timestamped [`Event`]s into a shared ring-buffered [`EventLog`].
//! The log is cheap enough to leave on everywhere: recording is one mutex
//! lock plus an enum push, and the ring bound caps memory no matter how
//! long a simulation runs.
//!
//! On top of the raw stream sit three consumers:
//!
//! * [`MetricsRegistry`] — named counters, gauges and sample-backed
//!   histograms (built on [`cg_sim::OnlineStats`] / [`cg_sim::SampleSet`]).
//!   An [`EventLog`] wired to a registry counts every event kind
//!   automatically under `events.<Kind>`.
//! * JSONL export — [`EventLog::to_jsonl`] renders one JSON object per
//!   line for offline analysis; [`dump_jsonl_env`] writes it to the path
//!   named by an environment variable so every bench binary can opt in
//!   without new flags.
//! * [`check_invariants`] — a whole-stream checker for cross-layer
//!   protocol rules (dispatch-after-lease, single terminal state, spool
//!   ack ≤ append, batch priority restored after interactive departure).
//!
//! The log is `Send + Sync + Clone` (clones share the buffer), so the real
//! threaded Grid Console transport can feed the same stream as the
//! single-threaded simulation side.
//!
//! ## Durability
//!
//! The log doubles as a write-ahead journal: attach a [`Journal`] with
//! [`EventLog::set_journal`] and every recorded event is also appended to a
//! CRC-framed file ([`journal`] module), with periodic [`replay`] snapshots
//! bounding recovery work. [`open_journal`] reads it back (truncating torn
//! tails, surfacing corruption as typed [`JournalError`]s), and
//! [`ReplayState`] folds the stream back into broker-visible state.
//! [`check_recovery_invariants`] validates a reconstruction against the
//! stream; [`CrashPlan`] provides deterministic kill-point injection for
//! crash-recovery tests.

mod codec;
mod event;

/// Lock primitives behind the model-check seam: `std::sync` normally, the
/// `loom` deterministic-schedule shim under `--cfg cg_loom` so CI's
/// model-check job can exhaustively interleave the `EventLog` critical
/// sections (see `tests/loom_model.rs`).
pub mod sync {
    #[cfg(not(cg_loom))]
    pub use std::sync::{Mutex, MutexGuard};

    #[cfg(cg_loom)]
    pub use loom::sync::{Mutex, MutexGuard};
}
mod invariants;
pub mod journal;
mod log;
mod metrics;
pub mod replay;

pub use codec::{decode_event, encode_event, CodecError};
pub use event::{json_escape, Event, TimedEvent};
pub use invariants::{check_invariants, check_recovery_invariants};
pub use journal::{
    open_journal, parse_journal, Journal, JournalConfig, JournalError, JournalSnapshot,
    LoadedJournal,
};
pub use log::{dump_jsonl_env, CrashPlan, EventLog};
pub use metrics::MetricsRegistry;
pub use replay::{decode_state, encode_state, Bucket, Phase, ReplayState};
