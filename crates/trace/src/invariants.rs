//! Whole-stream protocol invariants.
//!
//! These encode cross-layer rules no single component can check for
//! itself: the broker grants leases, agents dispatch, the fair-share
//! engine restores priorities, and only the merged event stream shows
//! whether the handshakes actually happened in order.

use std::collections::{HashMap, HashSet};

use crate::event::{Event, TimedEvent};
use crate::replay::ReplayState;

/// Checks the event stream (oldest first) against the broker-stack
/// protocol invariants; returns one human-readable line per violation
/// (empty = clean).
///
/// 1. **Dispatch after lease** — every `JobDispatched` is preceded by a
///    `LeaseGranted` for the same job; the broker never ships a job
///    without first claiming a target.
/// 2. **Single terminal state** — no job sees more than one of
///    `JobFinished` / `JobFailed` / `JobCancelled`.
/// 3. **Ack within append** — per stream, a `SpoolAck` sequence never
///    exceeds the highest `SpoolAppend` seen, so the reliable console
///    never acknowledges data that was never written.
/// 4. **Priority restored** — for every `BatchYielded` whose interactive
///    job later departs (reaches a terminal state inside the stream),
///    a matching `BatchRestored` / `AgentBatchFinished` / `AgentDied`
///    follows the yield: an interactive departure always hands the CPU
///    back to the batch job it demoted.
/// 5. **Rejection is final** — a job rejected by the submit-time JDL
///    analyzer (`JdlRejected`, a terminal state like the other three)
///    never acquires a lease or dispatches anywhere in the stream; the
///    broker must not run matchmaking on an ad it refused.
///
/// 5b (companion to rule 5): **no traffic to the sick** — once a site is
/// declared `SiteSuspect` or `SiteDead`, no `LeaseGranted` /
/// `JobDispatched` whose target is `site:<name>` may land on it until a
/// `SiteRejoin` clears the obituary; the broker must route around
/// membership it has itself declared unhealthy.
///
/// The caller should pass a snapshot whose ring has not dropped events
/// ([`crate::EventLog::dropped`] == 0); on a truncated stream the checker
/// can report spurious lease/yield violations.
pub fn check_invariants(events: &[TimedEvent]) -> Vec<String> {
    let mut violations = Vec::new();

    // 1 + 2 + 5 + 5b: single forward pass.
    let mut leased: HashSet<u64> = HashSet::new();
    let mut terminal: HashMap<u64, &'static str> = HashMap::new();
    let mut rejected: HashSet<u64> = HashSet::new();
    // 5b: sites currently under an obituary (Suspect or Dead, not yet
    // rejoined), mapped to the state that put them there.
    let mut unhealthy: HashMap<&str, &'static str> = HashMap::new();
    // 3: per-stream high-water marks.
    let mut appended: HashMap<&str, u64> = HashMap::new();
    for ev in events {
        match &ev.event {
            Event::LeaseGranted { job, target, .. } => {
                leased.insert(*job);
                if rejected.contains(job) {
                    violations.push(format!(
                        "job {job} granted a lease at {}s after JdlRejected",
                        ev.at.as_secs_f64()
                    ));
                }
                if let Some(state) = target
                    .strip_prefix("site:")
                    .and_then(|site| unhealthy.get(site))
                {
                    violations.push(format!(
                        "job {job} granted a lease on {target} at {}s while the site is {state}",
                        ev.at.as_secs_f64()
                    ));
                }
            }
            Event::JobDispatched { job, target, .. } => {
                if !leased.contains(job) {
                    violations.push(format!(
                        "job {job} dispatched to {target} at {}s without a prior lease",
                        ev.at.as_secs_f64()
                    ));
                }
                if rejected.contains(job) {
                    violations.push(format!(
                        "job {job} dispatched to {target} at {}s after JdlRejected",
                        ev.at.as_secs_f64()
                    ));
                }
                if let Some(state) = target
                    .strip_prefix("site:")
                    .and_then(|site| unhealthy.get(site))
                {
                    violations.push(format!(
                        "job {job} dispatched to {target} at {}s while the site is {state}",
                        ev.at.as_secs_f64()
                    ));
                }
            }
            Event::SiteSuspect { site, .. } => {
                unhealthy.insert(site.as_str(), "SiteSuspect");
            }
            Event::SiteDead { site, .. } => {
                unhealthy.insert(site.as_str(), "SiteDead");
            }
            Event::SiteRejoin { site, .. } => {
                unhealthy.remove(site.as_str());
            }
            Event::JdlRejected { job, .. } => {
                if leased.contains(job) {
                    violations.push(format!(
                        "job {job} rejected at {}s after already holding a lease",
                        ev.at.as_secs_f64()
                    ));
                }
                rejected.insert(*job);
                let kind = ev.event.kind();
                if let Some(first) = terminal.insert(*job, kind) {
                    violations.push(format!(
                        "job {job} reached a second terminal state {kind} at {}s (already {first})",
                        ev.at.as_secs_f64()
                    ));
                }
            }
            Event::JobFinished { job }
            | Event::JobFailed { job, .. }
            | Event::JobCancelled { job } => {
                let kind = ev.event.kind();
                if let Some(first) = terminal.insert(*job, kind) {
                    violations.push(format!(
                        "job {job} reached a second terminal state {kind} at {}s (already {first})",
                        ev.at.as_secs_f64()
                    ));
                }
            }
            Event::SpoolAppend { stream, seq } => {
                let high = appended.entry(stream.as_str()).or_insert(0);
                *high = (*high).max(*seq);
            }
            Event::SpoolAck { stream, seq } => {
                let high = appended.get(stream.as_str()).copied().unwrap_or(0);
                if *seq > high {
                    violations.push(format!(
                        "stream {stream}: ack of seq {seq} at {}s exceeds highest append {high}",
                        ev.at.as_secs_f64()
                    ));
                }
            }
            _ => {}
        }
    }

    // 4: for each yield, look ahead for the interactive departure and the
    // matching restore. Yield counts are tiny next to the stream length,
    // so the quadratic look-ahead is fine.
    for (i, ev) in events.iter().enumerate() {
        let Event::BatchYielded { agent, job, .. } = &ev.event else {
            continue;
        };
        let departed = events[i + 1..].iter().any(|later| {
            matches!(
                &later.event,
                Event::JobFinished { job: j }
                | Event::JobFailed { job: j, .. }
                | Event::JobCancelled { job: j } if j == job
            )
        });
        if !departed {
            continue; // interactive job still running at snapshot time
        }
        let restored = events[i + 1..].iter().any(|later| match &later.event {
            Event::BatchRestored { agent: a, .. }
            | Event::AgentBatchFinished { agent: a }
            | Event::AgentDied { agent: a, .. } => a == agent,
            _ => false,
        });
        if !restored {
            violations.push(format!(
                "agent {agent}: batch priority never restored after interactive job {job} \
                 (yielded at {}s) departed",
                ev.at.as_secs_f64()
            ));
        }
    }

    violations
}

/// Checks the three crash-recovery invariants over the journal tail and
/// the two state views it produces: `expected` is the pure event-stream
/// fold (snapshot + tail, see [`ReplayState::from_events`]) and
/// `recovered` is what the reconstructed broker actually holds
/// (`CrossBroker::replay_state()` taken after state rebuild, before
/// re-arm). Returns one line per violation (empty = clean).
///
/// 6. **Fixpoint** — the recovered state is a fixpoint of the event
///    stream: (a) re-applying the tail events to `expected` changes
///    nothing (the fold is idempotent on its comparison core), and (b)
///    `recovered` agrees with `expected` job-for-job on disposition
///    bucket, resubmission attempts, user and started-flag, and
///    stream-for-stream on the spool ack watermark. Agents alive in the
///    stream must not resurrect in `recovered` without a fresh
///    deployment — the crash killed them.
/// 7. **No leased-and-queued job** — in both views, no job sits on the
///    broker queue while holding a lease still live at crash time.
/// 8. **Spool acks never regress** — every stream's recovered ack
///    watermark is at least the stream's.
pub fn check_recovery_invariants(
    tail: &[TimedEvent],
    expected: &ReplayState,
    recovered: &ReplayState,
) -> Vec<String> {
    let mut violations = Vec::new();
    let crash_at_ns = expected.last_at_ns;

    // 6a: idempotence of the fold on the comparison core.
    let mut refolded = expected.clone();
    for ev in tail {
        refolded.apply(ev);
    }
    if refolded.jobs != expected.jobs {
        violations.push("replay fold is not idempotent over the job table".into());
    }
    if refolded.agents != expected.agents {
        violations.push("replay fold is not idempotent over the agent registry".into());
    }
    if refolded.spools != expected.spools {
        violations.push("replay fold is not idempotent over the spool watermarks".into());
    }
    if refolded.site_health != expected.site_health {
        violations.push("replay fold is not idempotent over the site-health registry".into());
    }

    // 6b: the broker's reconstruction matches the stream.
    for (id, want) in &expected.jobs {
        let Some(got) = recovered.jobs.get(id) else {
            violations.push(format!("job {id} in the stream is missing after recovery"));
            continue;
        };
        if got.phase.bucket() != want.phase.bucket() {
            violations.push(format!(
                "job {id} recovered into bucket {:?}, stream says {:?}",
                got.phase.bucket(),
                want.phase.bucket()
            ));
        }
        if got.attempts != want.attempts {
            violations.push(format!(
                "job {id} recovered with {} resubmission attempts, stream says {}",
                got.attempts, want.attempts
            ));
        }
        if got.user != want.user {
            violations.push(format!(
                "job {id} recovered under user {:?}, stream says {:?}",
                got.user, want.user
            ));
        }
        if got.started != want.started {
            violations.push(format!(
                "job {id} recovered with started={}, stream says {}",
                got.started, want.started
            ));
        }
    }
    for id in recovered.jobs.keys() {
        if !expected.jobs.contains_key(id) {
            violations.push(format!("job {id} appeared from nowhere during recovery"));
        }
    }
    for (id, agent) in &expected.agents {
        if agent.alive && recovered.agents.get(id).is_some_and(|a| a.alive) {
            violations.push(format!(
                "agent {id} resurrected across the crash without redeployment"
            ));
        }
    }

    // 7: leased ∧ queued is contradictory in either view.
    for (label, view) in [("stream", expected), ("recovered", recovered)] {
        for (id, job) in &view.jobs {
            let lease_live = job
                .lease
                .as_ref()
                .is_some_and(|(_, until_ns)| *until_ns > crash_at_ns);
            if job.queued && lease_live {
                violations.push(format!(
                    "{label}: job {id} is on the broker queue while holding a live lease"
                ));
            }
        }
    }

    // 8: ack watermarks are durable.
    for (stream, want) in &expected.spools {
        let got = recovered.spools.get(stream).map_or(0, |m| m.acked);
        if got < want.acked {
            violations.push(format!(
                "stream {stream}: ack watermark regressed across recovery ({got} < {})",
                want.acked
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_sim::SimTime;

    fn stream(events: Vec<Event>) -> Vec<TimedEvent> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TimedEvent {
                at: SimTime::from_secs(i as u64),
                seq: i as u64,
                event,
            })
            .collect()
    }

    fn lease(job: u64) -> Event {
        Event::LeaseGranted {
            job,
            target: "agent:0".into(),
            until_ns: 0,
        }
    }

    fn dispatch(job: u64) -> Event {
        Event::JobDispatched {
            job,
            target: "agent:0".into(),
            backend: "sim-lrms".into(),
        }
    }

    #[test]
    fn clean_stream_passes() {
        let s = stream(vec![
            Event::JobSubmitted {
                job: 1,
                user: "alice".into(),
                interactive: true,
            },
            lease(1),
            dispatch(1),
            Event::JobStarted { job: 1 },
            Event::JobFinished { job: 1 },
        ]);
        assert!(check_invariants(&s).is_empty());
    }

    #[test]
    fn dispatch_without_lease_is_flagged() {
        let s = stream(vec![dispatch(1)]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("without a prior lease"), "{v:?}");
    }

    #[test]
    fn lease_after_dispatch_does_not_count() {
        let s = stream(vec![dispatch(1), lease(1)]);
        assert_eq!(check_invariants(&s).len(), 1);
    }

    #[test]
    fn double_terminal_is_flagged() {
        let s = stream(vec![
            Event::JobFinished { job: 2 },
            Event::JobFailed {
                job: 2,
                reason: "late failure".into(),
            },
        ]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("second terminal state"), "{v:?}");
    }

    #[test]
    fn ack_beyond_append_is_flagged_per_stream() {
        let s = stream(vec![
            Event::SpoolAppend {
                stream: "a".into(),
                seq: 5,
            },
            Event::SpoolAck {
                stream: "a".into(),
                seq: 5,
            },
            Event::SpoolAck {
                stream: "b".into(),
                seq: 1,
            },
        ]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("stream b"), "{v:?}");
    }

    #[test]
    fn rejected_job_must_not_lease_or_dispatch() {
        let rejected = Event::JdlRejected { job: 7, errors: 2 };
        // A rejection with no later activity is clean.
        let s = stream(vec![
            Event::JobSubmitted {
                job: 7,
                user: "alice".into(),
                interactive: false,
            },
            Event::JdlDiagnostic {
                job: 7,
                severity: "error".into(),
                code: "E108".into(),
                message: "Requirements can never match".into(),
            },
            rejected.clone(),
        ]);
        assert!(check_invariants(&s).is_empty());
        // Lease after rejection: flagged.
        let s = stream(vec![rejected.clone(), lease(7), dispatch(7)]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("after JdlRejected"), "{v:?}");
        // Lease before rejection: flagged too.
        let s = stream(vec![lease(7), rejected.clone()]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("already holding a lease"), "{v:?}");
        // Rejection is terminal: a later JobFinished double-terminates.
        let s = stream(vec![rejected, Event::JobFinished { job: 7 }]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("second terminal state"), "{v:?}");
    }

    #[test]
    fn traffic_to_a_suspect_or_dead_site_is_flagged_until_rejoin() {
        let site_lease = |job| Event::LeaseGranted {
            job,
            target: "site:cesga".into(),
            until_ns: 0,
        };
        let site_dispatch = |job| Event::JobDispatched {
            job,
            target: "site:cesga".into(),
            backend: "sim-lrms".into(),
        };
        let suspect = Event::SiteSuspect {
            site: "cesga".into(),
            missed_refreshes: 2,
            failed_queries: 1,
        };
        let dead = Event::SiteDead {
            site: "cesga".into(),
            in_flight: 0,
        };
        let rejoin = Event::SiteRejoin {
            site: "cesga".into(),
            down_ns: 90_000_000_000,
        };
        // Lease before the obituary: clean.
        let s = stream(vec![site_lease(1), site_dispatch(1), suspect.clone()]);
        assert!(check_invariants(&s).is_empty());
        // Lease + dispatch while suspect: both flagged.
        let s = stream(vec![suspect.clone(), site_lease(1), site_dispatch(1)]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("SiteSuspect"), "{v:?}");
        // Dead supersedes suspect in the message.
        let s = stream(vec![suspect.clone(), dead, site_lease(2)]);
        let v = check_invariants(&s);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("SiteDead"), "{v:?}");
        // Rejoin clears the obituary.
        let s = stream(vec![suspect, rejoin, site_lease(3), site_dispatch(3)]);
        assert!(check_invariants(&s).is_empty());
        // Other sites are unaffected.
        let s = stream(vec![
            Event::SiteDead {
                site: "ifca".into(),
                in_flight: 3,
            },
            site_lease(4),
        ]);
        assert!(check_invariants(&s).is_empty());
    }

    #[test]
    fn yield_without_restore_is_flagged_only_after_departure() {
        let yielded = Event::BatchYielded {
            agent: 3,
            job: 9,
            performance_loss: 20,
        };
        // Interactive still running: no violation.
        let s = stream(vec![yielded.clone()]);
        assert!(check_invariants(&s).is_empty());
        // Departed without restore: violation.
        let s = stream(vec![yielded.clone(), Event::JobFinished { job: 9 }]);
        assert_eq!(check_invariants(&s).len(), 1);
        // Restored before departure: clean.
        let s = stream(vec![
            yielded.clone(),
            Event::BatchRestored { agent: 3, job: 9 },
            Event::JobFinished { job: 9 },
        ]);
        assert!(check_invariants(&s).is_empty());
        // Batch finished while yielded also closes the yield.
        let s = stream(vec![
            yielded.clone(),
            Event::AgentBatchFinished { agent: 3 },
            Event::JobFinished { job: 9 },
        ]);
        assert!(check_invariants(&s).is_empty());
        // Agent death closes it too.
        let s = stream(vec![
            yielded,
            Event::AgentDied {
                agent: 3,
                reason: "walltime exceeded".into(),
                voluntary: false,
            },
            Event::JobFailed {
                job: 9,
                reason: "agent died".into(),
            },
        ]);
        assert!(check_invariants(&s).is_empty());
    }

    fn recovery_stream() -> Vec<TimedEvent> {
        stream(vec![
            Event::JobSubmitted {
                job: 0,
                user: "alice".into(),
                interactive: true,
            },
            Event::LeaseGranted {
                job: 0,
                target: "site:a".into(),
                until_ns: u64::MAX,
            },
            Event::JobSubmitted {
                job: 1,
                user: "bob".into(),
                interactive: false,
            },
            Event::JobQueued { job: 1 },
            Event::SpoolAppend {
                stream: "stdout".into(),
                seq: 9,
            },
            Event::SpoolAck {
                stream: "stdout".into(),
                seq: 7,
            },
        ])
    }

    #[test]
    fn faithful_recovery_passes_the_new_rules() {
        let tail = recovery_stream();
        let expected = ReplayState::from_events(&tail);
        let recovered = expected.clone();
        let v = check_recovery_invariants(&tail, &expected, &recovered);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bucket_drift_and_lost_jobs_violate_the_fixpoint_rule() {
        let tail = recovery_stream();
        let expected = ReplayState::from_events(&tail);
        // Bucket drift: job 0 "recovered" as finished.
        let mut drifted = expected.clone();
        drifted.jobs.get_mut(&0).unwrap().phase = crate::replay::Phase::Finished;
        let v = check_recovery_invariants(&tail, &expected, &drifted);
        assert!(v.iter().any(|m| m.contains("bucket")), "{v:?}");
        // Lost job: job 1 missing entirely.
        let mut lost = expected.clone();
        lost.jobs.remove(&1);
        let v = check_recovery_invariants(&tail, &expected, &lost);
        assert!(
            v.iter().any(|m| m.contains("missing after recovery")),
            "{v:?}"
        );
    }

    #[test]
    fn leased_and_queued_is_contradictory() {
        let mut tail = recovery_stream();
        // Queue job 0 while its (unexpired) lease is outstanding.
        tail.push(TimedEvent {
            at: SimTime::from_secs(90),
            seq: tail.len() as u64,
            event: Event::JobQueued { job: 0 },
        });
        let expected = ReplayState::from_events(&tail);
        let recovered = expected.clone();
        let v = check_recovery_invariants(&tail, &expected, &recovered);
        assert!(
            v.iter().any(|m| m.contains("live lease")),
            "both views must flag leased∧queued: {v:?}"
        );
    }

    #[test]
    fn spool_ack_regression_is_flagged() {
        let tail = recovery_stream();
        let expected = ReplayState::from_events(&tail);
        let mut regressed = expected.clone();
        regressed.spools.get_mut("stdout").unwrap().acked = 3;
        let v = check_recovery_invariants(&tail, &expected, &regressed);
        assert!(v.iter().any(|m| m.contains("regressed")), "{v:?}");
    }

    #[test]
    fn resurrected_agents_are_flagged() {
        let tail = stream(vec![Event::AgentDeployed {
            agent: 4,
            site: "a".into(),
        }]);
        let expected = ReplayState::from_events(&tail);
        // A faithful recovery reports the agent dead (the crash killed it).
        let mut honest = expected.clone();
        honest.agents.get_mut(&4).unwrap().alive = false;
        assert!(check_recovery_invariants(&tail, &expected, &honest).is_empty());
        // Claiming it alive without a fresh deployment is a violation.
        let v = check_recovery_invariants(&tail, &expected, &expected.clone());
        assert!(v.iter().any(|m| m.contains("resurrected")), "{v:?}");
    }
}
