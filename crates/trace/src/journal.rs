//! Durable, CRC-framed event journal — the write-ahead log behind
//! [`crate::EventLog`].
//!
//! File layout:
//!
//! ```text
//! magic "CGJRNL01"                                  (8 bytes)
//! record*   where record = [kind: u8]               1 = event, 2 = snapshot
//!                          [len:  u32 LE]           payload length
//!                          [crc:  u32 LE]           CRC-32 over kind‖len‖payload
//!                          [payload: len bytes]
//! ```
//!
//! Event payloads use the binary codec in [`crate::codec`]; snapshot payloads
//! are `[through_seq: u64 LE]` followed by an opaque state blob (see
//! [`crate::replay`]). The journal is append-only: snapshots are inline
//! records, and a reader replays from the **last** snapshot, so replay work
//! is bounded by snapshot cadence even though the file itself only grows.
//!
//! Torn tails vs corruption: a record whose bytes simply stop at end-of-file
//! is the signature of a crash mid-write — the reader truncates it and
//! reports how many bytes were dropped. A record that is fully present but
//! fails its CRC (or decodes to garbage) is bit rot, not a torn write, and
//! surfaces as a typed [`JournalError::Corrupt`] — never a panic, never a
//! silent partial replay.

use crate::codec::{self, CodecError};
use crate::event::TimedEvent;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// File magic: "CrossGrid JouRNaL, format 01".
pub const JOURNAL_MAGIC: &[u8; 8] = b"CGJRNL01";

const KIND_EVENT: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;
/// kind + len + crc.
const FRAME_HEADER: usize = 1 + 4 + 4;

// ── CRC-32 (IEEE 802.3, reflected) ──────────────────────────────────────

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, as used by the journal framing.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ── errors ──────────────────────────────────────────────────────────────

/// A typed journal failure. Corruption is always surfaced through here —
/// the journal code path contains no `panic!`/`unwrap` on file contents.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file could not be read or written.
    Io(io::Error),
    /// The file does not start with [`JOURNAL_MAGIC`].
    BadMagic,
    /// A fully-present record failed validation (CRC mismatch, undecodable
    /// payload, out-of-order sequence numbers, unknown record kind).
    Corrupt {
        /// Byte offset of the offending record's frame header.
        offset: u64,
        /// What failed.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => write!(f, "not a journal file (bad magic)"),
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ── writer ──────────────────────────────────────────────────────────────

/// Durability knobs for the journal writer.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// `fsync` after this many appended records; `0` means only on
    /// [`Journal::sync`] / snapshot writes. Snapshots always sync.
    pub fsync_every: u32,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { fsync_every: 64 }
    }
}

struct WriterInner {
    file: File,
    config: JournalConfig,
    unsynced: u32,
    appended: u64,
}

/// Handle to an open journal file. Clones share the file; appends are
/// serialized by an internal mutex so the [`crate::EventLog`] can write from
/// any thread.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<WriterInner>>,
    path: Arc<PathBuf>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates (truncating) a journal at `path` and writes the file magic.
    ///
    /// # Errors
    /// Propagates file-creation and write failures.
    pub fn create(path: impl AsRef<Path>, config: JournalConfig) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(JOURNAL_MAGIC)?;
        file.sync_data()?;
        Ok(Journal {
            inner: Arc::new(Mutex::new(WriterInner {
                file,
                config,
                unsynced: 0,
                appended: 0,
            })),
            path: Arc::new(path),
        })
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended (events + snapshots) since creation.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.lock().appended
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WriterInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn append_record(&self, kind: u8, payload: &[u8], force_sync: bool) -> io::Result<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.push(kind);
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .map_err(|_| io::Error::other("journal record over 4 GiB"))?
                .to_le_bytes(),
        );
        // CRC covers kind ‖ len ‖ payload so a bit flip anywhere in the
        // frame (header included) is caught.
        let mut crc_input = Vec::with_capacity(5 + payload.len());
        crc_input.extend_from_slice(&frame[0..5]);
        crc_input.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        frame.extend_from_slice(payload);

        let mut inner = self.lock();
        inner.file.write_all(&frame)?;
        inner.appended += 1;
        inner.unsynced += 1;
        let due = force_sync
            || (inner.config.fsync_every > 0 && inner.unsynced >= inner.config.fsync_every);
        if due {
            // cg-lint: allow(lock-across-io): single-writer journal; the batched fsync under the writer lock IS the durability point
            inner.file.sync_data()?;
            inner.unsynced = 0;
        }
        Ok(())
    }

    /// Appends one event record.
    ///
    /// # Errors
    /// Propagates write/sync failures.
    pub fn append_event(&self, ev: &TimedEvent) -> io::Result<()> {
        let mut payload = Vec::with_capacity(64);
        codec::encode_event(ev, &mut payload);
        self.append_record(KIND_EVENT, &payload, false)
    }

    /// Appends a snapshot record covering all events with `seq <=
    /// through_seq`. Always fsyncs: a snapshot that might not be durable is
    /// worse than none.
    ///
    /// # Errors
    /// Propagates write/sync failures.
    pub fn append_snapshot(&self, through_seq: u64, state: &[u8]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(8 + state.len());
        payload.extend_from_slice(&through_seq.to_le_bytes());
        payload.extend_from_slice(state);
        self.append_record(KIND_SNAPSHOT, &payload, true)
    }

    /// Forces buffered records to stable storage.
    ///
    /// # Errors
    /// Propagates the fsync failure.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.lock();
        // cg-lint: allow(lock-across-io): explicit durability barrier; the writer lock serializes it with appends by design
        inner.file.sync_data()?;
        inner.unsynced = 0;
        Ok(())
    }
}

// ── reader ──────────────────────────────────────────────────────────────

/// The last snapshot found in a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Events with `seq <= through_seq` are summarized by the blob.
    pub through_seq: u64,
    /// Opaque state blob (decode with [`crate::replay::decode_state`]).
    pub state: Vec<u8>,
}

/// Everything recovered from a journal file.
#[derive(Debug, Clone, Default)]
pub struct LoadedJournal {
    /// The last snapshot, if any.
    pub snapshot: Option<JournalSnapshot>,
    /// Events after the snapshot (all events when there is none), in
    /// stream order.
    pub events: Vec<TimedEvent>,
    /// Bytes dropped from a torn tail (crash mid-append). Zero for a
    /// cleanly closed journal.
    pub truncated_bytes: u64,
}

impl LoadedJournal {
    /// Sequence number of the last journalled event (or the snapshot
    /// horizon when the tail is empty).
    #[must_use]
    pub fn last_seq(&self) -> Option<u64> {
        self.events
            .last()
            .map(|e| e.seq)
            .or(self.snapshot.as_ref().map(|s| s.through_seq))
    }

    /// Sim-time of the last journalled event — the recovery epoch's "crash
    /// time".
    #[must_use]
    pub fn crash_at_ns(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at.as_nanos())
    }
}

/// Opens and fully validates a journal file.
///
/// # Errors
/// [`JournalError::Io`] on read failures, [`JournalError::BadMagic`] when
/// the header is wrong, [`JournalError::Corrupt`] when a fully-present
/// record fails CRC or decoding. A torn tail is **not** an error: the
/// partial record is dropped and counted in
/// [`LoadedJournal::truncated_bytes`].
pub fn open_journal(path: impl AsRef<Path>) -> Result<LoadedJournal, JournalError> {
    let mut bytes = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut bytes)?;
    parse_journal(&bytes)
}

/// Parses journal bytes (see [`open_journal`]).
///
/// # Errors
/// Same contract as [`open_journal`], minus the I/O.
pub fn parse_journal(bytes: &[u8]) -> Result<LoadedJournal, JournalError> {
    if bytes.len() < JOURNAL_MAGIC.len() {
        // A crash between file creation and the magic write leaves a short
        // header: an empty journal, not a corrupt one.
        if bytes.is_empty() || JOURNAL_MAGIC.starts_with(bytes) {
            return Ok(LoadedJournal {
                truncated_bytes: bytes.len() as u64,
                ..LoadedJournal::default()
            });
        }
        return Err(JournalError::BadMagic);
    }
    if &bytes[..8] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }

    let mut loaded = LoadedJournal::default();
    let mut last_seq: Option<u64> = None;
    let mut offset = JOURNAL_MAGIC.len();
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < FRAME_HEADER {
            loaded.truncated_bytes = remaining as u64;
            break;
        }
        let kind = bytes[offset];
        let len = u32::from_le_bytes([
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
            bytes[offset + 4],
        ]) as usize;
        let stored_crc = u32::from_le_bytes([
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
            bytes[offset + 8],
        ]);
        let Some(end) = offset
            .checked_add(FRAME_HEADER)
            .and_then(|s| s.checked_add(len))
        else {
            loaded.truncated_bytes = remaining as u64;
            break;
        };
        if end > bytes.len() {
            // The record's bytes stop at EOF: torn write, drop the tail.
            loaded.truncated_bytes = remaining as u64;
            break;
        }
        let payload = &bytes[offset + FRAME_HEADER..end];
        let mut crc_input = Vec::with_capacity(5 + len);
        crc_input.extend_from_slice(&bytes[offset..offset + 5]);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != stored_crc {
            return Err(JournalError::Corrupt {
                offset: offset as u64,
                reason: "CRC mismatch".into(),
            });
        }
        match kind {
            KIND_EVENT => {
                let ev = codec::decode_event(payload).map_err(|e: CodecError| {
                    JournalError::Corrupt {
                        offset: offset as u64,
                        reason: format!("undecodable event: {e}"),
                    }
                })?;
                if last_seq.is_some_and(|prev| ev.seq <= prev) {
                    return Err(JournalError::Corrupt {
                        offset: offset as u64,
                        reason: format!(
                            "event seq {} not after previous {}",
                            ev.seq,
                            last_seq.unwrap_or(0)
                        ),
                    });
                }
                last_seq = Some(ev.seq);
                loaded.events.push(ev);
            }
            KIND_SNAPSHOT => {
                if payload.len() < 8 {
                    return Err(JournalError::Corrupt {
                        offset: offset as u64,
                        reason: "snapshot payload shorter than its header".into(),
                    });
                }
                let through_seq = u64::from_le_bytes([
                    payload[0], payload[1], payload[2], payload[3], payload[4], payload[5],
                    payload[6], payload[7],
                ]);
                loaded.snapshot = Some(JournalSnapshot {
                    through_seq,
                    state: payload[8..].to_vec(),
                });
            }
            other => {
                return Err(JournalError::Corrupt {
                    offset: offset as u64,
                    reason: format!("unknown record kind {other}"),
                });
            }
        }
        offset = end;
    }

    // Replay starts at the last snapshot: earlier events are already
    // summarized by its state blob.
    if let Some(sn) = &loaded.snapshot {
        let horizon = sn.through_seq;
        loaded.events.retain(|e| e.seq > horizon);
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use cg_sim::SimTime;

    fn ev(seq: u64) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(seq),
            seq,
            event: Event::JobStarted { job: seq },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cg-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_and_reload_round_trips() {
        let path = tmp("roundtrip.jrnl");
        let j = Journal::create(&path, JournalConfig::default()).unwrap();
        for seq in 0..10 {
            j.append_event(&ev(seq)).unwrap();
        }
        j.sync().unwrap();
        let loaded = open_journal(&path).unwrap();
        assert_eq!(loaded.events.len(), 10);
        assert_eq!(loaded.truncated_bytes, 0);
        assert_eq!(loaded.last_seq(), Some(9));
        assert!(loaded.snapshot.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_resumes_from_the_last_snapshot() {
        let path = tmp("snapshot.jrnl");
        let j = Journal::create(&path, JournalConfig::default()).unwrap();
        for seq in 0..5 {
            j.append_event(&ev(seq)).unwrap();
        }
        j.append_snapshot(4, b"state-a").unwrap();
        for seq in 5..8 {
            j.append_event(&ev(seq)).unwrap();
        }
        j.sync().unwrap();
        let loaded = open_journal(&path).unwrap();
        let sn = loaded.snapshot.expect("snapshot present");
        assert_eq!(sn.through_seq, 4);
        assert_eq!(sn.state, b"state-a");
        let seqs: Vec<u64> = loaded.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7], "only the tail replays");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let path = tmp("torn.jrnl");
        let j = Journal::create(&path, JournalConfig::default()).unwrap();
        for seq in 0..4 {
            j.append_event(&ev(seq)).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every possible length: each prefix must load the
        // CRC-valid whole records and drop the torn remainder.
        let record_size = (full.len() - 8) / 4;
        for cut in 8..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let loaded = open_journal(&path).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            let on_boundary = (cut - 8) % record_size == 0;
            assert_eq!(
                loaded.events.len(),
                (cut - 8) / record_size,
                "cut {cut}: every whole record loads"
            );
            assert_eq!(
                loaded.truncated_bytes > 0,
                !on_boundary,
                "cut {cut}: truncation is reported iff bytes were dropped"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_rot_is_a_typed_corrupt_error() {
        let path = tmp("bitrot.jrnl");
        let j = Journal::create(&path, JournalConfig::default()).unwrap();
        for seq in 0..3 {
            j.append_event(&ev(seq)).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Flip one bit in the middle record's payload.
        let mut rotten = full.clone();
        let mid = 8 + (full.len() - 8) / 2;
        rotten[mid] ^= 0x10;
        match parse_journal(&rotten) {
            Err(JournalError::Corrupt { .. }) => {}
            Ok(loaded) => {
                // The flip may land in the last record's bytes in a way that
                // shortens it past EOF — then truncation is the correct read.
                assert!(loaded.truncated_bytes > 0, "accepted a corrupted journal");
            }
            Err(other) => panic!("wrong error type: {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_journal_file_is_bad_magic() {
        assert!(matches!(
            parse_journal(b"definitely not a journal"),
            Err(JournalError::BadMagic)
        ));
        // An empty or magic-prefix-only file is an empty journal (crash
        // before the header finished), not corruption.
        assert!(parse_journal(b"").unwrap().events.is_empty());
        assert!(parse_journal(b"CGJ").unwrap().events.is_empty());
    }
}
