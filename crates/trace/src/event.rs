//! Typed lifecycle events and their JSON rendering.
//!
//! The workspace's `serde` is a no-op offline shim, so JSON is produced by
//! hand here: one flat object per event, `at_ns`/`seq`/`event` first, then
//! the variant's own fields. Keeping the rendering next to the enum means
//! adding a variant without serialization fails to compile.

use cg_sim::SimTime;

/// One broker-stack lifecycle event. Identifiers are plain integers and
/// strings (not the originating crates' newtypes) so this crate sits below
/// every other layer and never creates a dependency cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // ── broker job lifecycle ────────────────────────────────────────────
    /// A job entered the broker.
    JobSubmitted {
        /// Broker job id.
        job: u64,
        /// Submitting user.
        user: String,
        /// Whether the job is interactive.
        interactive: bool,
    },
    /// The job's full description, journalled right after [`Event::JobSubmitted`]
    /// so crash recovery can re-run matchmaking. The pair acts as the job's
    /// commit record: a journal that contains `JobSubmitted` but not `JobAd`
    /// aborts the job deterministically on recovery.
    JobAd {
        /// Broker job id.
        job: u64,
        /// The classad source, as re-parseable JDL text.
        jdl: String,
        /// Declared runtime, nanoseconds.
        runtime_ns: u64,
    },
    /// A batch job with no current candidates entered the broker queue.
    JobQueued {
        /// Broker job id.
        job: u64,
    },
    /// The broker re-ran matchmaking for a queued batch job.
    QueueRetry {
        /// Broker job id.
        job: u64,
    },
    /// A time-limited claim was taken on a target before dispatch.
    LeaseGranted {
        /// Broker job id.
        job: u64,
        /// Leased target, e.g. `agent:3` or `site:cesga`.
        target: String,
        /// Lease expiry, nanoseconds of sim time.
        until_ns: u64,
    },
    /// The job left the broker towards a target.
    JobDispatched {
        /// Broker job id.
        job: u64,
        /// Dispatch target, e.g. `agent:3` or `site:cesga`.
        target: String,
        /// Execution backend at the target (`sim-lrms`, `thread-pool`,
        /// `process`), so replays know what ran the job.
        backend: String,
    },
    /// The job began computing.
    JobStarted {
        /// Broker job id.
        job: u64,
    },
    /// On-line scheduling withdrew the job from a queue and re-matched it.
    JobResubmitted {
        /// Broker job id.
        job: u64,
        /// 1-based resubmission attempt.
        attempt: u32,
    },
    /// A resubmission was delayed by bounded exponential backoff.
    JobBackoff {
        /// Broker job id.
        job: u64,
        /// 1-based resubmission attempt being delayed.
        attempt: u32,
        /// Jittered delay before the retry, nanoseconds.
        delay_ns: u64,
    },
    /// Terminal: the job completed normally.
    JobFinished {
        /// Broker job id.
        job: u64,
    },
    /// Terminal: the job failed.
    JobFailed {
        /// Broker job id.
        job: u64,
        /// Failure reason.
        reason: String,
    },
    /// Terminal: the user cancelled the job.
    JobCancelled {
        /// Broker job id.
        job: u64,
    },
    /// The submit-time JDL analyzer produced a finding for this job's ad.
    JdlDiagnostic {
        /// Broker job id.
        job: u64,
        /// `error` or `warning`.
        severity: String,
        /// Stable diagnostic code, e.g. `E108`.
        code: String,
        /// Human-readable description.
        message: String,
    },
    /// Terminal: the ad failed static analysis and was rejected at submit;
    /// no dispatch or lease may follow.
    JdlRejected {
        /// Broker job id.
        job: u64,
        /// Number of `error`-severity diagnostics.
        errors: u32,
    },
    /// Matchmaking excluded a candidate whose `Rank` evaluated to NaN
    /// (e.g. `0.0/0.0`). Without this exclusion the selection fold would
    /// silently never pick the site; the diagnostic makes the drop visible.
    RankNanDiscarded {
        /// Broker job id whose `Rank` misbehaved.
        job: u64,
        /// Site whose candidate was discarded.
        site: String,
    },
    /// The selection step chose a site for a job under a named policy.
    /// One event per selected site (co-allocation emits one per planned
    /// subjob site), making policy A/B runs diffable from the trace alone.
    PolicyDecision {
        /// Broker job id.
        job: u64,
        /// Registry name of the policy that scored the candidates.
        policy: String,
        /// The chosen site.
        site: String,
        /// The winning score (the rank itself under `free-cpus-rank`).
        score: f64,
    },

    // ── fair-share scheduler ────────────────────────────────────────────
    /// The fair-share engine decayed usage and recomputed priorities.
    FairShareTick {
        /// Live usage records at the tick.
        usages: u32,
    },
    /// A usage record changed application kind (and thus its factor).
    PriorityChanged {
        /// Usage record id.
        usage: u64,
        /// New kind: `batch`, `interactive` or `yielded-batch`.
        kind: String,
    },

    // ── glide-in agents & VM multiprogramming ───────────────────────────
    /// A glide-in agent was submitted to a site's LRMS.
    AgentDeployed {
        /// Agent id.
        agent: u64,
        /// Hosting site name.
        site: String,
    },
    /// The agent started on a worker node and is accepting work.
    AgentReady {
        /// Agent id.
        agent: u64,
    },
    /// The agent's carrier job ended.
    AgentDied {
        /// Agent id.
        agent: u64,
        /// LRMS-reported reason.
        reason: String,
        /// True when the agent left on purpose (machine handed back).
        voluntary: bool,
    },
    /// The batch job riding the agent finished.
    AgentBatchFinished {
        /// Agent id.
        agent: u64,
    },
    /// An arriving interactive job demoted the agent's batch job.
    BatchYielded {
        /// Agent id.
        agent: u64,
        /// Interactive broker job id that caused the yield.
        job: u64,
        /// Declared performance loss, percent.
        performance_loss: u32,
    },
    /// The interactive job departed; the batch job's priority came back.
    BatchRestored {
        /// Agent id.
        agent: u64,
        /// Interactive broker job id that departed.
        job: u64,
    },
    /// A VM slot started executing a task.
    SlotStarted {
        /// Machine label.
        machine: String,
        /// Whether the task is interactive.
        interactive: bool,
    },
    /// Interactive arrival throttled the slot's batch task.
    SlotPreempted {
        /// Machine label.
        machine: String,
        /// Batch task's new CPU rate, percent of one CPU.
        batch_rate_pct: u32,
    },
    /// Last interactive task left; the batch task runs at full rate again.
    SlotRestored {
        /// Machine label.
        machine: String,
    },
    /// A VM slot task completed.
    SlotFinished {
        /// Machine label.
        machine: String,
        /// Whether the task was interactive.
        interactive: bool,
    },

    // ── Grid Console ────────────────────────────────────────────────────
    /// The console session to the job's agent authenticated.
    ConsoleConnected {
        /// Broker job id.
        job: u64,
    },
    /// A reliable-mode connect attempt failed and will be retried.
    ConsoleRetry {
        /// Broker job id.
        job: u64,
        /// 1-based attempt that failed.
        attempt: u32,
    },
    /// First output bytes reached the user.
    ConsoleReady {
        /// Broker job id.
        job: u64,
    },
    /// A record was appended to an output spool.
    SpoolAppend {
        /// Spool/stream label.
        stream: String,
        /// Record sequence number.
        seq: u64,
    },
    /// Records through `seq` were acknowledged by the peer.
    SpoolAck {
        /// Spool/stream label.
        stream: String,
        /// Highest acknowledged sequence number.
        seq: u64,
    },
    /// Unacknowledged records were replayed after a reconnect.
    SpoolReplay {
        /// Spool/stream label.
        stream: String,
        /// Replay resumed after this sequence number.
        after: u64,
        /// Records replayed.
        records: u32,
    },
    /// An output buffer emitted a chunk.
    BufferFlush {
        /// Stream label.
        stream: String,
        /// Trigger: `full`, `timeout`, `eol` or `explicit`.
        reason: String,
        /// Bytes emitted.
        bytes: u64,
    },
    /// An agent connected to the shadow (real transport).
    ShadowConnected {
        /// Process rank.
        rank: u32,
    },
    /// An agent connection to the shadow dropped.
    ShadowDisconnected {
        /// Process rank.
        rank: u32,
    },

    // ── site LRMS ───────────────────────────────────────────────────────
    /// A job entered a site scheduler's queue.
    LrmsQueued {
        /// Site name.
        site: String,
        /// LRMS-local job id.
        job: u64,
    },
    /// A site scheduler placed a job on nodes.
    LrmsStarted {
        /// Site name.
        site: String,
        /// LRMS-local job id.
        job: u64,
        /// Nodes allocated.
        nodes: u32,
    },
    /// A site job finished normally.
    LrmsFinished {
        /// Site name.
        site: String,
        /// LRMS-local job id.
        job: u64,
    },
    /// A site job was killed (walltime, broker withdrawal, …).
    LrmsKilled {
        /// Site name.
        site: String,
        /// LRMS-local job id.
        job: u64,
        /// Kill reason.
        reason: String,
    },
    /// A terminal disposition fell off the site's bounded poll-back record:
    /// status polls for this job now return nothing, so a rejoining broker
    /// must treat its outcome as unknown.
    DispositionEvicted {
        /// Site name.
        site: String,
        /// LRMS-local job id whose record was evicted.
        job: u64,
    },

    // ── site membership & degradation ───────────────────────────────────
    /// Missed MDS refreshes or failed/timed-out live queries put a site on
    /// probation: running work keeps going, but no new lease or dispatch
    /// may land on it until it answers again.
    SiteSuspect {
        /// Site name.
        site: String,
        /// Consecutive missed MDS refreshes at the transition.
        missed_refreshes: u32,
        /// Consecutive failed or timed-out live queries at the transition.
        failed_queries: u32,
    },
    /// Obituary: the suspect site stayed quiet past the dead threshold.
    /// Its capacity lease is revoked and in-flight jobs are re-matched
    /// without burning resubmission budget.
    SiteDead {
        /// Site name.
        site: String,
        /// Broker jobs in flight on the site when it was declared dead.
        in_flight: u32,
    },
    /// A `Suspect`/`Dead` site answered again: it is `Alive` and eligible
    /// for leases, and its failure streaks are forgiven.
    SiteRejoin {
        /// Site name.
        site: String,
        /// Time spent outside `Alive`, nanoseconds.
        down_ns: u64,
    },
    /// A live per-site query exceeded its per-attempt timeout budget.
    LiveQueryTimeout {
        /// Broker job id whose matchmaking issued the query.
        job: u64,
        /// Queried site.
        site: String,
        /// 1-based attempt that timed out.
        attempt: u32,
    },
    /// A failed or timed-out live query will be re-run after a bounded,
    /// jittered, per-job-seeded backoff delay.
    QueryRetry {
        /// Broker job id.
        job: u64,
        /// Queried site.
        site: String,
        /// 1-based attempt about to be re-run.
        attempt: u32,
        /// Jittered delay before the retry, nanoseconds.
        delay_ns: u64,
    },
    /// The information system was unreachable; matchmaking fell back to
    /// the last staleness-bounded `AdSnapshot` instead of failing the job.
    DegradedMatch {
        /// Broker job id matched from stale data.
        job: u64,
        /// Age of the snapshot that served the match, nanoseconds.
        staleness_ns: u64,
    },

    // ── hierarchical aggregation (GIIS) ─────────────────────────────────
    /// A leaf index's epoch delta merged into the root aggregator's
    /// snapshot — the O(changed-sites) propagation step of the two-tier
    /// hierarchy.
    GiisDelta {
        /// Leaf index within the hierarchy, in partition order.
        leaf: u32,
        /// Root snapshot epoch after the merge.
        epoch: u64,
        /// Sites the delta touched (always > 0; quiet sweeps ship
        /// nothing).
        changed: u32,
    },
    /// A windowed MDS refresh sweep closed (or the legacy walk
    /// completed): per-cycle accounting of the refresh fan-out.
    RefreshSweep {
        /// Sites whose publication arrived and was applied.
        refreshed: u32,
        /// Sites whose publish path was down at attempt time.
        missed: u32,
        /// Sites amnestied — reply in flight or unattempted at the
        /// forced close; not counted toward `Suspect`.
        amnestied: u32,
        /// Late replies merged after their sweep had closed.
        late_merges: u32,
    },

    // ── crash recovery ──────────────────────────────────────────────────
    /// A fresh broker finished replaying a journal and re-armed in-flight
    /// work. First event of a post-crash epoch.
    BrokerRecovered {
        /// Jobs restored into the job table.
        jobs: u64,
        /// Queued batch jobs put back on the broker queue.
        requeued: u64,
        /// In-flight jobs sent back through matchmaking.
        resubmitted: u64,
        /// Agents that were alive in the journal and died with the broker.
        agents_lost: u64,
    },

    // ── experiments ─────────────────────────────────────────────────────
    /// A named scalar produced by a bench binary.
    Measurement {
        /// Metric name, e.g. `table1/exclusive/response_s`.
        name: String,
        /// Metric value.
        value: f64,
    },
}

/// An [`Event`] with its position in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Simulation time of the event (wall-derived for real-thread events).
    pub at: SimTime,
    /// Monotonic per-log sequence number (gap-free even when the ring
    /// drops old entries).
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl Event {
    /// Stable variant name, used as the JSON `event` field and as the
    /// auto-counter suffix in a [`crate::MetricsRegistry`].
    pub fn kind(&self) -> &'static str {
        match self {
            Event::JobSubmitted { .. } => "JobSubmitted",
            Event::JobAd { .. } => "JobAd",
            Event::JobQueued { .. } => "JobQueued",
            Event::QueueRetry { .. } => "QueueRetry",
            Event::LeaseGranted { .. } => "LeaseGranted",
            Event::JobDispatched { .. } => "JobDispatched",
            Event::JobStarted { .. } => "JobStarted",
            Event::JobResubmitted { .. } => "JobResubmitted",
            Event::JobBackoff { .. } => "JobBackoff",
            Event::JobFinished { .. } => "JobFinished",
            Event::JobFailed { .. } => "JobFailed",
            Event::JobCancelled { .. } => "JobCancelled",
            Event::JdlDiagnostic { .. } => "JdlDiagnostic",
            Event::JdlRejected { .. } => "JdlRejected",
            Event::RankNanDiscarded { .. } => "RankNanDiscarded",
            Event::PolicyDecision { .. } => "PolicyDecision",
            Event::FairShareTick { .. } => "FairShareTick",
            Event::PriorityChanged { .. } => "PriorityChanged",
            Event::AgentDeployed { .. } => "AgentDeployed",
            Event::AgentReady { .. } => "AgentReady",
            Event::AgentDied { .. } => "AgentDied",
            Event::AgentBatchFinished { .. } => "AgentBatchFinished",
            Event::BatchYielded { .. } => "BatchYielded",
            Event::BatchRestored { .. } => "BatchRestored",
            Event::SlotStarted { .. } => "SlotStarted",
            Event::SlotPreempted { .. } => "SlotPreempted",
            Event::SlotRestored { .. } => "SlotRestored",
            Event::SlotFinished { .. } => "SlotFinished",
            Event::ConsoleConnected { .. } => "ConsoleConnected",
            Event::ConsoleRetry { .. } => "ConsoleRetry",
            Event::ConsoleReady { .. } => "ConsoleReady",
            Event::SpoolAppend { .. } => "SpoolAppend",
            Event::SpoolAck { .. } => "SpoolAck",
            Event::SpoolReplay { .. } => "SpoolReplay",
            Event::BufferFlush { .. } => "BufferFlush",
            Event::ShadowConnected { .. } => "ShadowConnected",
            Event::ShadowDisconnected { .. } => "ShadowDisconnected",
            Event::LrmsQueued { .. } => "LrmsQueued",
            Event::LrmsStarted { .. } => "LrmsStarted",
            Event::LrmsFinished { .. } => "LrmsFinished",
            Event::LrmsKilled { .. } => "LrmsKilled",
            Event::DispositionEvicted { .. } => "DispositionEvicted",
            Event::SiteSuspect { .. } => "SiteSuspect",
            Event::SiteDead { .. } => "SiteDead",
            Event::SiteRejoin { .. } => "SiteRejoin",
            Event::LiveQueryTimeout { .. } => "LiveQueryTimeout",
            Event::QueryRetry { .. } => "QueryRetry",
            Event::DegradedMatch { .. } => "DegradedMatch",
            Event::GiisDelta { .. } => "GiisDelta",
            Event::RefreshSweep { .. } => "RefreshSweep",
            Event::BrokerRecovered { .. } => "BrokerRecovered",
            Event::Measurement { .. } => "Measurement",
        }
    }

    /// Appends this variant's own fields (leading comma included) to a JSON
    /// object under construction.
    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        let str_field = |out: &mut String, k: &str, v: &str| {
            let _ = write!(out, ",\"{k}\":\"{}\"", json_escape(v));
        };
        match self {
            Event::JobSubmitted {
                job,
                user,
                interactive,
            } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "user", user);
                let _ = write!(out, ",\"interactive\":{interactive}");
            }
            Event::JobQueued { job }
            | Event::QueueRetry { job }
            | Event::JobStarted { job }
            | Event::JobFinished { job }
            | Event::JobCancelled { job }
            | Event::ConsoleConnected { job }
            | Event::ConsoleReady { job } => {
                let _ = write!(out, ",\"job\":{job}");
            }
            Event::LeaseGranted {
                job,
                target,
                until_ns,
            } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "target", target);
                let _ = write!(out, ",\"until_ns\":{until_ns}");
            }
            Event::JobDispatched {
                job,
                target,
                backend,
            } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "target", target);
                str_field(out, "backend", backend);
            }
            Event::JobAd {
                job,
                jdl,
                runtime_ns,
            } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "jdl", jdl);
                let _ = write!(out, ",\"runtime_ns\":{runtime_ns}");
            }
            Event::JobResubmitted { job, attempt } => {
                let _ = write!(out, ",\"job\":{job},\"attempt\":{attempt}");
            }
            Event::JobBackoff {
                job,
                attempt,
                delay_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"attempt\":{attempt},\"delay_ns\":{delay_ns}"
                );
            }
            Event::JobFailed { job, reason } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "reason", reason);
            }
            Event::JdlDiagnostic {
                job,
                severity,
                code,
                message,
            } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "severity", severity);
                str_field(out, "code", code);
                str_field(out, "message", message);
            }
            Event::JdlRejected { job, errors } => {
                let _ = write!(out, ",\"job\":{job},\"errors\":{errors}");
            }
            Event::RankNanDiscarded { job, site } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "site", site);
            }
            Event::PolicyDecision {
                job,
                policy,
                site,
                score,
            } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "policy", policy);
                str_field(out, "site", site);
                let _ = write!(out, ",\"score\":{}", json_number(*score));
            }
            Event::FairShareTick { usages } => {
                let _ = write!(out, ",\"usages\":{usages}");
            }
            Event::PriorityChanged { usage, kind } => {
                let _ = write!(out, ",\"usage\":{usage}");
                str_field(out, "kind", kind);
            }
            Event::AgentDeployed { agent, site } => {
                let _ = write!(out, ",\"agent\":{agent}");
                str_field(out, "site", site);
            }
            Event::AgentReady { agent } | Event::AgentBatchFinished { agent } => {
                let _ = write!(out, ",\"agent\":{agent}");
            }
            Event::AgentDied {
                agent,
                reason,
                voluntary,
            } => {
                let _ = write!(out, ",\"agent\":{agent}");
                str_field(out, "reason", reason);
                let _ = write!(out, ",\"voluntary\":{voluntary}");
            }
            Event::BatchYielded {
                agent,
                job,
                performance_loss,
            } => {
                let _ = write!(
                    out,
                    ",\"agent\":{agent},\"job\":{job},\"performance_loss\":{performance_loss}"
                );
            }
            Event::BatchRestored { agent, job } => {
                let _ = write!(out, ",\"agent\":{agent},\"job\":{job}");
            }
            Event::SlotStarted {
                machine,
                interactive,
            }
            | Event::SlotFinished {
                machine,
                interactive,
            } => {
                str_field(out, "machine", machine);
                let _ = write!(out, ",\"interactive\":{interactive}");
            }
            Event::SlotPreempted {
                machine,
                batch_rate_pct,
            } => {
                str_field(out, "machine", machine);
                let _ = write!(out, ",\"batch_rate_pct\":{batch_rate_pct}");
            }
            Event::SlotRestored { machine } => {
                str_field(out, "machine", machine);
            }
            Event::ConsoleRetry { job, attempt } => {
                let _ = write!(out, ",\"job\":{job},\"attempt\":{attempt}");
            }
            Event::SpoolAppend { stream, seq } | Event::SpoolAck { stream, seq } => {
                str_field(out, "stream", stream);
                let _ = write!(out, ",\"seq\":{seq}");
            }
            Event::SpoolReplay {
                stream,
                after,
                records,
            } => {
                str_field(out, "stream", stream);
                let _ = write!(out, ",\"after\":{after},\"records\":{records}");
            }
            Event::BufferFlush {
                stream,
                reason,
                bytes,
            } => {
                str_field(out, "stream", stream);
                str_field(out, "reason", reason);
                let _ = write!(out, ",\"bytes\":{bytes}");
            }
            Event::ShadowConnected { rank } | Event::ShadowDisconnected { rank } => {
                let _ = write!(out, ",\"rank\":{rank}");
            }
            Event::LrmsQueued { site, job }
            | Event::LrmsFinished { site, job }
            | Event::DispositionEvicted { site, job } => {
                str_field(out, "site", site);
                let _ = write!(out, ",\"job\":{job}");
            }
            Event::LrmsStarted { site, job, nodes } => {
                str_field(out, "site", site);
                let _ = write!(out, ",\"job\":{job},\"nodes\":{nodes}");
            }
            Event::LrmsKilled { site, job, reason } => {
                str_field(out, "site", site);
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "reason", reason);
            }
            Event::SiteSuspect {
                site,
                missed_refreshes,
                failed_queries,
            } => {
                str_field(out, "site", site);
                let _ = write!(
                    out,
                    ",\"missed_refreshes\":{missed_refreshes},\"failed_queries\":{failed_queries}"
                );
            }
            Event::SiteDead { site, in_flight } => {
                str_field(out, "site", site);
                let _ = write!(out, ",\"in_flight\":{in_flight}");
            }
            Event::SiteRejoin { site, down_ns } => {
                str_field(out, "site", site);
                let _ = write!(out, ",\"down_ns\":{down_ns}");
            }
            Event::LiveQueryTimeout { job, site, attempt } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "site", site);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            Event::QueryRetry {
                job,
                site,
                attempt,
                delay_ns,
            } => {
                let _ = write!(out, ",\"job\":{job}");
                str_field(out, "site", site);
                let _ = write!(out, ",\"attempt\":{attempt},\"delay_ns\":{delay_ns}");
            }
            Event::DegradedMatch { job, staleness_ns } => {
                let _ = write!(out, ",\"job\":{job},\"staleness_ns\":{staleness_ns}");
            }
            Event::GiisDelta {
                leaf,
                epoch,
                changed,
            } => {
                let _ = write!(
                    out,
                    ",\"leaf\":{leaf},\"epoch\":{epoch},\"changed\":{changed}"
                );
            }
            Event::RefreshSweep {
                refreshed,
                missed,
                amnestied,
                late_merges,
            } => {
                let _ = write!(
                    out,
                    ",\"refreshed\":{refreshed},\"missed\":{missed},\"amnestied\":{amnestied},\"late_merges\":{late_merges}"
                );
            }
            Event::BrokerRecovered {
                jobs,
                requeued,
                resubmitted,
                agents_lost,
            } => {
                let _ = write!(
                    out,
                    ",\"jobs\":{jobs},\"requeued\":{requeued},\"resubmitted\":{resubmitted},\"agents_lost\":{agents_lost}"
                );
            }
            Event::Measurement { name, value } => {
                str_field(out, "name", name);
                let _ = write!(out, ",\"value\":{}", json_number(*value));
            }
        }
    }
}

impl TimedEvent {
    /// Renders the event as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"at_ns\":{},\"seq\":{},\"event\":\"{}\"",
            self.at.as_nanos(),
            self.seq,
            self.event.kind()
        );
        self.event.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// Escapes a string for inclusion inside JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a valid JSON number (JSON has no NaN/Infinity).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        // `{}` on a whole f64 prints no decimal point; keep it a float so
        // downstream type inference stays stable.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn json_number_is_always_valid_json() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(3.0), "3.0");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn every_variant_names_itself() {
        let e = Event::JobSubmitted {
            job: 1,
            user: "alice".into(),
            interactive: true,
        };
        assert_eq!(e.kind(), "JobSubmitted");
    }
}
