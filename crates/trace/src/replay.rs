//! Deterministic state reconstruction from an event stream.
//!
//! [`ReplayState`] is a pure fold over [`TimedEvent`]s: apply every event in
//! order and you get the broker-visible state at the end of the stream —
//! job table, agent registry, VM slot occupancy, spool watermarks. Crash
//! recovery folds a journal's snapshot + tail through here, and the
//! recovery invariants compare this "what the stream says" view against the
//! freshly reconstructed broker.
//!
//! The fold is **idempotent on its comparison core**: re-applying the same
//! events to an already-folded state leaves jobs, agents and spool
//! watermarks unchanged (terminal phases never downgrade, attempts and
//! watermarks are max-based). That property is what the "recovered state is
//! a fixpoint of the event stream" invariant checks. Slot occupancy is the
//! one counter-based field and is excluded from the fixpoint core.

use crate::codec::{put_bool, put_str, put_u32, put_u64, put_u8, CodecError, Cursor};
use crate::event::{Event, TimedEvent};
use crate::journal::{JournalError, LoadedJournal};
use std::collections::BTreeMap;

/// Fine-grained job lifecycle position, as reconstructable from events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `JobSubmitted` seen, nothing further.
    Submitted,
    /// Parked on the broker queue (batch, no candidates).
    Queued,
    /// Back in matchmaking after a queue retry or resubmission.
    Matching,
    /// Holding a lease on a target.
    Leased,
    /// Sent towards a target.
    Dispatched,
    /// Computing.
    Running,
    /// Terminal: completed normally.
    Finished,
    /// Terminal: failed.
    Failed,
    /// Terminal: cancelled by the user.
    Cancelled,
    /// Terminal: rejected by JDL static analysis.
    Rejected,
}

/// Coarse disposition buckets used for cross-recovery comparison. The
/// broker's own job table is lossier than the event stream (e.g. cancelled
/// and rejected jobs both persist as `Failed { reason }`), so equality
/// across a crash is defined at this granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// In matchmaking or dispatch, not yet running.
    Pending,
    /// On the broker queue.
    Queued,
    /// Computing.
    Running,
    /// Finished normally.
    Done,
    /// Failed, cancelled or rejected.
    Errored,
}

impl Phase {
    /// The phase's coarse disposition bucket.
    #[must_use]
    pub fn bucket(self) -> Bucket {
        match self {
            Phase::Submitted | Phase::Matching | Phase::Leased | Phase::Dispatched => {
                Bucket::Pending
            }
            Phase::Queued => Bucket::Queued,
            Phase::Running => Bucket::Running,
            Phase::Finished => Bucket::Done,
            Phase::Failed | Phase::Cancelled | Phase::Rejected => Bucket::Errored,
        }
    }

    /// True for the four terminal phases.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Phase::Finished | Phase::Failed | Phase::Cancelled | Phase::Rejected
        )
    }
}

/// One job as seen by the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayJob {
    /// Submitting user.
    pub user: String,
    /// Whether the job is interactive.
    pub interactive: bool,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// On the broker queue right now.
    pub queued: bool,
    /// Highest resubmission attempt seen.
    pub attempts: u32,
    /// The job has started computing at least once.
    pub started: bool,
    /// `JobSubmitted` timestamp, nanoseconds.
    pub submitted_at_ns: u64,
    /// First `JobStarted` timestamp.
    pub started_at_ns: Option<u64>,
    /// Terminal-event timestamp.
    pub finished_at_ns: Option<u64>,
    /// Most recent lease: `(target, until_ns)`.
    pub lease: Option<(String, u64)>,
    /// Re-parseable JDL source from the `JobAd` commit record.
    pub jdl: Option<String>,
    /// Declared runtime from the `JobAd` commit record.
    pub runtime_ns: Option<u64>,
    /// Failure reason for `Phase::Failed`.
    pub fail_reason: Option<String>,
}

impl ReplayJob {
    fn new(at_ns: u64) -> Self {
        ReplayJob {
            user: String::new(),
            interactive: false,
            phase: Phase::Submitted,
            queued: false,
            attempts: 0,
            started: false,
            submitted_at_ns: at_ns,
            started_at_ns: None,
            finished_at_ns: None,
            lease: None,
            jdl: None,
            runtime_ns: None,
            fail_reason: None,
        }
    }

    /// Moves to `phase` unless a terminal phase has already been reached —
    /// terminal states win, which is what makes re-application idempotent.
    fn advance(&mut self, phase: Phase) {
        if !self.phase.is_terminal() {
            self.phase = phase;
        }
    }

    fn terminate(&mut self, phase: Phase, at_ns: u64) {
        if !self.phase.is_terminal() {
            self.phase = phase;
            self.finished_at_ns = Some(at_ns);
            self.queued = false;
            self.lease = None;
        }
    }
}

/// One glide-in agent as seen by the event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayAgent {
    /// Hosting site.
    pub site: String,
    /// Deployed and not yet died.
    pub alive: bool,
    /// Reached `AgentReady`.
    pub ready: bool,
}

/// Per-machine VM slot occupancy (running task counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotUse {
    /// Interactive tasks currently on the slot.
    pub interactive: i64,
    /// Batch tasks currently on the slot.
    pub batch: i64,
}

/// Per-stream spool watermarks (max-based, monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpoolMark {
    /// Highest appended record sequence.
    pub appended: u64,
    /// Highest acknowledged record sequence.
    pub acked: u64,
}

/// Membership verdict on an unhealthy site, as reconstructable from the
/// obituary events. Healthy sites never appear in the registry — a
/// `SiteRejoin` removes the entry — so the fold is last-writer-wins and
/// idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteHealth {
    /// `SiteSuspect` seen, no rejoin since.
    Suspect,
    /// `SiteDead` seen, no rejoin since.
    Dead,
}

/// Broker-visible state reconstructed from an event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayState {
    /// Job table, by broker job id.
    pub jobs: BTreeMap<u64, ReplayJob>,
    /// Agent registry, by agent id.
    pub agents: BTreeMap<u64, ReplayAgent>,
    /// VM slot occupancy, by machine label. Counter-based: excluded from
    /// the fixpoint comparison core.
    pub slots: BTreeMap<String, SlotUse>,
    /// Spool watermarks, by stream label.
    pub spools: BTreeMap<String, SpoolMark>,
    /// Sites currently held `Suspect`/`Dead` by the failure detector.
    pub site_health: BTreeMap<String, SiteHealth>,
    /// Highest event sequence number applied.
    pub last_seq: Option<u64>,
    /// Timestamp of the last applied event, nanoseconds.
    pub last_at_ns: u64,
}

impl ReplayState {
    /// Folds a whole stream into a fresh state.
    #[must_use]
    pub fn from_events(events: &[TimedEvent]) -> Self {
        let mut s = ReplayState::default();
        for e in events {
            s.apply(e);
        }
        s
    }

    /// Applies one event.
    pub fn apply(&mut self, te: &TimedEvent) {
        let at_ns = te.at.as_nanos();
        self.last_seq = Some(self.last_seq.map_or(te.seq, |s| s.max(te.seq)));
        self.last_at_ns = self.last_at_ns.max(at_ns);
        match &te.event {
            Event::JobSubmitted {
                job,
                user,
                interactive,
            } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.user.clone_from(user);
                j.interactive = *interactive;
            }
            Event::JobAd {
                job,
                jdl,
                runtime_ns,
            } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.jdl = Some(jdl.clone());
                j.runtime_ns = Some(*runtime_ns);
            }
            Event::JobQueued { job } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                if !j.phase.is_terminal() {
                    j.queued = true;
                }
                j.advance(Phase::Queued);
            }
            Event::QueueRetry { job } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                if !j.phase.is_terminal() {
                    j.queued = false;
                }
                j.advance(Phase::Matching);
            }
            Event::LeaseGranted {
                job,
                target,
                until_ns,
            } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                if !j.phase.is_terminal() {
                    j.lease = Some((target.clone(), *until_ns));
                }
                if !matches!(j.phase, Phase::Running) {
                    j.advance(Phase::Leased);
                }
            }
            Event::JobDispatched { job, .. } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                if !matches!(j.phase, Phase::Running) {
                    j.advance(Phase::Dispatched);
                }
            }
            Event::JobStarted { job } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.started = true;
                if j.started_at_ns.is_none() {
                    j.started_at_ns = Some(at_ns);
                }
                j.advance(Phase::Running);
            }
            Event::JobResubmitted { job, attempt } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.attempts = j.attempts.max(*attempt);
                j.advance(Phase::Matching);
            }
            Event::JobBackoff { job, .. } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.advance(Phase::Matching);
            }
            Event::JobFinished { job } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.terminate(Phase::Finished, at_ns);
            }
            Event::JobFailed { job, reason } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                if !j.phase.is_terminal() {
                    j.fail_reason = Some(reason.clone());
                }
                j.terminate(Phase::Failed, at_ns);
            }
            Event::JobCancelled { job } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.terminate(Phase::Cancelled, at_ns);
            }
            Event::JdlRejected { job, .. } => {
                let j = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| ReplayJob::new(at_ns));
                j.terminate(Phase::Rejected, at_ns);
            }
            Event::AgentDeployed { agent, site } => {
                let a = self.agents.entry(*agent).or_insert_with(|| ReplayAgent {
                    site: site.clone(),
                    alive: true,
                    ready: false,
                });
                a.site.clone_from(site);
            }
            Event::AgentReady { agent } => {
                if let Some(a) = self.agents.get_mut(agent) {
                    a.ready = true;
                }
            }
            Event::AgentDied { agent, .. } => {
                if let Some(a) = self.agents.get_mut(agent) {
                    a.alive = false;
                }
            }
            Event::SlotStarted {
                machine,
                interactive,
            } => {
                let s = self.slots.entry(machine.clone()).or_default();
                if *interactive {
                    s.interactive += 1;
                } else {
                    s.batch += 1;
                }
            }
            Event::SlotFinished {
                machine,
                interactive,
            } => {
                let s = self.slots.entry(machine.clone()).or_default();
                if *interactive {
                    s.interactive -= 1;
                } else {
                    s.batch -= 1;
                }
            }
            Event::SpoolAppend { stream, seq } => {
                let m = self.spools.entry(stream.clone()).or_default();
                m.appended = m.appended.max(*seq);
            }
            Event::SpoolAck { stream, seq } => {
                let m = self.spools.entry(stream.clone()).or_default();
                m.acked = m.acked.max(*seq);
            }
            Event::SiteSuspect { site, .. } => {
                self.site_health.insert(site.clone(), SiteHealth::Suspect);
            }
            Event::SiteDead { site, .. } => {
                self.site_health.insert(site.clone(), SiteHealth::Dead);
            }
            Event::SiteRejoin { site, .. } => {
                self.site_health.remove(site);
            }
            // Fair-share ticks, console lifecycle, buffer flushes, LRMS
            // bookkeeping and measurements don't shape recoverable state.
            _ => {}
        }
    }

    /// Jobs whose phase falls in `bucket`.
    #[must_use]
    pub fn count_bucket(&self, bucket: Bucket) -> usize {
        self.jobs
            .values()
            .filter(|j| j.phase.bucket() == bucket)
            .count()
    }
}

impl LoadedJournal {
    /// Reconstructs the broker-visible state at the crash point: decodes
    /// the snapshot (if any) and folds the tail events over it.
    ///
    /// # Errors
    /// [`JournalError::Corrupt`] when the snapshot blob does not decode.
    pub fn replay_state(&self) -> Result<ReplayState, JournalError> {
        let mut s = match &self.snapshot {
            Some(sn) => decode_state(&sn.state).map_err(|e| JournalError::Corrupt {
                offset: 0,
                reason: format!("undecodable snapshot state: {e}"),
            })?,
            None => ReplayState::default(),
        };
        for e in &self.events {
            s.apply(e);
        }
        Ok(s)
    }
}

// ── snapshot blob codec ─────────────────────────────────────────────────

const STATE_VERSION: u8 = 2;

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::Submitted => 0,
        Phase::Queued => 1,
        Phase::Matching => 2,
        Phase::Leased => 3,
        Phase::Dispatched => 4,
        Phase::Running => 5,
        Phase::Finished => 6,
        Phase::Failed => 7,
        Phase::Cancelled => 8,
        Phase::Rejected => 9,
    }
}

fn phase_from_tag(t: u8) -> Result<Phase, CodecError> {
    Ok(match t {
        0 => Phase::Submitted,
        1 => Phase::Queued,
        2 => Phase::Matching,
        3 => Phase::Leased,
        4 => Phase::Dispatched,
        5 => Phase::Running,
        6 => Phase::Finished,
        7 => Phase::Failed,
        8 => Phase::Cancelled,
        9 => Phase::Rejected,
        other => return Err(CodecError::BadTag(other)),
    })
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
        None => put_u8(out, 0),
    }
}

fn get_opt_u64(c: &mut Cursor<'_>) -> Result<Option<u64>, CodecError> {
    Ok(if c.u8()? != 0 { Some(c.u64()?) } else { None })
}

fn put_opt_str(out: &mut Vec<u8>, v: Option<&str>) {
    match v {
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
        None => put_u8(out, 0),
    }
}

fn get_opt_str(c: &mut Cursor<'_>) -> Result<Option<String>, CodecError> {
    Ok(if c.u8()? != 0 { Some(c.str()?) } else { None })
}

/// Serializes a [`ReplayState`] into the versioned snapshot blob format.
#[must_use]
pub fn encode_state(state: &ReplayState) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_u8(&mut out, STATE_VERSION);
    put_opt_u64(&mut out, state.last_seq);
    put_u64(&mut out, state.last_at_ns);

    put_u32(&mut out, state.jobs.len() as u32);
    for (id, j) in &state.jobs {
        put_u64(&mut out, *id);
        put_str(&mut out, &j.user);
        put_bool(&mut out, j.interactive);
        put_u8(&mut out, phase_tag(j.phase));
        put_bool(&mut out, j.queued);
        put_u32(&mut out, j.attempts);
        put_bool(&mut out, j.started);
        put_u64(&mut out, j.submitted_at_ns);
        put_opt_u64(&mut out, j.started_at_ns);
        put_opt_u64(&mut out, j.finished_at_ns);
        match &j.lease {
            Some((target, until)) => {
                put_u8(&mut out, 1);
                put_str(&mut out, target);
                put_u64(&mut out, *until);
            }
            None => put_u8(&mut out, 0),
        }
        put_opt_str(&mut out, j.jdl.as_deref());
        put_opt_u64(&mut out, j.runtime_ns);
        put_opt_str(&mut out, j.fail_reason.as_deref());
    }

    put_u32(&mut out, state.agents.len() as u32);
    for (id, a) in &state.agents {
        put_u64(&mut out, *id);
        put_str(&mut out, &a.site);
        put_bool(&mut out, a.alive);
        put_bool(&mut out, a.ready);
    }

    put_u32(&mut out, state.slots.len() as u32);
    for (machine, s) in &state.slots {
        put_str(&mut out, machine);
        put_u64(&mut out, s.interactive.cast_unsigned());
        put_u64(&mut out, s.batch.cast_unsigned());
    }

    put_u32(&mut out, state.spools.len() as u32);
    for (stream, m) in &state.spools {
        put_str(&mut out, stream);
        put_u64(&mut out, m.appended);
        put_u64(&mut out, m.acked);
    }

    put_u32(&mut out, state.site_health.len() as u32);
    for (site, h) in &state.site_health {
        put_str(&mut out, site);
        put_u8(
            &mut out,
            match h {
                SiteHealth::Suspect => 0,
                SiteHealth::Dead => 1,
            },
        );
    }
    out
}

/// Decodes a snapshot blob produced by [`encode_state`].
///
/// # Errors
/// Returns a [`CodecError`] for truncated, mis-versioned or malformed
/// blobs.
pub fn decode_state(bytes: &[u8]) -> Result<ReplayState, CodecError> {
    let mut c = Cursor::new(bytes);
    let version = c.u8()?;
    if version != STATE_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let mut state = ReplayState {
        last_seq: get_opt_u64(&mut c)?,
        last_at_ns: c.u64()?,
        ..ReplayState::default()
    };

    let n_jobs = c.u32()?;
    for _ in 0..n_jobs {
        let id = c.u64()?;
        let job = ReplayJob {
            user: c.str()?,
            interactive: c.bool()?,
            phase: phase_from_tag(c.u8()?)?,
            queued: c.bool()?,
            attempts: c.u32()?,
            started: c.bool()?,
            submitted_at_ns: c.u64()?,
            started_at_ns: get_opt_u64(&mut c)?,
            finished_at_ns: get_opt_u64(&mut c)?,
            lease: if c.u8()? != 0 {
                Some((c.str()?, c.u64()?))
            } else {
                None
            },
            jdl: get_opt_str(&mut c)?,
            runtime_ns: get_opt_u64(&mut c)?,
            fail_reason: get_opt_str(&mut c)?,
        };
        state.jobs.insert(id, job);
    }

    let n_agents = c.u32()?;
    for _ in 0..n_agents {
        let id = c.u64()?;
        let agent = ReplayAgent {
            site: c.str()?,
            alive: c.bool()?,
            ready: c.bool()?,
        };
        state.agents.insert(id, agent);
    }

    let n_slots = c.u32()?;
    for _ in 0..n_slots {
        let machine = c.str()?;
        let interactive = c.u64()?.cast_signed();
        let batch = c.u64()?.cast_signed();
        state.slots.insert(machine, SlotUse { interactive, batch });
    }

    let n_spools = c.u32()?;
    for _ in 0..n_spools {
        let stream = c.str()?;
        let appended = c.u64()?;
        let acked = c.u64()?;
        state.spools.insert(stream, SpoolMark { appended, acked });
    }

    let n_health = c.u32()?;
    for _ in 0..n_health {
        let site = c.str()?;
        let health = match c.u8()? {
            0 => SiteHealth::Suspect,
            1 => SiteHealth::Dead,
            other => return Err(CodecError::BadTag(other)),
        };
        state.site_health.insert(site, health);
    }

    if !c.is_empty() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_sim::SimTime;

    fn te(seq: u64, event: Event) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_secs(seq),
            seq,
            event,
        }
    }

    fn little_stream() -> Vec<TimedEvent> {
        vec![
            te(
                0,
                Event::JobSubmitted {
                    job: 0,
                    user: "alice".into(),
                    interactive: true,
                },
            ),
            te(
                1,
                Event::JobAd {
                    job: 0,
                    jdl: "Executable = \"i\";".into(),
                    runtime_ns: 1,
                },
            ),
            te(
                2,
                Event::LeaseGranted {
                    job: 0,
                    target: "site:a".into(),
                    until_ns: 99_000_000_000,
                },
            ),
            te(
                3,
                Event::JobDispatched {
                    job: 0,
                    target: "site:a".into(),
                    backend: "sim-lrms".into(),
                },
            ),
            te(4, Event::JobStarted { job: 0 }),
            te(
                5,
                Event::JobSubmitted {
                    job: 1,
                    user: "bob".into(),
                    interactive: false,
                },
            ),
            te(6, Event::JobQueued { job: 1 }),
            te(
                7,
                Event::AgentDeployed {
                    agent: 0,
                    site: "a".into(),
                },
            ),
            te(8, Event::AgentReady { agent: 0 }),
            te(
                9,
                Event::SpoolAppend {
                    stream: "stdout".into(),
                    seq: 5,
                },
            ),
            te(
                10,
                Event::SpoolAck {
                    stream: "stdout".into(),
                    seq: 3,
                },
            ),
            te(11, Event::JobFinished { job: 0 }),
        ]
    }

    #[test]
    fn fold_reconstructs_the_table() {
        let s = ReplayState::from_events(&little_stream());
        assert_eq!(s.jobs.len(), 2);
        let j0 = &s.jobs[&0];
        assert_eq!(j0.phase, Phase::Finished);
        assert!(j0.started && !j0.queued && j0.lease.is_none());
        assert_eq!(j0.jdl.as_deref(), Some("Executable = \"i\";"));
        let j1 = &s.jobs[&1];
        assert_eq!(j1.phase, Phase::Queued);
        assert!(j1.queued);
        assert!(s.agents[&0].alive && s.agents[&0].ready);
        assert_eq!(s.spools["stdout"].appended, 5);
        assert_eq!(s.spools["stdout"].acked, 3);
        assert_eq!(s.last_seq, Some(11));
    }

    #[test]
    fn refolding_the_stream_is_a_fixpoint() {
        let events = little_stream();
        let once = ReplayState::from_events(&events);
        let mut twice = once.clone();
        for e in &events {
            twice.apply(e);
        }
        assert_eq!(once.jobs, twice.jobs, "job table must be idempotent");
        assert_eq!(once.agents, twice.agents);
        assert_eq!(once.spools, twice.spools);
    }

    #[test]
    fn terminal_phases_never_downgrade() {
        let mut s = ReplayState::default();
        s.apply(&te(0, Event::JobFinished { job: 0 }));
        s.apply(&te(1, Event::JobStarted { job: 0 }));
        s.apply(&te(2, Event::JobQueued { job: 0 }));
        assert_eq!(s.jobs[&0].phase, Phase::Finished);
        assert!(!s.jobs[&0].queued);
    }

    #[test]
    fn site_obituaries_fold_into_the_health_registry() {
        let mut s = ReplayState::default();
        s.apply(&te(
            0,
            Event::SiteSuspect {
                site: "a".into(),
                missed_refreshes: 2,
                failed_queries: 0,
            },
        ));
        s.apply(&te(
            1,
            Event::SiteDead {
                site: "b".into(),
                in_flight: 3,
            },
        ));
        assert_eq!(s.site_health["a"], SiteHealth::Suspect);
        assert_eq!(s.site_health["b"], SiteHealth::Dead);
        // Dead supersedes suspect; rejoin clears.
        s.apply(&te(
            2,
            Event::SiteDead {
                site: "a".into(),
                in_flight: 0,
            },
        ));
        assert_eq!(s.site_health["a"], SiteHealth::Dead);
        s.apply(&te(
            3,
            Event::SiteRejoin {
                site: "a".into(),
                down_ns: 7,
            },
        ));
        assert!(!s.site_health.contains_key("a"));
        // Idempotent: refolding the surviving entry changes nothing.
        let before = s.clone();
        s.apply(&te(
            1,
            Event::SiteDead {
                site: "b".into(),
                in_flight: 3,
            },
        ));
        assert_eq!(s.site_health, before.site_health);
    }

    #[test]
    fn state_codec_round_trips() {
        let mut s = ReplayState::from_events(&little_stream());
        s.site_health.insert("a".into(), SiteHealth::Suspect);
        s.site_health.insert("b".into(), SiteHealth::Dead);
        let blob = encode_state(&s);
        let back = decode_state(&blob).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn state_codec_rejects_truncation_and_bad_version() {
        let s = ReplayState::from_events(&little_stream());
        let blob = encode_state(&s);
        for cut in 0..blob.len() {
            assert!(decode_state(&blob[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = blob;
        bad[0] = 99;
        assert_eq!(decode_state(&bad), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn buckets_partition_the_phases() {
        assert_eq!(Phase::Submitted.bucket(), Bucket::Pending);
        assert_eq!(Phase::Leased.bucket(), Bucket::Pending);
        assert_eq!(Phase::Queued.bucket(), Bucket::Queued);
        assert_eq!(Phase::Running.bucket(), Bucket::Running);
        assert_eq!(Phase::Finished.bucket(), Bucket::Done);
        assert_eq!(Phase::Cancelled.bucket(), Bucket::Errored);
        assert_eq!(Phase::Rejected.bucket(), Bucket::Errored);
    }
}
