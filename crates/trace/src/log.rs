//! The shared, bounded event log.

use crate::sync::{Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::Arc;

use cg_sim::SimTime;

use crate::event::{Event, TimedEvent};
use crate::journal::Journal;
use crate::metrics::MetricsRegistry;

/// A deterministic kill point: the broker "crashes" immediately after the
/// event with this sequence number is journalled. Used by the kill-point
/// sweep to crash a scenario at every event boundary.
///
/// A crash here means the durable journal is sealed — synced and detached —
/// exactly after `after_event_seq`; everything the process does afterwards
/// is lost, precisely like power failing between two appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Seal the journal right after the event with this sequence number.
    pub after_event_seq: u64,
}

struct LogInner {
    ring: VecDeque<TimedEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    metrics: Option<MetricsRegistry>,
    journal: Option<Journal>,
    crash_after: Option<u64>,
    crashed: bool,
    journal_error: Option<String>,
}

impl LogInner {
    /// The single append path: seq allocation, ring eviction, journal
    /// append and the kill point all happen under the caller-held lock, so
    /// concurrent writers can never produce a gap, a duplicate seq, or a
    /// journal whose order disagrees with the ring.
    fn append(&mut self, at: SimTime, event: Event) {
        if let Some(metrics) = &self.metrics {
            metrics.inc(&format!("events.{}", event.kind()));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        let timed = TimedEvent { at, seq, event };
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append_event(&timed) {
                let msg = format!("journal append failed at seq {seq}: {e}");
                self.journal_error.get_or_insert(msg);
            }
        }
        if self.crash_after == Some(seq) {
            // The kill point: make everything up to and including `seq`
            // durable, then detach — later events are lost with the crash.
            if let Some(journal) = self.journal.take() {
                if let Err(e) = journal.sync() {
                    let msg = format!("journal sync failed at crash point: {e}");
                    self.journal_error.get_or_insert(msg);
                }
            }
            self.crashed = true;
        }
        self.ring.push_back(timed);
    }
}

/// A ring-buffered lifecycle event log.
///
/// Clones share the same buffer, so one log can be threaded through the
/// broker, agents, consoles and sites and read back in a single snapshot.
/// The ring keeps the newest `capacity` events; `dropped()` counts how many
/// older ones were evicted (sequence numbers stay gap-free regardless).
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Mutex<LogInner>>,
}

impl EventLog {
    /// Creates a log keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            inner: Arc::new(Mutex::new(LogInner {
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
                metrics: None,
                journal: None,
                crash_after: None,
                crashed: false,
                journal_error: None,
            })),
        }
    }

    /// Creates a log that also bumps `events.<Kind>` counters in `metrics`
    /// for every recorded event.
    pub fn with_metrics(capacity: usize, metrics: MetricsRegistry) -> Self {
        let log = EventLog::new(capacity);
        log.lock().metrics = Some(metrics);
        log
    }

    fn lock(&self) -> MutexGuard<'_, LogInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attaches a durable journal: every event recorded from now on is
    /// also appended to it. Attach before the first `record` call if the
    /// journal must contain the whole stream.
    pub fn set_journal(&self, journal: Journal) {
        self.lock().journal = Some(journal);
    }

    /// The attached journal, if any (and not yet sealed by a crash).
    pub fn journal(&self) -> Option<Journal> {
        self.lock().journal.clone()
    }

    /// Arms a deterministic kill point (see [`CrashPlan`]).
    pub fn arm_crash(&self, plan: CrashPlan) {
        self.lock().crash_after = Some(plan.after_event_seq);
    }

    /// True once an armed [`CrashPlan`] has fired and sealed the journal.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The first journal append/sync failure, if one occurred. Journal I/O
    /// trouble never takes the simulation down; it is surfaced here.
    pub fn journal_error(&self) -> Option<String> {
        self.lock().journal_error.clone()
    }

    /// Appends an event at sim time `at`.
    pub fn record(&self, at: SimTime, event: Event) {
        self.lock().append(at, event);
    }

    /// Appends a batch of events at sim time `at` under a single lock
    /// acquisition: the batch occupies one contiguous, gap-free run of
    /// sequence numbers with no other writer's events interleaved. This is
    /// what the sharded matchmaking engine uses to flush one job's
    /// lifecycle events atomically from a worker thread.
    pub fn record_many<I: IntoIterator<Item = Event>>(&self, at: SimTime, events: I) {
        let mut inner = self.lock();
        for event in events {
            inner.append(at, event);
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.lock().ring.is_empty()
    }

    /// Events evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Discards all retained events (sequence numbering continues).
    pub fn clear(&self) {
        self.lock().ring.clear();
    }

    /// Renders the retained events as JSON Lines, one object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.lock().ring {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("EventLog")
            .field("len", &inner.ring.len())
            .field("capacity", &inner.capacity)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

/// Writes `log` as JSONL to the file named by the environment variable
/// `env_var`, if set. Returns the path written, `None` when the variable is
/// unset or empty. Bench binaries call this after their run so
/// `CG_TRACE_JSONL=out.jsonl cargo run --bin …` captures the event stream
/// with no extra flags.
pub fn dump_jsonl_env(log: &EventLog, env_var: &str) -> Option<std::path::PathBuf> {
    let path = std::env::var(env_var).ok().filter(|p| !p.is_empty())?;
    let path = std::path::PathBuf::from(path);
    if let Err(e) = std::fs::write(&path, log.to_jsonl()) {
        eprintln!("warning: could not write {}: {e}", path.display());
        return None;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(job: u64) -> Event {
        Event::JobStarted { job }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.record(SimTime::from_secs(i), ev(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.recorded(), 5);
        let snap = log.snapshot();
        assert_eq!(snap[0].seq, 2, "oldest retained is the third event");
        assert_eq!(snap[2].seq, 4);
    }

    #[test]
    fn clones_share_the_buffer() {
        let log = EventLog::new(16);
        let clone = log.clone();
        clone.record(SimTime::ZERO, ev(1));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn metrics_count_event_kinds() {
        let metrics = MetricsRegistry::new();
        let log = EventLog::with_metrics(16, metrics.clone());
        log.record(SimTime::ZERO, ev(1));
        log.record(SimTime::ZERO, ev(2));
        log.record(SimTime::ZERO, Event::JobFinished { job: 1 });
        assert_eq!(metrics.counter("events.JobStarted"), 2);
        assert_eq!(metrics.counter("events.JobFinished"), 1);
    }

    #[test]
    fn threads_can_record_concurrently() {
        let log = EventLog::new(1024);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.record(SimTime::from_nanos(i), ev(t));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
        // Sequence numbers are unique even under contention.
        let mut seqs: Vec<u64> = log.snapshot().iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400);
    }

    #[test]
    fn concurrent_writers_keep_the_journal_gap_free() {
        use crate::journal::{open_journal, Journal, JournalConfig};
        let path = std::env::temp_dir().join(format!(
            "cg-log-conc-{}-{:?}.jrnl",
            std::process::id(),
            std::thread::current().id()
        ));
        let log = EventLog::new(4096);
        log.set_journal(Journal::create(&path, JournalConfig { fsync_every: 64 }).unwrap());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        log.record(SimTime::from_nanos(i), ev(t));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        log.journal().unwrap().sync().unwrap();
        assert_eq!(log.journal_error(), None);
        let loaded = open_journal(&path).unwrap();
        let seqs: Vec<u64> = loaded.events.iter().map(|e| e.seq).collect();
        assert_eq!(
            seqs,
            (0..400).collect::<Vec<u64>>(),
            "journal order is the allocation order: monotonic and gap-free"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_many_keeps_batches_contiguous_under_contention() {
        let log = EventLog::new(4096);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for _ in 0..40 {
                        // One job's lifecycle flushed as an atomic batch.
                        log.record_many(
                            SimTime::from_nanos(t),
                            [Event::JobStarted { job: t }, Event::JobFinished { job: t }],
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 640);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "gap-free under contention");
        }
        // Every batch is contiguous: a JobStarted is always immediately
        // followed by the same writer's JobFinished.
        for pair in snap.chunks(2) {
            let (Event::JobStarted { job: a }, Event::JobFinished { job: b }) =
                (&pair[0].event, &pair[1].event)
            else {
                panic!("interleaved batch at seq {}", pair[0].seq);
            };
            assert_eq!(a, b, "batch from one writer stayed together");
        }
    }

    #[test]
    fn armed_crash_seals_the_journal_at_the_kill_point() {
        use crate::journal::{open_journal, Journal, JournalConfig};
        let path = std::env::temp_dir().join(format!(
            "cg-log-crash-{}-{:?}.jrnl",
            std::process::id(),
            std::thread::current().id()
        ));
        let log = EventLog::new(64);
        log.set_journal(Journal::create(&path, JournalConfig { fsync_every: 1 }).unwrap());
        log.arm_crash(CrashPlan { after_event_seq: 2 });
        for i in 0..6 {
            log.record(SimTime::from_secs(i), ev(i));
        }
        assert!(log.crashed());
        assert!(
            log.journal().is_none(),
            "journal detached at the kill point"
        );
        assert_eq!(log.len(), 6, "the in-memory ring keeps running");
        let loaded = open_journal(&path).unwrap();
        let seqs: Vec<u64> = loaded.events.iter().map(|e| e.seq).collect();
        assert_eq!(
            seqs,
            vec![0, 1, 2],
            "exactly the pre-crash prefix is durable"
        );
        assert_eq!(log.journal_error(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn golden_jsonl_shape() {
        let log = EventLog::new(16);
        log.record(
            SimTime::from_secs(1),
            Event::JobSubmitted {
                job: 7,
                user: "al\"ice".into(),
                interactive: true,
            },
        );
        log.record(
            SimTime::from_secs(2),
            Event::LeaseGranted {
                job: 7,
                target: "agent:0".into(),
                until_ns: 2_500_000_000,
            },
        );
        log.record(
            SimTime::from_secs(3),
            Event::Measurement {
                name: "response_s".into(),
                value: 2.0,
            },
        );
        let expected = concat!(
            "{\"at_ns\":1000000000,\"seq\":0,\"event\":\"JobSubmitted\",",
            "\"job\":7,\"user\":\"al\\\"ice\",\"interactive\":true}\n",
            "{\"at_ns\":2000000000,\"seq\":1,\"event\":\"LeaseGranted\",",
            "\"job\":7,\"target\":\"agent:0\",\"until_ns\":2500000000}\n",
            "{\"at_ns\":3000000000,\"seq\":2,\"event\":\"Measurement\",",
            "\"name\":\"response_s\",\"value\":2.0}\n",
        );
        assert_eq!(log.to_jsonl(), expected);
    }

    #[test]
    fn jsonl_lines_are_schema_clean() {
        // Every line must start with the three envelope fields in order and
        // be a structurally balanced flat object — a cheap stand-in for a
        // JSON parser in this no-serde workspace.
        let log = EventLog::new(64);
        log.record(SimTime::ZERO, ev(1));
        log.record(
            SimTime::from_secs(9),
            Event::JobFailed {
                job: 1,
                reason: "lease expired\n(retry)".into(),
            },
        );
        log.record(
            SimTime::from_secs(10),
            Event::BufferFlush {
                stream: "stdout-r0".into(),
                reason: "timeout".into(),
                bytes: 42,
            },
        );
        for line in log.to_jsonl().lines() {
            assert!(line.starts_with("{\"at_ns\":"), "envelope first: {line}");
            assert!(line.contains("\"seq\":"), "seq present: {line}");
            assert!(line.contains("\"event\":\""), "kind present: {line}");
            assert!(line.ends_with('}'), "closed object: {line}");
            // Balanced, non-nested braces and an even number of unescaped
            // quotes mean the object is structurally sound.
            let bare = line.replace("\\\"", "").replace("\\\\", "");
            assert_eq!(bare.matches('{').count(), 1, "flat object: {line}");
            assert_eq!(bare.matches('}').count(), 1, "flat object: {line}");
            assert_eq!(bare.matches('"').count() % 2, 0, "quotes paired: {line}");
            assert!(!bare.contains('\n'), "one line per event");
        }
    }
}
