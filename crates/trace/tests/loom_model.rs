//! Model-checked interleavings of the REAL `EventLog` under the loom shim.
//!
//! Compiled only under `RUSTFLAGS="--cfg cg_loom"` (CI's model-check job):
//! that cfg swaps `cg_trace::sync::{Mutex, MutexGuard}` — the lock inside
//! `EventLog` — to `loom::sync`, so `loom::model` exhaustively explores the
//! schedules of the seq-allocation critical section with the production
//! code, not a mirror of it.
#![cfg(cg_loom)]

use cg_sim::SimTime;
use cg_trace::{Event, EventLog};
use std::collections::BTreeSet;

fn ev(job: u64) -> Event {
    Event::JobQueued { job }
}

/// Two writers calling the real `EventLog::record` concurrently: under
/// every schedule the allocated seqs are gap-free and duplicate-free.
#[test]
fn concurrent_record_allocates_gap_free_seqs() {
    let iterations = loom::model(|| {
        let log = EventLog::new(64);
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let log = log.clone();
                loom::thread::spawn(move || {
                    for k in 0..2u64 {
                        log.record(SimTime::from_nanos(k), ev(w * 10 + k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let seqs: Vec<u64> = log.snapshot().iter().map(|t| t.seq).collect();
        let distinct: BTreeSet<u64> = seqs.iter().copied().collect();
        assert_eq!(distinct.len(), seqs.len(), "duplicate seq: {seqs:?}");
        assert_eq!(
            distinct,
            (0..4).collect::<BTreeSet<u64>>(),
            "seqs not gap-free: {seqs:?}"
        );
    });
    assert!(iterations > 1, "only {iterations} interleaving(s) explored");
}

/// `record_many` batches stay contiguous in seq space under every schedule
/// — the property crash recovery's snapshot-bounded tail replay relies on.
#[test]
fn record_many_batches_stay_contiguous() {
    loom::model(|| {
        let log = EventLog::new(64);
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let log = log.clone();
                loom::thread::spawn(move || {
                    log.record_many(SimTime::from_nanos(w), vec![ev(w * 10), ev(w * 10 + 1)]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Group seqs by writer (job ids encode the writer) and demand each
        // writer's pair is adjacent.
        let snap = log.snapshot();
        for w in 0..2u64 {
            let mut seqs: Vec<u64> = snap
                .iter()
                .filter(|t| matches!(t.event, Event::JobQueued { job } if job / 10 == w))
                .map(|t| t.seq)
                .collect();
            seqs.sort_unstable();
            assert_eq!(seqs.len(), 2, "writer {w} lost events");
            assert_eq!(
                seqs[1],
                seqs[0] + 1,
                "writer {w}'s record_many batch interleaved: {seqs:?}"
            );
        }
    });
}
