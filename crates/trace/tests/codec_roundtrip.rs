//! Exhaustive codec integrity: every `Event` variant, with randomized
//! field values, must survive encode → decode bit-identically, and every
//! malformed input must come back as a typed [`CodecError`] — never a
//! panic and never a silently wrong record. This is the value-level twin
//! of `cg-lint`'s L4 pass (which checks the same codec structurally).

use cg_sim::SimTime;
use cg_trace::{decode_event, encode_event, CodecError, Event, TimedEvent};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One instance of EVERY `Event` variant, fields filled from the generated
/// scalars. Adding an enum variant without extending this list trips
/// `the_catalog_covers_every_variant_once` below, so the exhaustive tests
/// cannot silently go stale.
#[allow(clippy::too_many_lines)] // one constructor per variant, by design
fn all_variants(a: u64, b: u64, small: u32, flag: bool, x: f64, s: &str, t: &str) -> Vec<Event> {
    vec![
        Event::JobSubmitted {
            job: a,
            user: s.to_string(),
            interactive: flag,
        },
        Event::JobAd {
            job: a,
            jdl: t.to_string(),
            runtime_ns: b,
        },
        Event::JobQueued { job: a },
        Event::QueueRetry { job: a },
        Event::LeaseGranted {
            job: a,
            target: s.to_string(),
            until_ns: b,
        },
        Event::JobDispatched {
            job: a,
            target: t.to_string(),
            backend: s.to_string(),
        },
        Event::JobStarted { job: a },
        Event::JobResubmitted {
            job: a,
            attempt: small,
        },
        Event::JobBackoff {
            job: a,
            attempt: small,
            delay_ns: b,
        },
        Event::JobFinished { job: a },
        Event::JobFailed {
            job: a,
            reason: s.to_string(),
        },
        Event::JobCancelled { job: a },
        Event::JdlDiagnostic {
            job: a,
            severity: s.to_string(),
            code: t.to_string(),
            message: s.to_string(),
        },
        Event::JdlRejected {
            job: a,
            errors: small,
        },
        Event::RankNanDiscarded {
            job: a,
            site: s.to_string(),
        },
        Event::PolicyDecision {
            job: a,
            policy: s.to_string(),
            site: t.to_string(),
            score: x,
        },
        Event::FairShareTick { usages: small },
        Event::PriorityChanged {
            usage: a,
            kind: s.to_string(),
        },
        Event::AgentDeployed {
            agent: a,
            site: s.to_string(),
        },
        Event::AgentReady { agent: a },
        Event::AgentDied {
            agent: a,
            reason: t.to_string(),
            voluntary: flag,
        },
        Event::AgentBatchFinished { agent: a },
        Event::BatchYielded {
            agent: a,
            job: b,
            performance_loss: small,
        },
        Event::BatchRestored { agent: a, job: b },
        Event::SlotStarted {
            machine: s.to_string(),
            interactive: flag,
        },
        Event::SlotPreempted {
            machine: s.to_string(),
            batch_rate_pct: small,
        },
        Event::SlotRestored {
            machine: t.to_string(),
        },
        Event::SlotFinished {
            machine: s.to_string(),
            interactive: flag,
        },
        Event::ConsoleConnected { job: a },
        Event::ConsoleRetry {
            job: a,
            attempt: small,
        },
        Event::ConsoleReady { job: a },
        Event::SpoolAppend {
            stream: s.to_string(),
            seq: b,
        },
        Event::SpoolAck {
            stream: t.to_string(),
            seq: b,
        },
        Event::SpoolReplay {
            stream: s.to_string(),
            after: b,
            records: small,
        },
        Event::BufferFlush {
            stream: s.to_string(),
            reason: t.to_string(),
            bytes: b,
        },
        Event::ShadowConnected { rank: small },
        Event::ShadowDisconnected { rank: small },
        Event::LrmsQueued {
            site: s.to_string(),
            job: a,
        },
        Event::LrmsStarted {
            site: s.to_string(),
            job: a,
            nodes: small,
        },
        Event::LrmsFinished {
            site: t.to_string(),
            job: a,
        },
        Event::LrmsKilled {
            site: s.to_string(),
            job: a,
            reason: t.to_string(),
        },
        Event::DispositionEvicted {
            site: s.to_string(),
            job: a,
        },
        Event::BrokerRecovered {
            jobs: a,
            requeued: b,
            resubmitted: a,
            agents_lost: b,
        },
        Event::SiteSuspect {
            site: s.to_string(),
            missed_refreshes: small,
            failed_queries: small,
        },
        Event::SiteDead {
            site: t.to_string(),
            in_flight: small,
        },
        Event::SiteRejoin {
            site: s.to_string(),
            down_ns: b,
        },
        Event::LiveQueryTimeout {
            job: a,
            site: t.to_string(),
            attempt: small,
        },
        Event::QueryRetry {
            job: a,
            site: s.to_string(),
            attempt: small,
            delay_ns: b,
        },
        Event::DegradedMatch {
            job: a,
            staleness_ns: b,
        },
        Event::GiisDelta {
            leaf: small,
            epoch: b,
            changed: small,
        },
        Event::RefreshSweep {
            refreshed: small,
            missed: small,
            amnestied: small,
            late_merges: small,
        },
        Event::Measurement {
            name: s.to_string(),
            value: x,
        },
    ]
}

/// Strings exercising the length-prefixed codec path: empty, ASCII,
/// multi-byte UTF-8, embedded quotes/newlines/NULs, and a long tail.
fn tricky_strings() -> Vec<String> {
    vec![
        String::new(),
        "alice".to_string(),
        "site:cesga".to_string(),
        "å∆ \"quoted\"\npath\\seg".to_string(),
        "\u{0}\u{1f}".to_string(),
        "x".repeat(300),
    ]
}

#[test]
fn the_catalog_covers_every_variant_once() {
    let events = all_variants(1, 2, 3, true, 0.5, "s", "t");
    let kinds: BTreeSet<&'static str> = events.iter().map(Event::kind).collect();
    assert_eq!(
        kinds.len(),
        events.len(),
        "a variant appears twice in all_variants"
    );
    // The enum has exactly this many variants today; `Event::kind`'s
    // exhaustive match keeps the enum and this count honest together.
    assert_eq!(events.len(), 52);
}

#[test]
fn corrupted_utf8_is_a_typed_error() {
    let te = TimedEvent {
        at: SimTime::from_nanos(5),
        seq: 9,
        event: Event::JobFailed {
            job: 8,
            reason: "abc".to_string(),
        },
    };
    let mut buf = Vec::new();
    encode_event(&te, &mut buf);
    // Layout: at(8) seq(8) tag(1) job(8) len(4) then the string bytes.
    buf[29] = 0xff;
    assert_eq!(decode_event(&buf), Err(CodecError::BadUtf8));
}

proptest! {
    /// Every variant, arbitrary field values: encode → decode is identity.
    #[test]
    fn every_variant_roundtrips_bit_identically(
        a in any::<u64>(),
        b in any::<u64>(),
        small in any::<u32>(),
        flag in any::<bool>(),
        x in -1.0e12..1.0e12f64,
        s in prop::sample::select(tricky_strings()),
        t in prop::sample::select(tricky_strings()),
        at in any::<u64>(),
        seq in any::<u64>(),
    ) {
        for event in all_variants(a, b, small, flag, x, &s, &t) {
            let te = TimedEvent {
                at: SimTime::from_nanos(at),
                seq,
                event,
            };
            let mut buf = Vec::new();
            encode_event(&te, &mut buf);
            let back = decode_event(&buf);
            prop_assert_eq!(back.as_ref(), Ok(&te), "{} did not roundtrip", te.event.kind());
        }
    }

    /// Every strict prefix of every variant's encoding fails with
    /// `UnexpectedEof` — the codec never reads past the buffer and never
    /// fabricates a record from partial bytes.
    #[test]
    fn every_truncation_of_every_variant_is_unexpected_eof(
        a in any::<u64>(),
        b in any::<u64>(),
        small in any::<u32>(),
        s in prop::sample::select(tricky_strings()),
    ) {
        for event in all_variants(a, b, small, true, 1.5, &s, "t") {
            let te = TimedEvent { at: SimTime::from_nanos(1), seq: 2, event };
            let mut buf = Vec::new();
            encode_event(&te, &mut buf);
            for cut in 0..buf.len() {
                prop_assert_eq!(
                    decode_event(&buf[..cut]),
                    Err(CodecError::UnexpectedEof),
                    "{} truncated to {} bytes",
                    te.event.kind(),
                    cut
                );
            }
        }
    }

    /// An unknown tag byte is `BadTag(tag)`, whatever the surrounding bytes.
    #[test]
    fn unknown_tags_are_badtag(at in any::<u64>(), seq in any::<u64>(), raw in any::<u8>()) {
        // Real tags are dense through 51 (see `encode_event`); anything
        // above must be rejected by value.
        let tag = 52 + (raw % (u8::MAX - 51));
        let mut buf = Vec::new();
        buf.extend_from_slice(&at.to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.push(tag);
        prop_assert_eq!(decode_event(&buf), Err(CodecError::BadTag(tag)));
    }

    /// Bytes past a complete record are `TrailingBytes` for every variant.
    #[test]
    fn trailing_bytes_are_rejected_for_every_variant(
        a in any::<u64>(),
        extra in any::<u8>(),
        s in prop::sample::select(tricky_strings()),
    ) {
        for event in all_variants(a, 7, 3, false, 2.5, &s, "t") {
            let te = TimedEvent { at: SimTime::from_nanos(1), seq: 2, event };
            let mut buf = Vec::new();
            encode_event(&te, &mut buf);
            buf.push(extra);
            prop_assert_eq!(
                decode_event(&buf),
                Err(CodecError::TrailingBytes),
                "{} with a trailing byte",
                te.event.kind()
            );
        }
    }
}
