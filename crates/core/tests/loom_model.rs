//! Model-checked interleavings of the REAL `ShardedJobTable` under the
//! loom shim.
//!
//! Compiled only under `RUSTFLAGS="--cfg cg_loom"` (CI's model-check job):
//! that cfg swaps `crossbroker::sync::{Mutex, MutexGuard}` — the per-shard
//! locks — to `loom::sync`, so `loom::model` exhaustively explores
//! insert-vs-`for_each` schedules against the production table.
#![cfg(cg_loom)]

use crossbroker::{JobId, ShardedJobTable};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};

/// Concurrent inserts to different shards vs a `for_each` traversal: each
/// shard read is atomic, and the set of observable traversals is exactly
/// the documented one — including the torn-across-shards state, because
/// `for_each` locks one shard at a time and is not a snapshot.
#[test]
fn insert_vs_for_each_observes_exactly_the_documented_states() {
    let observed: StdMutex<BTreeSet<Vec<u64>>> = StdMutex::new(BTreeSet::new());
    loom::model(|| {
        let table: Arc<ShardedJobTable<u64>> = Arc::new(ShardedJobTable::new(2));
        let writer = {
            let table = Arc::clone(&table);
            loom::thread::spawn(move || {
                // Ids 0 and 1 land on the two different shards.
                table.insert(JobId(0), 10);
                table.insert(JobId(1), 11);
            })
        };
        let reader = {
            let table = Arc::clone(&table);
            loom::thread::spawn(move || {
                let mut seen = Vec::new();
                table.for_each(|_, v| seen.push(*v));
                seen.sort_unstable();
                seen
            })
        };
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        observed.lock().unwrap().insert(seen);
    });
    let observed = observed.into_inner().unwrap();
    let expected: BTreeSet<Vec<u64>> = [vec![], vec![10], vec![11], vec![10, 11]]
        .into_iter()
        .collect();
    assert_eq!(
        observed, expected,
        "for_each must be per-shard atomic but must also exhibit the documented non-snapshot states"
    );
}

/// Two writers hammering the same shard: the per-shard lock serializes
/// them, so the final table contains exactly both entries under every
/// schedule.
#[test]
fn same_shard_inserts_never_lose_entries() {
    let iterations = loom::model(|| {
        let table: Arc<ShardedJobTable<u64>> = Arc::new(ShardedJobTable::new(2));
        let handles: Vec<_> = (0..2u64)
            .map(|w| {
                let table = Arc::clone(&table);
                // Ids 2w keep both writers on the same (even) shard.
                loom::thread::spawn(move || table.insert(JobId(2 * w), w))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(table.len(), 2, "lost insert");
        assert_eq!(table.get(JobId(0)), Some(0));
        assert_eq!(table.get(JobId(2)), Some(1));
    });
    assert!(iterations > 1, "only {iterations} interleaving(s) explored");
}
