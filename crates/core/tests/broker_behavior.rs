//! End-to-end behavioural tests of CrossBroker on simulated grids.

use cg_jdl::JobDescription;
use cg_net::{Link, LinkProfile};
use cg_sim::{Sim, SimDuration, SimTime};
use cg_site::{LocalJobSpec, Policy, Site, SiteConfig};
use crossbroker::{BrokerConfig, CrossBroker, JobState, SiteHandle};

/// Builds a broker over `n_sites` campus sites with `nodes` WNs each.
fn grid(sim: &mut Sim, n_sites: usize, nodes: usize) -> (CrossBroker, Vec<Site>) {
    let mut handles = Vec::new();
    let mut sites = Vec::new();
    for i in 0..n_sites {
        let site = Site::new(SiteConfig {
            name: format!("site{i}"),
            nodes,
            policy: Policy::Fifo,
            tags: vec!["CROSSGRID".into()],
            ..SiteConfig::default()
        });
        sites.push(site.clone());
        handles.push(SiteHandle {
            site,
            broker_link: Link::new(LinkProfile::campus()),
            ui_link: Link::new(LinkProfile::campus()),
        });
    }
    let mds = Link::new(LinkProfile::wan_mds());
    let broker = CrossBroker::new(sim, handles, mds, BrokerConfig::default());
    (broker, sites)
}

fn job(src: &str) -> JobDescription {
    JobDescription::parse(src).unwrap()
}

const EXCLUSIVE: &str = r#"
    Executable = "iapp"; JobType = "interactive";
    MachineAccess = "exclusive"; User = "alice";
"#;
const SHARED: &str = r#"
    Executable = "iapp"; JobType = "interactive";
    MachineAccess = "shared"; PerformanceLoss = 10; User = "alice";
"#;
const BATCH: &str = r#"
    Executable = "bapp"; JobType = "batch"; User = "bob";
"#;

#[test]
fn exclusive_interactive_starts_with_full_pipeline() {
    let mut sim = Sim::new(1);
    let (broker, _) = grid(&mut sim, 5, 4);
    let id = broker.submit(&mut sim, job(EXCLUSIVE), SimDuration::from_secs(120));
    sim.run_until(SimTime::from_secs(600));
    let r = broker.record(id);
    assert!(matches!(r.state, JobState::Done), "{:?}", r.state);
    // All pipeline phases measured.
    let disc = r.discovery_s().expect("discovery ran");
    let sel = r.selection_s().expect("selection ran");
    let sub = r.submission_s().expect("submission ran");
    assert!((0.1..1.5).contains(&disc), "discovery {disc}s (paper ≈0.5)");
    assert!((0.3..3.0).contains(&sel), "selection {sel}s for 5 sites");
    assert!(
        (5.0..30.0).contains(&sub),
        "Globus-path submission {sub}s (paper ≈17)"
    );
}

#[test]
fn shared_submission_with_agent_is_much_faster() {
    let mut sim = Sim::new(2);
    let (broker, _) = grid(&mut sim, 3, 4);
    // Warm the pool: first shared job deploys an agent (slow path)…
    let warm = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(30));
    sim.run_until(SimTime::from_secs(300));
    assert!(matches!(broker.record(warm).state, JobState::Done));
    assert_eq!(broker.agent_count(), 1, "agent stays in the pool");

    // …the second lands on the live agent directly.
    let fast = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(30));
    sim.run_until(SimTime::from_secs(600));
    let r = broker.record(fast);
    assert!(matches!(r.state, JobState::Done), "{:?}", r.state);
    let response = r.response_s().unwrap();
    assert!(
        response < 10.0,
        "shared-VM response {response}s must beat the Globus path (paper 6.79)"
    );
    // And the first job's path (deploy agent + run) was slower.
    let warm_response = broker.record(warm).response_s().unwrap();
    assert!(warm_response > response, "{warm_response} vs {response}");
}

#[test]
fn shared_without_resources_fails_not_queues() {
    let mut sim = Sim::new(3);
    let (broker, sites) = grid(&mut sim, 1, 2);
    // Fill both nodes with local batch work.
    for _ in 0..2 {
        sites[0].lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(100_000)),
            |_, _, _| {},
        );
    }
    sim.run_until(SimTime::from_secs(30));
    let id = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(30));
    sim.run_until(SimTime::from_secs(120));
    let r = broker.record(id);
    assert!(
        matches!(r.state, JobState::Failed { .. }),
        "interactive submission must fail when no machines exist: {:?}",
        r.state
    );
    assert!(r.started_at.is_none());
}

#[test]
fn batch_runs_via_agent_and_agent_departs() {
    let mut sim = Sim::new(4);
    let (broker, sites) = grid(&mut sim, 1, 2);
    let id = broker.submit(&mut sim, job(BATCH), SimDuration::from_secs(300));
    sim.run_until(SimTime::from_secs(2_000));
    let r = broker.record(id);
    assert!(matches!(r.state, JobState::Done), "{:?}", r.state);
    assert!(
        r.response_s().unwrap() > 15.0,
        "job+agent path is the slowest"
    );
    // Agent left after the batch job completed: node is free again.
    assert_eq!(broker.agent_count(), 0, "agent departed");
    assert_eq!(sites[0].lrms().free_nodes(), 2, "node returned to the site");
}

#[test]
fn online_scheduling_resubmits_when_a_site_queues_the_job() {
    let mut sim = Sim::new(5);
    let (broker, sites) = grid(&mut sim, 2, 1);
    // The stale-info race the paper's on-line scheduling exists for: a local
    // user grabs the selected site's only node while the broker's submission
    // is still traversing the Globus layers, so the job queues on arrival.
    let id = broker.submit(&mut sim, job(EXCLUSIVE), SimDuration::from_secs(60));
    let broker2 = broker.clone();
    let sites2 = sites.clone();
    sim.schedule_at(SimTime::from_secs(3), move |sim| {
        // Selection has finished by now; steal exactly the chosen site.
        let chosen = match broker2.record(id).state {
            JobState::Scheduled { site } => site,
            other => panic!("expected Scheduled by t=3, got {other:?}"),
        };
        let victim = sites2.iter().find(|s| s.name() == chosen).expect("site");
        victim.lrms().submit(
            sim,
            LocalJobSpec::simple(SimDuration::from_secs(300)),
            |_, _, _| {},
        );
    });
    sim.run_until(SimTime::from_secs(1_000));
    let r = broker.record(id);
    // Whatever site it picked first, its node was stolen → Queued → the
    // broker withdraws and resubmits.
    assert!(r.resubmissions >= 1, "expected a resubmission, got {:?}", r);
    assert!(
        matches!(r.state, JobState::Done),
        "job eventually ran elsewhere: {:?}",
        r.state
    );
}

#[test]
fn interactive_never_preempts_interactive() {
    let mut sim = Sim::new(6);
    let (broker, _) = grid(&mut sim, 1, 1);
    // First shared job deploys the agent and occupies the interactive slot
    // for a long time.
    let first = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(5_000));
    sim.run_until(SimTime::from_secs(300));
    assert!(matches!(
        broker.record(first).state,
        JobState::Running { .. }
    ));
    assert_eq!(broker.free_interactive_slots(), 0);

    // Second interactive job: no free slot, no idle machine → fails; the
    // first job is untouched.
    let second = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(10));
    sim.run_until(SimTime::from_secs(600));
    assert!(
        matches!(broker.record(second).state, JobState::Failed { .. }),
        "{:?}",
        broker.record(second).state
    );
    assert!(
        matches!(broker.record(first).state, JobState::Running { .. }),
        "first interactive job must keep running"
    );
}

#[test]
fn fairshare_rejects_the_hog_under_scarcity() {
    let mut sim = Sim::new(7);
    let (broker, _) = grid(&mut sim, 1, 2);
    // The hog saturates the grid with interactive work and builds up a bad
    // priority.
    let hog_job = r#"
        Executable = "iapp"; JobType = "interactive";
        MachineAccess = "shared"; PerformanceLoss = 0; User = "hog";
    "#;
    let a = broker.submit(&mut sim, job(hog_job), SimDuration::from_secs(50_000));
    sim.run_until(SimTime::from_secs(400));
    let b = broker.submit(&mut sim, job(hog_job), SimDuration::from_secs(50_000));
    sim.run_until(SimTime::from_secs(2_000));
    // Both machines now busy (one interactive via agent, second agent or
    // denial depending on slots); let priority accumulate.
    sim.run_until(SimTime::from_secs(4_000));
    assert!(broker.priority("hog") > 0.0, "hog accumulated bad priority");

    let c = broker.submit(&mut sim, job(hog_job), SimDuration::from_secs(100));
    sim.run_until(SimTime::from_secs(5_000));
    let r = broker.record(c);
    match &r.state {
        JobState::Failed { reason } => {
            assert!(
                reason.contains("rejected") || reason.contains("no machines"),
                "hog's job denied: {reason}"
            );
        }
        other => panic!("expected failure under scarcity, got {other:?}"),
    }
    let _ = (a, b);
}

#[test]
fn mpich_g2_coallocates_across_sites() {
    let mut sim = Sim::new(8);
    let (broker, sites) = grid(&mut sim, 3, 2);
    // 5 nodes needed, 2 per site → must span at least 3 sites.
    let mpi = r#"
        Executable = "interactive_mpich-g2_app";
        JobType = {"interactive", "mpich-g2"};
        NodeNumber = 5; User = "carol";
    "#;
    let id = broker.submit(&mut sim, job(mpi), SimDuration::from_secs(200));
    sim.run_until(SimTime::from_secs(1_500));
    let r = broker.record(id);
    assert!(matches!(r.state, JobState::Done), "{:?}", r.state);
    // During the run all five nodes were taken; after, all free.
    let total_free: usize = sites.iter().map(|s| s.lrms().free_nodes()).sum();
    assert_eq!(total_free, 6);
}

#[test]
fn mpich_g2_fails_when_grid_too_small() {
    let mut sim = Sim::new(9);
    let (broker, _) = grid(&mut sim, 2, 2);
    let mpi = r#"
        Executable = "a"; JobType = {"interactive", "mpich-g2"};
        NodeNumber = 50; User = "carol";
    "#;
    let id = broker.submit(&mut sim, job(mpi), SimDuration::from_secs(10));
    sim.run_until(SimTime::from_secs(600));
    assert!(matches!(broker.record(id).state, JobState::Failed { .. }));
}

#[test]
fn batch_queues_in_broker_until_a_machine_frees() {
    let mut sim = Sim::new(10);
    let (broker, sites) = grid(&mut sim, 1, 1);
    // Saturate the site beyond its queue-admission bound (4 × nodes).
    for _ in 0..6 {
        sites[0].lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(400)),
            |_, _, _| {},
        );
    }
    sim.run_until(SimTime::from_secs(30));
    assert!(!sites[0].lrms().accepts_queued_jobs());

    let id = broker.submit(&mut sim, job(BATCH), SimDuration::from_secs(50));
    sim.run_until(SimTime::from_secs(120));
    assert!(
        matches!(broker.record(id).state, JobState::BrokerQueued),
        "{:?}",
        broker.record(id).state
    );
    // As local jobs drain, the broker retries and the job eventually runs.
    sim.run_until(SimTime::from_secs(5_000));
    let r = broker.record(id);
    assert!(matches!(r.state, JobState::Done), "{:?}", r.state);
}

#[test]
fn leases_prevent_double_matching_then_expire() {
    let mut sim = Sim::new(11);
    let (broker, _) = grid(&mut sim, 2, 1);
    // Two exclusive jobs submitted back to back: the lease must steer them
    // to different sites even though the stale index shows both free.
    let a = broker.submit(&mut sim, job(EXCLUSIVE), SimDuration::from_secs(60));
    let b = broker.submit(&mut sim, job(EXCLUSIVE), SimDuration::from_secs(60));
    sim.run_until(SimTime::from_secs(1_000));
    let ra = broker.record(a);
    let rb = broker.record(b);
    assert!(matches!(ra.state, JobState::Done), "{:?}", ra.state);
    assert!(matches!(rb.state, JobState::Done), "{:?}", rb.state);
    // Both ran without resubmissions — no collision on one site.
    assert_eq!(ra.resubmissions + rb.resubmissions, 0);
}

#[test]
fn stats_account_for_everything() {
    let mut sim = Sim::new(12);
    let (broker, _) = grid(&mut sim, 2, 2);
    broker.submit(&mut sim, job(EXCLUSIVE), SimDuration::from_secs(30));
    broker.submit(&mut sim, job(BATCH), SimDuration::from_secs(30));
    sim.run_until(SimTime::from_secs(2_000));
    let s = broker.stats();
    assert_eq!(s.submitted, 2);
    assert_eq!(s.started, 2);
    assert_eq!(s.finished, 2);
    assert_eq!(s.failed + s.rejected, 0);
    assert!(s.agents_deployed >= 1, "batch deployed an agent");
}

#[test]
fn shared_parallel_combines_agents_and_idle_machines() {
    let mut sim = Sim::new(13);
    let (broker, sites) = grid(&mut sim, 2, 2);
    // Warm one agent (covers 1 subjob); the other 2 subjobs need idle nodes.
    broker.predeploy_agent(&mut sim, 0, |_, ok| assert!(ok));
    sim.run_until(SimTime::from_secs(300));
    assert_eq!(broker.free_interactive_slots(), 1);

    let mpi = r#"
        Executable = "steered_sim"; JobType = {"interactive", "mpich-g2"};
        NodeNumber = 3; MachineAccess = "shared"; PerformanceLoss = 10;
        User = "dora";
    "#;
    let id = broker.submit(&mut sim, job(mpi), SimDuration::from_secs(120));
    sim.run_until(SimTime::from_secs(2_000));
    let r = broker.record(id);
    assert!(matches!(r.state, JobState::Done), "{:?}", r.state);
    // Combined local step: no MDS discovery/selection cost.
    assert_eq!(r.discovery_s(), Some(0.0));
    assert_eq!(r.selection_s(), Some(0.0));
    // The job spanned the agent slot AND gatekeeper-submitted nodes.
    match broker.record(id).state {
        JobState::Done => {}
        other => panic!("{other:?}"),
    }
    // All nodes returned (agent still resident, so one node held by it).
    let free: usize = sites.iter().map(|s| s.lrms().free_nodes()).sum();
    assert_eq!(free, 3, "agent holds one node, the rest are free");
}

#[test]
fn shared_parallel_fails_when_capacity_short() {
    let mut sim = Sim::new(14);
    let (broker, _) = grid(&mut sim, 1, 2);
    let mpi = r#"
        Executable = "a"; JobType = {"interactive", "mpich-g2"};
        NodeNumber = 5; MachineAccess = "shared"; User = "dora";
    "#;
    let id = broker.submit(&mut sim, job(mpi), SimDuration::from_secs(10));
    sim.run_until(SimTime::from_secs(600));
    match broker.record(id).state {
        JobState::Failed { reason } => {
            assert!(reason.contains("machines"), "{reason}");
        }
        other => panic!("expected clean failure, got {other:?}"),
    }
}

#[test]
fn shared_parallel_all_on_agents() {
    let mut sim = Sim::new(15);
    let (broker, _) = grid(&mut sim, 2, 2);
    broker.predeploy_agent(&mut sim, 0, |_, ok| assert!(ok));
    broker.predeploy_agent(&mut sim, 1, |_, ok| assert!(ok));
    sim.run_until(SimTime::from_secs(300));
    assert_eq!(broker.free_interactive_slots(), 2);

    let mpi = r#"
        Executable = "a"; JobType = {"interactive", "mpich-p4"};
        NodeNumber = 2; MachineAccess = "shared"; PerformanceLoss = 25;
        User = "dora";
    "#;
    let t0 = sim.now();
    let id = broker.submit(&mut sim, job(mpi), SimDuration::from_secs(60));
    sim.run_until(SimTime::from_secs(2_000));
    let r = broker.record(id);
    assert!(matches!(r.state, JobState::Done), "{:?}", r.state);
    // Pure agent path: fast startup, no Globus layers.
    let response = r.started_at.unwrap().saturating_since(t0).as_secs_f64();
    assert!(response < 12.0, "all-agent MPI startup took {response}s");
}

#[test]
fn cancel_running_exclusive_job_frees_the_node() {
    let mut sim = Sim::new(16);
    let (broker, sites) = grid(&mut sim, 1, 2);
    let id = broker.submit(&mut sim, job(EXCLUSIVE), SimDuration::from_secs(10_000));
    sim.run_until(SimTime::from_secs(60));
    assert!(matches!(broker.record(id).state, JobState::Running { .. }));
    assert_eq!(sites[0].lrms().free_nodes(), 1);

    assert!(broker.cancel(&mut sim, id));
    sim.run_until(SimTime::from_secs(120));
    match broker.record(id).state {
        JobState::Failed { reason } => assert_eq!(reason, "cancelled by user"),
        other => panic!("{other:?}"),
    }
    assert_eq!(sites[0].lrms().free_nodes(), 2, "node returned");
    assert_eq!(broker.stats().cancelled, 1);
    // Idempotence: cancelling again (or after terminal) is refused.
    assert!(!broker.cancel(&mut sim, id));
}

#[test]
fn cancel_shared_job_restores_batch_priority() {
    let mut sim = Sim::new(17);
    let (broker, _) = grid(&mut sim, 1, 2);
    // Batch job brings up an agent and occupies its batch-vm.
    let batch = broker.submit(&mut sim, job(BATCH), SimDuration::from_secs(3_000));
    sim.run_until(SimTime::from_secs(120));
    assert!(matches!(
        broker.record(batch).state,
        JobState::Running { .. }
    ));

    // Interactive job lands on the same agent, throttling the batch job.
    let iv = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(10_000));
    sim.run_until(SimTime::from_secs(200));
    assert!(matches!(broker.record(iv).state, JobState::Running { .. }));

    // The user watches the output and kills the run (§1 on-line control).
    assert!(broker.cancel(&mut sim, iv));
    sim.run_until(SimTime::from_secs(5_000));
    // The batch job, sped back up, finishes normally.
    assert!(
        matches!(broker.record(batch).state, JobState::Done),
        "{:?}",
        broker.record(batch).state
    );
    // With the agent's slots both free, the agent departed.
    assert_eq!(broker.agent_count(), 0);
}

#[test]
fn cancel_broker_queued_batch_job() {
    let mut sim = Sim::new(18);
    let (broker, sites) = grid(&mut sim, 1, 1);
    for _ in 0..6 {
        sites[0].lrms().submit(
            &mut sim,
            LocalJobSpec::simple(SimDuration::from_secs(5_000)),
            |_, _, _| {},
        );
    }
    sim.run_until(SimTime::from_secs(30));
    let id = broker.submit(&mut sim, job(BATCH), SimDuration::from_secs(60));
    sim.run_until(SimTime::from_secs(90));
    assert!(matches!(broker.record(id).state, JobState::BrokerQueued));

    assert!(broker.cancel(&mut sim, id));
    sim.run_until(SimTime::from_secs(10_000));
    match broker.record(id).state {
        JobState::Failed { reason } => assert_eq!(reason, "cancelled by user"),
        other => panic!("cancelled queued job must not run later: {other:?}"),
    }
}

#[test]
fn cancel_unknown_job_is_refused() {
    let mut sim = Sim::new(19);
    let (broker, _) = grid(&mut sim, 1, 1);
    assert!(!broker.cancel(&mut sim, crossbroker::JobId(999)));
}

#[test]
fn reliable_console_survives_transient_ui_outage_fast_does_not() {
    // The UI link drops just as the console would come up (t ≈ dispatch +
    // pipeline); reliable mode retries until it heals, fast mode fails.
    let run = |mode: &str| {
        let mut sim = Sim::new(20);
        let site = Site::new(SiteConfig {
            name: "s".into(),
            nodes: 2,
            policy: Policy::Fifo,
            ..SiteConfig::default()
        });
        // Outage on the UI path from t=10 to t=60 — the exclusive pipeline
        // reaches console startup around t=17.
        let faults = cg_net::FaultSchedule::from_windows(vec![(
            SimTime::from_secs(10),
            SimTime::from_secs(60),
        )]);
        let handles = vec![SiteHandle {
            site: site.clone(),
            broker_link: Link::new(LinkProfile::campus()),
            ui_link: cg_net::Link::with_faults(LinkProfile::campus(), faults),
        }];
        let broker = CrossBroker::new(
            &mut sim,
            handles,
            Link::new(LinkProfile::wan_mds()),
            BrokerConfig::default(),
        );
        let src = format!(
            r#"Executable = "i"; JobType = "interactive"; MachineAccess = "exclusive";
               StreamingMode = "{mode}"; User = "u";"#
        );
        let id = broker.submit(&mut sim, job(&src), SimDuration::from_secs(120));
        sim.run_until(SimTime::from_secs(2_000));
        broker.record(id)
    };
    let reliable = run("reliable");
    assert!(
        matches!(reliable.state, JobState::Done),
        "reliable mode must retry through the outage: {:?}",
        reliable.state
    );
    assert!(
        reliable.started_at.unwrap() >= SimTime::from_secs(60),
        "first output only after the outage healed"
    );
    let fast = run("fast");
    assert!(
        matches!(fast.state, JobState::Failed { .. }),
        "fast mode loses the startup to the outage: {:?}",
        fast.state
    );
}

#[test]
fn declared_runtime_becomes_walltime() {
    let mut sim = Sim::new(21);
    let (broker, _) = grid(&mut sim, 1, 2);
    // The job declares a 10 s estimate but actually runs 10 000 s: the LRMS
    // kills it at the 4× walltime.
    let src = r#"Executable = "i"; JobType = "interactive"; MachineAccess = "exclusive";
                 EstimatedRuntime = 10; User = "u";"#;
    let id = broker.submit(&mut sim, job(src), SimDuration::from_secs(10_000));
    sim.run_until(SimTime::from_secs(5_000));
    match broker.record(id).state {
        JobState::Failed { reason } => {
            assert!(reason.contains("walltime"), "{reason}");
        }
        other => panic!("overrunning job must be killed by walltime: {other:?}"),
    }
}

#[test]
fn cancel_coallocated_mpi_job_frees_all_sites() {
    let mut sim = Sim::new(22);
    let (broker, sites) = grid(&mut sim, 3, 2);
    let mpi = r#"
        Executable = "a"; JobType = {"interactive", "mpich-g2"};
        NodeNumber = 5; User = "carol";
    "#;
    let id = broker.submit(&mut sim, job(mpi), SimDuration::from_secs(50_000));
    sim.run_until(SimTime::from_secs(120));
    assert!(matches!(broker.record(id).state, JobState::Running { .. }));
    let busy: usize = sites
        .iter()
        .map(|s| s.lrms().total_nodes() - s.lrms().free_nodes())
        .sum();
    assert_eq!(busy, 5);

    assert!(broker.cancel(&mut sim, id));
    sim.run_until(SimTime::from_secs(300));
    let free: usize = sites.iter().map(|s| s.lrms().free_nodes()).sum();
    assert_eq!(free, 6, "all five nodes freed across the three sites");
}

#[test]
fn leased_agent_becomes_available_after_lease_expiry() {
    let mut sim = Sim::new(23);
    let (broker, _) = grid(&mut sim, 1, 2);
    broker.predeploy_agent(&mut sim, 0, |_, ok| assert!(ok));
    sim.run_until(SimTime::from_secs(300));

    // A short shared job takes (and leases) the agent.
    let a = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(5));
    sim.run_until(SimTime::from_secs(340));
    assert!(matches!(broker.record(a).state, JobState::Done));
    // The lease (30 s from dispatch) has expired by now; a new shared job
    // reuses the same agent rather than deploying a second one.
    let deployed_before = broker.stats().agents_deployed;
    let b = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(5));
    sim.run_until(SimTime::from_secs(600));
    assert!(matches!(broker.record(b).state, JobState::Done));
    assert_eq!(
        broker.stats().agents_deployed,
        deployed_before,
        "agent reused"
    );
}

#[test]
fn back_to_back_shared_jobs_second_waits_for_no_one() {
    // Two shared jobs arrive together with one live agent: the first takes
    // the slot, the second must go deploy its own agent on the idle node
    // (it never queues behind the first).
    let mut sim = Sim::new(24);
    let (broker, _) = grid(&mut sim, 1, 2);
    broker.predeploy_agent(&mut sim, 0, |_, ok| assert!(ok));
    sim.run_until(SimTime::from_secs(300));

    let a = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(600));
    let b = broker.submit(&mut sim, job(SHARED), SimDuration::from_secs(600));
    sim.run_until(SimTime::from_secs(1_500));
    assert!(matches!(
        broker.record(a).state,
        JobState::Done | JobState::Running { .. }
    ));
    assert!(
        matches!(
            broker.record(b).state,
            JobState::Done | JobState::Running { .. }
        ),
        "{:?}",
        broker.record(b).state
    );
    // The second job's response includes an agent deployment — much slower —
    // but both got service.
    let ra = broker.record(a).response_s().unwrap();
    let rb = broker.record(b).response_s().unwrap();
    assert!(ra < 10.0, "first used the warm agent: {ra}");
    assert!(rb > ra, "second paid for its own agent: {rb}");
    assert_eq!(broker.stats().agents_deployed, 2);
}

#[test]
fn unsatisfiable_requirements_rejected_at_submit() {
    let mut sim = Sim::new(11);
    let (broker, _) = grid(&mut sim, 3, 4);
    let bad = job(r#"Executable = "bapp"; JobType = "batch"; User = "mallory";
           Requirements = other.FreeCpus > 4 && other.FreeCpus < 2;"#);
    let id = broker.submit(&mut sim, bad, SimDuration::from_secs(60));
    sim.run_until(SimTime::from_secs(600));

    // Terminal immediately, counted as a rejection, never started.
    let r = broker.record(id);
    match &r.state {
        JobState::Failed { reason } => {
            assert!(reason.contains("JDL"), "{reason}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert!(r.finished_at.is_some());
    assert_eq!(broker.stats().rejected, 1);
    assert_eq!(broker.stats().started, 0);

    // The trace shows the diagnostic and the terminal rejection, and the
    // rejected job never leased or dispatched anywhere.
    let events = broker.event_log().snapshot();
    let diag = events.iter().find_map(|e| match &e.event {
        cg_trace::Event::JdlDiagnostic {
            job,
            code,
            severity,
            ..
        } if *job == id.0 => Some((code.clone(), severity.clone())),
        _ => None,
    });
    assert_eq!(diag, Some(("E108".into(), "error".into())), "{events:?}");
    assert!(events.iter().any(|e| matches!(
        &e.event,
        cg_trace::Event::JdlRejected { job, errors } if *job == id.0 && *errors == 1
    )));
    assert!(!events.iter().any(|e| matches!(
        &e.event,
        cg_trace::Event::LeaseGranted { job, .. } | cg_trace::Event::JobDispatched { job, .. }
            if *job == id.0
    )));
    assert!(cg_trace::check_invariants(&events).is_empty());
    assert_eq!(broker.metrics().counter("events.JdlRejected"), 1);
    assert_eq!(broker.metrics().counter("events.JdlDiagnostic"), 1);
}

#[test]
fn analyzer_clean_jobs_proceed_and_warnings_do_not_reject() {
    let mut sim = Sim::new(12);
    let (broker, _) = grid(&mut sim, 3, 4);
    // W203 (always-true Requirements) is a warning: traced, not fatal.
    let warned = job(r#"Executable = "bapp"; JobType = "batch"; User = "carol";
           Requirements = true;"#);
    let id = broker.submit(&mut sim, warned, SimDuration::from_secs(30));
    sim.run_until(SimTime::from_secs(600));
    assert!(matches!(broker.record(id).state, JobState::Done));
    assert_eq!(broker.stats().rejected, 0);
    let events = broker.event_log().snapshot();
    assert!(events.iter().any(|e| matches!(
        &e.event,
        cg_trace::Event::JdlDiagnostic { job, severity, .. }
            if *job == id.0 && severity == "warning"
    )));
    assert!(cg_trace::check_invariants(&events).is_empty());
}

/// Runs one exclusive interactive job on a `n_sites` grid with the given
/// live-query fan-out, returning (record, dispatch target).
fn run_with_fanout(seed: u64, n_sites: usize, fanout: usize) -> (crossbroker::JobRecord, String) {
    let mut sim = Sim::new(seed);
    let mut handles = Vec::new();
    for i in 0..n_sites {
        let site = Site::new(SiteConfig {
            name: format!("site{i}"),
            nodes: 4,
            policy: Policy::Fifo,
            tags: vec!["CROSSGRID".into()],
            ..SiteConfig::default()
        });
        handles.push(SiteHandle {
            site,
            broker_link: Link::new(LinkProfile::campus()),
            ui_link: Link::new(LinkProfile::campus()),
        });
    }
    let mds = Link::new(LinkProfile::wan_mds());
    let config = BrokerConfig {
        live_query_fanout: fanout,
        ..BrokerConfig::default()
    };
    let broker = CrossBroker::new(&mut sim, handles, mds, config);
    let id = broker.submit(&mut sim, job(EXCLUSIVE), SimDuration::from_secs(120));
    sim.run_until(SimTime::from_secs(600));
    let events = broker.event_log().snapshot();
    let target = events
        .iter()
        .find_map(|e| match &e.event {
            cg_trace::Event::JobDispatched { job, target, .. } if *job == id.0 => {
                Some(target.clone())
            }
            _ => None,
        })
        .expect("job dispatched");
    assert!(cg_trace::check_invariants(&events).is_empty());
    (broker.record(id), target)
}

#[test]
fn live_query_fanout_shrinks_selection_without_changing_the_outcome() {
    let (seq, seq_target) = run_with_fanout(77, 12, 1);
    let (par, par_target) = run_with_fanout(77, 12, 8);
    assert!(matches!(seq.state, JobState::Done), "{:?}", seq.state);
    assert!(matches!(par.state, JobState::Done), "{:?}", par.state);
    // Same winner: the fan-out collects the same ads in the same order, so
    // selection is equivalent; only the sweep's wall-clock changes.
    assert_eq!(seq_target, par_target);
    let seq_sel = seq.selection_s().expect("selection ran");
    let par_sel = par.selection_s().expect("selection ran");
    assert!(
        par_sel < seq_sel / 2.0,
        "fan-out 8 over 12 sites should overlap the per-site RPCs: \
         sequential {seq_sel}s vs windowed {par_sel}s"
    );
}
