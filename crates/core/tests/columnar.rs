//! Columnar-matchmaking equivalence: the SoA `AdSnapshot` path must be
//! bit-identical to the map-based compiled path over arbitrary ads and
//! requirements, epoch deltas must re-match exactly the dirty sites with
//! outcomes identical to a full re-match, and the columnar `ParallelMatcher`
//! engine must reproduce the map engine's outcome vector at every thread
//! count.

use std::sync::Arc;

use cg_jdl::{Ad, JobDescription, Value};
use cg_site::AdSnapshot;
use cg_trace::EventLog;
use crossbroker::{
    filter_candidates_columnar, filter_candidates_compiled, CompiledJob, IncrementalMatch, JobId,
    MatchRequest, ParallelMatcher, ShardedJobTable, DEFAULT_SHARDS,
};
use proptest::prelude::*;

/// Arbitrary machine ads exercising every column edge the map path has:
/// missing or wrong-typed `FreeCpus` (⇒ 0), missing `AcceptsQueued`
/// (⇒ true), missing `Site` (⇒ `"<unnamed>"` fallback in the candidate),
/// plus the attributes the requirement/rank pools reference.
fn ad_strategy() -> impl Strategy<Value = Ad> {
    (
        (
            prop::option::of(prop_oneof![(0i64..40).prop_map(Some), Just(None)]),
            prop::option::of(any::<bool>()),
            prop::option::of(0usize..3),
        ),
        (
            prop::collection::vec(0usize..2, 0..3),
            any::<bool>(),
            prop::option::of(0u8..4),
        ),
    )
        .prop_map(|((free, accepts, name), (tags, i686, speed))| {
            let mut ad = Ad::new();
            match free {
                Some(Some(n)) => {
                    ad.set_int("FreeCpus", n);
                }
                Some(None) => {
                    ad.set_str("FreeCpus", "busted"); // wrong type ⇒ treated as 0
                }
                None => {}
            }
            if let Some(b) = accepts {
                ad.set_bool("AcceptsQueued", b);
            }
            if let Some(n) = name {
                ad.set_str("Site", format!("site{n}"));
            }
            let list = tags
                .into_iter()
                .map(|t| {
                    Value::Str(if t == 0 {
                        "CROSSGRID".into()
                    } else {
                        "MPI".into()
                    })
                })
                .collect();
            ad.set("Tags", Value::List(list));
            ad.set_str("Arch", if i686 { "i686" } else { "sparc" });
            if let Some(s) = speed {
                ad.set_double("SpeedFactor", f64::from(s) * 0.5 + 0.5);
            }
            ad
        })
}

/// Requirement/rank pools covering the compiled paths: plain comparisons,
/// `member()`, an always-erroring expression, `isUndefined`, and absent.
const REQUIREMENTS: [&str; 5] = [
    "",
    "Requirements = other.FreeCpus >= NodeNumber && member(\"CROSSGRID\", other.Tags);",
    "Requirements = other.Arch == \"i686\";",
    "Requirements = other.FreeCpus + \"oops\" == 3;",
    "Requirements = isUndefined(other.MemoryMb);",
];
const RANKS: [&str; 3] = [
    "",
    "Rank = other.FreeCpus * other.SpeedFactor;",
    "Rank = 0 - other.FreeCpus;",
];

fn make_job(req: usize, rank: usize, nodes: u32) -> JobDescription {
    let src = format!(
        r#"Executable = "a"; JobType = {{"interactive","mpich-p4"}}; NodeNumber = {nodes};
           {} {}"#,
        REQUIREMENTS[req], RANKS[rank],
    );
    JobDescription::parse(&src).unwrap()
}

proptest! {
    /// Bit-identity: over arbitrary ads and every requirement/rank pool
    /// entry, the columnar filter produces exactly the map-based compiled
    /// filter's candidates — same order, same names (including the
    /// `"<unnamed>"` fallback), bit-identical ranks.
    #[test]
    fn columnar_filtering_is_bit_identical_to_the_map_path(
        ads in prop::collection::vec(ad_strategy(), 0..12),
        req in 0usize..REQUIREMENTS.len(),
        rank in 0usize..RANKS.len(),
        nodes in 1u32..5,
    ) {
        let job = make_job(req, rank, nodes);
        let compiled = CompiledJob::prepare(&job);
        let indexed: Vec<(usize, Ad)> = ads.iter().cloned().enumerate().collect();
        let snap = AdSnapshot::build(ads);
        for require_free in [true, false] {
            let map = filter_candidates_compiled(&job, &compiled, &indexed, require_free);
            let col = filter_candidates_columnar(&job, &compiled, &snap, require_free);
            prop_assert_eq!(map.len(), col.len(), "candidate count differs");
            for (a, b) in map.iter().zip(&col) {
                prop_assert_eq!(a.site_index, b.site_index);
                prop_assert_eq!(&a.site, &b.site);
                prop_assert_eq!(
                    a.rank.to_bits(), b.rank.to_bits(),
                    "rank bits differ at site {}", a.site_index
                );
                prop_assert_eq!(a.free_cpus, b.free_cpus);
            }
        }
    }

    /// Epoch deltas: a refresh that changes one site bumps exactly that
    /// site's epoch, the incremental matcher recomputes exactly the dirty
    /// sites, and its assembled candidate list is identical to a full
    /// columnar re-match after every step.
    #[test]
    fn epoch_deltas_rematch_only_dirty_sites(
        frees in prop::collection::vec(0i64..8, 1..10),
        muts in prop::collection::vec((any::<usize>(), 0i64..8), 0..12),
    ) {
        let job = make_job(0, 0, 2);
        let compiled = CompiledJob::prepare(&job);
        let build = |frees: &[i64]| -> Vec<Ad> {
            frees
                .iter()
                .enumerate()
                .map(|(i, &f)| {
                    let mut ad = Ad::new();
                    ad.set_str("Site", format!("s{i}"))
                        .set_int("FreeCpus", f)
                        .set_bool("AcceptsQueued", true);
                    ad
                })
                .collect()
        };
        let mut working = frees;
        let mut snap = AdSnapshot::build(build(&working));
        let mut inc = IncrementalMatch::new(true);
        let first = inc.rematch(&job, &compiled, &snap);
        prop_assert_eq!(first, filter_candidates_columnar(&job, &compiled, &snap, true));
        prop_assert_eq!(inc.last_rematched(), working.len(), "first call is a full pass");
        for (pick, new_free) in muts {
            let i = pick % working.len();
            let changed = working[i] != new_free;
            working[i] = new_free;
            let next = snap.advance(build(&working));
            prop_assert_eq!(next.epoch(), snap.epoch() + 1);
            let dirty: Vec<usize> = next.dirty_since(snap.epoch()).collect();
            if changed {
                prop_assert_eq!(dirty, vec![i], "exactly the mutated site is dirty");
            } else {
                prop_assert!(dirty.is_empty(), "a same-content refresh dirties nothing");
            }
            let got = inc.rematch(&job, &compiled, &next);
            let full = filter_candidates_columnar(&job, &compiled, &next, true);
            prop_assert_eq!(got, full, "incremental result diverged from full re-match");
            prop_assert_eq!(inc.last_rematched(), usize::from(changed));
            snap = next;
        }
    }
}

/// The columnar engine reproduces the map engine's outcome vector — same
/// seed, same ads, every thread count — which is what lets the broker swap
/// stores without perturbing a single selection.
#[test]
fn parallel_matcher_columnar_engine_is_bit_identical_to_map_engine() {
    let ads: Vec<Ad> = (0..200)
        .map(|i| {
            let mut ad = Ad::new();
            ad.set_str("Site", format!("s{i}"))
                .set_int("FreeCpus", (i % 5) as i64)
                .set_bool("AcceptsQueued", i % 3 != 0);
            if i % 2 == 0 {
                ad.set("Tags", Value::List(vec![Value::Str("CROSSGRID".into())]));
                ad.set_double("SpeedFactor", 1.0 + (i % 4) as f64 * 0.25);
            }
            ad
        })
        .collect();
    let requests: Vec<MatchRequest> = (0..300)
        .map(|i| {
            let nodes = 1 + i % 3;
            let src = if i % 2 == 0 {
                format!(
                    r#"Executable = "iapp"; JobType = {{"interactive","mpich-p4"}};
                       NodeNumber = {nodes};
                       Requirements = member("CROSSGRID", other.Tags);
                       Rank = other.FreeCpus * other.SpeedFactor;"#
                )
            } else {
                r#"Executable = "bapp"; JobType = "batch";"#.to_string()
            };
            MatchRequest {
                id: JobId(i as u64),
                job: JobDescription::parse(&src).unwrap(),
            }
        })
        .collect();

    let snap = Arc::new(AdSnapshot::build(ads));
    let map_engine = ParallelMatcher::from_indexed(snap.indexed_ads(), 0xC055);
    let col_engine = ParallelMatcher::from_snapshot(Arc::clone(&snap), 0xC055);
    let run = |engine: &ParallelMatcher, threads: usize| {
        let log = EventLog::new(requests.len() * 4);
        let table = ShardedJobTable::new(DEFAULT_SHARDS);
        engine.run(&requests, threads, &log, &table)
    };
    let base = run(&map_engine, 1);
    for threads in [1, 2, 4] {
        assert_eq!(
            run(&col_engine, threads),
            base,
            "columnar engine diverged from the map engine at {threads} threads"
        );
    }
}
