//! Regression tests for the degraded-matchmaking staleness bound.
//!
//! The old code bounded degraded mode on the index-global `refreshed_at()`
//! — the instant the last refresh *cycle* ran. But a site whose publish
//! path is down keeps its old column while the cycle stamp advances, so
//! per-site `published_at` can lag `refreshed_at` arbitrarily: degraded
//! mode would match onto ancient columns while believing them fresh.
//! The fix bounds each site on its own `published_at`, drops
//! over-the-bound sites from the shortlist, and fails the job only when
//! *no* column is trustworthy.

use std::cell::RefCell;
use std::rc::Rc;

use cg_jdl::JobDescription;
use cg_net::{FaultSchedule, Link, LinkProfile};
use cg_sim::{Sim, SimDuration, SimTime};
use cg_site::{MembershipConfig, Policy, Site, SiteConfig};
use cg_trace::Event;
use crossbroker::{BrokerConfig, CrossBroker, JobId, JobState, SiteHandle};

const INTERACTIVE: &str = r#"
    Executable = "iapp"; JobType = "interactive";
    MachineAccess = "exclusive"; User = "alice";
"#;

/// Two sites. `stalestar` has more nodes, so its (stale) column wins the
/// default free-CPUs rank — but its publish path dies at t=100, freezing
/// `published_at(0)` at 0 while refresh cycles keep advancing
/// `refreshed_at`. `fresh` publishes cleanly throughout. Membership
/// thresholds are raised sky-high so the failure detector never hides
/// the stale site: what's under test is the staleness bound itself.
fn partitioned_grid(sim: &mut Sim, fresh_down_too: bool) -> CrossBroker {
    let mut handles = Vec::new();
    for (name, nodes) in [("stalestar", 8), ("fresh", 2)] {
        let site = Site::new(SiteConfig {
            name: name.into(),
            nodes,
            policy: Policy::Fifo,
            ..SiteConfig::default()
        });
        handles.push(SiteHandle {
            site,
            broker_link: Link::new(LinkProfile::campus()),
            ui_link: Link::new(LinkProfile::campus()),
        });
    }
    let forever = (SimTime::from_secs(100), SimTime::from_secs(1_000_000));
    let mut publish_faults = vec![FaultSchedule::from_windows(vec![forever])];
    if fresh_down_too {
        publish_faults.push(FaultSchedule::from_windows(vec![forever]));
    }
    let config = BrokerConfig {
        publish_faults,
        degraded_max_staleness: SimDuration::from_secs(900),
        index_refresh: SimDuration::from_secs(300),
        membership: MembershipConfig {
            suspect_after_missed_refreshes: 1_000,
            suspect_after_failed_queries: 1_000,
            dead_after_missed_refreshes: 2_000,
            dead_after_failed_queries: 2_000,
            rejoin_probation_refreshes: 2,
        },
        ..BrokerConfig::default()
    };
    // The broker→MDS path is dead the whole run: every discovery query
    // fails, forcing the degraded fallback onto the broker's own index.
    let mds = Link::with_faults(
        LinkProfile::wan_mds(),
        FaultSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_secs(1_000_000))]),
    );
    CrossBroker::new(sim, handles, mds, config)
}

/// Submits one interactive job at t=1000 — when `stalestar`'s column is
/// 1000 s old (over the 900 s bound) but the last refresh cycle ran at
/// t=900 (under it, which is exactly what fooled the old global check).
fn submit_at_1000(sim: &mut Sim, broker: &CrossBroker) -> Rc<RefCell<Option<JobId>>> {
    let id = Rc::new(RefCell::new(None));
    let id2 = Rc::clone(&id);
    let broker = broker.clone();
    sim.schedule_in(SimDuration::from_secs(1000), move |sim| {
        let job = JobDescription::parse(INTERACTIVE).unwrap();
        *id2.borrow_mut() = Some(broker.submit(sim, job, SimDuration::from_secs(60)));
    });
    id
}

#[test]
fn degraded_mode_refuses_sites_whose_own_column_aged_past_the_bound() {
    let mut sim = Sim::new(41);
    let broker = partitioned_grid(&mut sim, false);
    let id = submit_at_1000(&mut sim, &broker);
    sim.run_until(SimTime::from_secs(2000));
    let id = id.borrow().expect("job submitted");

    let record = broker.record(id);
    assert!(
        matches!(record.state, JobState::Done),
        "job must complete on the trusted site: {:?}",
        record.state
    );
    let events = broker.event_log().snapshot();
    let dispatched: Vec<&str> = events
        .iter()
        .filter_map(|e| match &e.event {
            Event::JobDispatched { job, target, .. } if *job == id.0 => Some(target.as_str()),
            _ => None,
        })
        .collect();
    // The old global bound saw staleness = now − refreshed_at ≈ 100 s,
    // trusted the whole snapshot, and ranked `stalestar`'s frozen
    // 8-free-CPUs column first. The per-site bound drops it.
    assert_eq!(dispatched, vec!["site:fresh"], "{events:?}");
    let degraded: Vec<u64> = events
        .iter()
        .filter_map(|e| match &e.event {
            Event::DegradedMatch { job, staleness_ns } if *job == id.0 => Some(*staleness_ns),
            _ => None,
        })
        .collect();
    assert_eq!(degraded.len(), 1, "degraded fallback must be traced");
    let staleness_s = degraded[0] as f64 / 1e9;
    assert!(
        (100.0..115.0).contains(&staleness_s),
        "reported staleness must be the worst *trusted* column's age \
         (fresh's ≈100 s), got {staleness_s}s"
    );
}

#[test]
fn degraded_mode_fails_only_when_no_column_is_trustworthy() {
    let mut sim = Sim::new(42);
    // Both publish paths die at t=100: by t=1000 every column is over
    // the bound, even though the refresh cycle stamp is only 100 s old.
    // The old global check would happily match on 1000 s-old data here;
    // the fix refuses.
    let broker = partitioned_grid(&mut sim, true);
    let id = submit_at_1000(&mut sim, &broker);
    sim.run_until(SimTime::from_secs(2000));
    let id = id.borrow().expect("job submitted");

    let record = broker.record(id);
    assert!(
        matches!(record.state, JobState::Failed { .. }),
        "no trustworthy column ⇒ the job must fail, not match on ancient \
         data: {:?}",
        record.state
    );
    let events = broker.event_log().snapshot();
    assert!(
        !events
            .iter()
            .any(|e| matches!(&e.event, Event::DegradedMatch { job, .. } if *job == id.0)),
        "no degraded match may be recorded when every column is distrusted"
    );
}
