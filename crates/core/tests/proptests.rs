//! Property tests on the fair-share engine and matchmaking.

use cg_jdl::{Ad, JobDescription};
use cg_sim::{SimDuration, SimRng, SimTime};
use crossbroker::{coallocate, filter_candidates, select, FairShare, FairShareConfig, UsageKind};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = UsageKind> {
    prop_oneof![
        Just(UsageKind::Batch),
        (0u8..=20).prop_map(|i| UsageKind::Interactive {
            performance_loss: i * 5
        }),
        (0u8..=20).prop_map(|i| UsageKind::YieldedBatch {
            performance_loss: i * 5
        }),
    ]
}

proptest! {
    /// Priorities are always within [0, max a_f]: non-negative, and bounded
    /// by the worst possible instantaneous charge (a_f ≤ 2, r ≤ 1).
    #[test]
    fn priority_is_bounded(
        usages in prop::collection::vec((kind_strategy(), 1u32..50), 0..10),
        ticks in 1u32..300,
    ) {
        let mut fs = FairShare::new(FairShareConfig::default(), 100);
        for (kind, cpus) in usages {
            fs.register("u", kind, cpus.min(100));
        }
        for t in 1..=ticks {
            fs.tick(SimTime::from_secs(60 * t as u64));
        }
        let p = fs.priority("u");
        prop_assert!(p >= 0.0);
        prop_assert!(p <= 2.0 * 10.0, "priority {p} out of bounds"); // ≤ max af × jobs
    }

    /// Priority is monotone in load: more CPUs used (same kind) never gives
    /// a better priority after the same number of ticks.
    #[test]
    fn priority_monotone_in_load(cpus_a in 1u32..50, cpus_b in 1u32..50, ticks in 1u32..100) {
        let run = |cpus: u32| {
            let mut fs = FairShare::new(FairShareConfig::default(), 100);
            fs.register("u", UsageKind::Batch, cpus);
            for t in 1..=ticks {
                fs.tick(SimTime::from_secs(60 * t as u64));
            }
            fs.priority("u")
        };
        let (lo, hi) = if cpus_a <= cpus_b { (cpus_a, cpus_b) } else { (cpus_b, cpus_a) };
        prop_assert!(run(lo) <= run(hi) + 1e-12);
    }

    /// Decay after release is strictly monotone down to the initial value,
    /// and eventually restores it exactly.
    #[test]
    fn decay_is_monotone_and_complete(busy in 1u32..50, cpus in 1u32..100) {
        let mut fs = FairShare::new(
            FairShareConfig {
                half_life: SimDuration::from_secs(600),
                delta_t: SimDuration::from_secs(60),
                initial: 0.0,
                epsilon: 1e-9,
            },
            100,
        );
        let id = fs.register("u", UsageKind::Batch, cpus.min(100));
        let mut t = 0u64;
        for _ in 0..busy {
            t += 60;
            fs.tick(SimTime::from_secs(t));
        }
        fs.release(id);
        let mut prev = fs.priority("u");
        for _ in 0..2_000 {
            t += 60;
            fs.tick(SimTime::from_secs(t));
            let p = fs.priority("u");
            prop_assert!(p <= prev + 1e-15, "decay must be monotone: {p} > {prev}");
            prev = p;
        }
        prop_assert_eq!(fs.priority("u"), 0.0, "credits fully restored");
    }

    /// filter_candidates never returns a site that violates the free-CPU
    /// constraint, and select always returns a maximal-rank candidate.
    #[test]
    fn matchmaking_respects_constraints(
        frees in prop::collection::vec(0i64..32, 1..30),
        nodes in 1u32..8,
        seed in any::<u64>(),
    ) {
        let src = format!(
            r#"Executable = "a"; JobType = {{"interactive","mpich-p4"}}; NodeNumber = {nodes};"#
        );
        let job = JobDescription::parse(&src).unwrap();
        let ads: Vec<(usize, Ad)> = frees
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let mut ad = Ad::new();
                ad.set_str("Site", format!("s{i}"))
                    .set_int("FreeCpus", f)
                    .set_bool("AcceptsQueued", true);
                (i, ad)
            })
            .collect();
        let candidates = filter_candidates(&job, &ads, true);
        for c in &candidates {
            prop_assert!(c.free_cpus >= nodes as i64);
        }
        let mut rng = SimRng::new(seed);
        if let Some(winner) = select(&candidates, &mut rng) {
            let best = candidates.iter().map(|c| c.rank).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((winner.rank - best).abs() < 1e-12);
        } else {
            prop_assert!(candidates.is_empty());
        }
    }

    /// Co-allocation plans are exact covers: they sum to the request, take
    /// no more than any site has, and exist iff the grid is big enough.
    #[test]
    fn coallocation_is_an_exact_cover(
        frees in prop::collection::vec(0i64..16, 1..20),
        nodes in 1u32..64,
    ) {
        let job = JobDescription::parse(
            r#"Executable = "a"; JobType = {"interactive","mpich-g2"}; NodeNumber = 2;"#,
        )
        .unwrap();
        let ads: Vec<(usize, Ad)> = frees
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let mut ad = Ad::new();
                ad.set_str("Site", format!("s{i}"))
                    .set_int("FreeCpus", f)
                    .set_bool("AcceptsQueued", true);
                (i, ad)
            })
            .collect();
        let candidates = filter_candidates(&job, &ads, false);
        let total_free: i64 = frees.iter().sum();
        match coallocate(&candidates, nodes) {
            Some(plan) => {
                prop_assert!(total_free >= nodes as i64);
                prop_assert_eq!(plan.iter().map(|&(_, n)| n).sum::<u32>(), nodes);
                for &(site, take) in &plan {
                    prop_assert!(take as i64 <= frees[site], "site {site} over-allocated");
                    prop_assert!(take > 0);
                }
                // No site appears twice.
                let mut seen: Vec<usize> = plan.iter().map(|&(s, _)| s).collect();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), plan.len());
            }
            None => prop_assert!(total_free < nodes as i64, "plan missing though {total_free} ≥ {nodes}"),
        }
    }
}

/// One step of a random register/release/set-kind/tick interleaving.
#[derive(Debug, Clone)]
enum FsOp {
    Register {
        user: u8,
        kind: UsageKind,
        cpus: u32,
    },
    Release {
        slot: usize,
    },
    SetKind {
        slot: usize,
        kind: UsageKind,
    },
    Tick,
}

fn fs_op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u8..2, kind_strategy(), 1u32..40).prop_map(|(user, kind, cpus)| FsOp::Register {
            user,
            kind,
            cpus
        }),
        (0usize..64).prop_map(|slot| FsOp::Release { slot }),
        ((0usize..64), kind_strategy()).prop_map(|(slot, kind)| FsOp::SetKind { slot, kind }),
        Just(FsOp::Tick),
        Just(FsOp::Tick), // weight ticks up so charge paths actually run
    ]
}

proptest! {
    /// Random interleavings of register / release / set-kind / tick can
    /// never leave a stale `Usage` behind or double-apply an application
    /// factor: after every step, the engine's usage count and every user's
    /// priority match a straightforward shadow fold of Equation (1) over
    /// the live usage set. In particular a usage registered and released
    /// within the same δt window is charged exactly zero times, and one
    /// that survives a tick is charged exactly once per tick.
    #[test]
    fn interleavings_never_leave_stale_usage_or_double_apply(
        ops in prop::collection::vec(fs_op_strategy(), 1..80),
    ) {
        use std::collections::HashMap;
        let config = FairShareConfig::default();
        let beta = 0.5f64.powf(
            config.delta_t.as_secs_f64() / config.half_life.as_secs_f64(),
        );
        let epsilon = config.epsilon;
        let mut fs = FairShare::new(config, 100);
        // Parallel model: slot i holds Some((user, kind, cpus)) while live.
        let mut handles: Vec<crossbroker::UsageId> = Vec::new();
        let mut live: Vec<Option<(String, UsageKind, u32)>> = Vec::new();
        let mut shadow: HashMap<String, f64> = HashMap::new();
        let mut t = 0u64;
        for op in ops {
            match op {
                FsOp::Register { user, kind, cpus } => {
                    let name = format!("u{user}");
                    handles.push(fs.register(&name, kind, cpus));
                    live.push(Some((name, kind, cpus)));
                }
                FsOp::Release { slot } => {
                    if handles.is_empty() {
                        continue;
                    }
                    let i = slot % handles.len();
                    // A second release of the same id must be harmless.
                    fs.release(handles[i]);
                    live[i] = None;
                }
                FsOp::SetKind { slot, kind } => {
                    if handles.is_empty() {
                        continue;
                    }
                    let i = slot % handles.len();
                    // On a released id this must be a no-op.
                    fs.set_kind(handles[i], kind);
                    if let Some(u) = live[i].as_mut() {
                        u.1 = kind;
                    }
                }
                FsOp::Tick => {
                    t += 60;
                    fs.tick(SimTime::from_secs(t));
                    let mut load: HashMap<String, f64> = HashMap::new();
                    for (user, kind, cpus) in live.iter().flatten() {
                        *load.entry(user.clone()).or_default() +=
                            kind.application_factor() * f64::from(*cpus) / 100.0;
                    }
                    let users: Vec<String> = shadow
                        .keys()
                        .chain(load.keys())
                        .cloned()
                        .collect::<std::collections::HashSet<_>>()
                        .into_iter()
                        .collect();
                    for user in users {
                        let prev = shadow.get(&user).copied().unwrap_or(0.0);
                        let charge = load.get(&user).copied().unwrap_or(0.0);
                        let next = beta * prev + (1.0 - beta) * charge;
                        if next.abs() < epsilon && charge == 0.0 {
                            shadow.remove(&user);
                        } else {
                            shadow.insert(user, next);
                        }
                    }
                }
            }
            prop_assert_eq!(
                fs.active_usages(),
                live.iter().flatten().count(),
                "stale usage left behind"
            );
            for user in ["u0", "u1"] {
                let got = fs.priority(user);
                let want = shadow.get(user).copied().unwrap_or(0.0);
                prop_assert!(
                    (got - want).abs() < 1e-9,
                    "{user}: engine {got} vs shadow {want} after {t}s"
                );
            }
        }
    }
}
