//! Property tests on the fair-share engine and matchmaking.

use cg_jdl::{Ad, JobDescription};
use cg_sim::{SimDuration, SimRng, SimTime};
use crossbroker::{coallocate, filter_candidates, select, FairShare, FairShareConfig, UsageKind};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = UsageKind> {
    prop_oneof![
        Just(UsageKind::Batch),
        (0u8..=20).prop_map(|i| UsageKind::Interactive {
            performance_loss: i * 5
        }),
        (0u8..=20).prop_map(|i| UsageKind::YieldedBatch {
            performance_loss: i * 5
        }),
    ]
}

proptest! {
    /// Priorities are always within [0, max a_f]: non-negative, and bounded
    /// by the worst possible instantaneous charge (a_f ≤ 2, r ≤ 1).
    #[test]
    fn priority_is_bounded(
        usages in prop::collection::vec((kind_strategy(), 1u32..50), 0..10),
        ticks in 1u32..300,
    ) {
        let mut fs = FairShare::new(FairShareConfig::default(), 100);
        for (kind, cpus) in usages {
            fs.register("u", kind, cpus.min(100));
        }
        for t in 1..=ticks {
            fs.tick(SimTime::from_secs(60 * t as u64));
        }
        let p = fs.priority("u");
        prop_assert!(p >= 0.0);
        prop_assert!(p <= 2.0 * 10.0, "priority {p} out of bounds"); // ≤ max af × jobs
    }

    /// Priority is monotone in load: more CPUs used (same kind) never gives
    /// a better priority after the same number of ticks.
    #[test]
    fn priority_monotone_in_load(cpus_a in 1u32..50, cpus_b in 1u32..50, ticks in 1u32..100) {
        let run = |cpus: u32| {
            let mut fs = FairShare::new(FairShareConfig::default(), 100);
            fs.register("u", UsageKind::Batch, cpus);
            for t in 1..=ticks {
                fs.tick(SimTime::from_secs(60 * t as u64));
            }
            fs.priority("u")
        };
        let (lo, hi) = if cpus_a <= cpus_b { (cpus_a, cpus_b) } else { (cpus_b, cpus_a) };
        prop_assert!(run(lo) <= run(hi) + 1e-12);
    }

    /// Decay after release is strictly monotone down to the initial value,
    /// and eventually restores it exactly.
    #[test]
    fn decay_is_monotone_and_complete(busy in 1u32..50, cpus in 1u32..100) {
        let mut fs = FairShare::new(
            FairShareConfig {
                half_life: SimDuration::from_secs(600),
                delta_t: SimDuration::from_secs(60),
                initial: 0.0,
                epsilon: 1e-9,
            },
            100,
        );
        let id = fs.register("u", UsageKind::Batch, cpus.min(100));
        let mut t = 0u64;
        for _ in 0..busy {
            t += 60;
            fs.tick(SimTime::from_secs(t));
        }
        fs.release(id);
        let mut prev = fs.priority("u");
        for _ in 0..2_000 {
            t += 60;
            fs.tick(SimTime::from_secs(t));
            let p = fs.priority("u");
            prop_assert!(p <= prev + 1e-15, "decay must be monotone: {p} > {prev}");
            prev = p;
        }
        prop_assert_eq!(fs.priority("u"), 0.0, "credits fully restored");
    }

    /// filter_candidates never returns a site that violates the free-CPU
    /// constraint, and select always returns a maximal-rank candidate.
    #[test]
    fn matchmaking_respects_constraints(
        frees in prop::collection::vec(0i64..32, 1..30),
        nodes in 1u32..8,
        seed in any::<u64>(),
    ) {
        let src = format!(
            r#"Executable = "a"; JobType = {{"interactive","mpich-p4"}}; NodeNumber = {nodes};"#
        );
        let job = JobDescription::parse(&src).unwrap();
        let ads: Vec<(usize, Ad)> = frees
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let mut ad = Ad::new();
                ad.set_str("Site", format!("s{i}"))
                    .set_int("FreeCpus", f)
                    .set_bool("AcceptsQueued", true);
                (i, ad)
            })
            .collect();
        let candidates = filter_candidates(&job, &ads, true);
        for c in &candidates {
            prop_assert!(c.free_cpus >= nodes as i64);
        }
        let mut rng = SimRng::new(seed);
        if let Some(winner) = select(&candidates, &mut rng) {
            let best = candidates.iter().map(|c| c.rank).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((winner.rank - best).abs() < 1e-12);
        } else {
            prop_assert!(candidates.is_empty());
        }
    }

    /// Co-allocation plans are exact covers: they sum to the request, take
    /// no more than any site has, and exist iff the grid is big enough.
    #[test]
    fn coallocation_is_an_exact_cover(
        frees in prop::collection::vec(0i64..16, 1..20),
        nodes in 1u32..64,
    ) {
        let job = JobDescription::parse(
            r#"Executable = "a"; JobType = {"interactive","mpich-g2"}; NodeNumber = 2;"#,
        )
        .unwrap();
        let ads: Vec<(usize, Ad)> = frees
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let mut ad = Ad::new();
                ad.set_str("Site", format!("s{i}"))
                    .set_int("FreeCpus", f)
                    .set_bool("AcceptsQueued", true);
                (i, ad)
            })
            .collect();
        let candidates = filter_candidates(&job, &ads, false);
        let total_free: i64 = frees.iter().sum();
        match coallocate(&candidates, nodes) {
            Some(plan) => {
                prop_assert!(total_free >= nodes as i64);
                prop_assert_eq!(plan.iter().map(|&(_, n)| n).sum::<u32>(), nodes);
                for &(site, take) in &plan {
                    prop_assert!(take as i64 <= frees[site], "site {site} over-allocated");
                    prop_assert!(take > 0);
                }
                // No site appears twice.
                let mut seen: Vec<usize> = plan.iter().map(|&(s, _)| s).collect();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), plan.len());
            }
            None => prop_assert!(total_free < nodes as i64, "plan missing though {total_free} ≥ {nodes}"),
        }
    }
}
