//! Crash recovery: rebuilding a broker from its durable journal.
//!
//! The event log doubles as a write-ahead journal (see `cg_trace::journal`):
//! every state-shaping event is CRC-framed on disk before the broker acts
//! on it, and periodic snapshots bound how much tail a recovery replays.
//! [`CrossBroker::recover`] folds snapshot + tail into the stream-state
//! model, rebuilds a fresh broker's tables from it, validates the
//! reconstruction against the extended invariants (rules 6–8 in
//! `cg_trace::check_recovery_invariants`, plus the whole-stream rules when
//! the journal carries the complete prefix), and only then re-arms the
//! in-flight work:
//!
//! * jobs parked on the broker queue go back on the queue;
//! * in-flight jobs (matched, dispatched, even running — their sessions
//!   died with the broker) re-enter their submission path from the retained
//!   JDL commit record;
//! * non-terminal jobs whose `JobAd` commit record never reached the disk
//!   are aborted — an incomplete commit record means the submission never
//!   happened, durably speaking;
//! * agents are glide-ins living in broker-held leases: all of them are
//!   lost with the broker and recorded as dead in the new epoch's stream.

use cg_jdl::JobDescription;
use cg_net::Link;
use cg_sim::{Sim, SimDuration, SimTime};
use cg_site::MembershipState;
use cg_trace::replay::{Phase, SiteHealth};
use cg_trace::{check_invariants, check_recovery_invariants, Event, JournalError, LoadedJournal};

use crate::broker::{BrokerStats, CrossBroker, SiteHandle};
use crate::config::BrokerConfig;
use crate::job::JobId;

/// What a [`CrossBroker::recover`] call found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Jobs reconstructed from the journal.
    pub jobs: u64,
    /// Of those, jobs already terminal before the crash.
    pub terminal: u64,
    /// Batch jobs put back on the broker queue.
    pub requeued: u64,
    /// In-flight jobs routed back through their submission path.
    pub resubmitted: u64,
    /// Non-terminal jobs aborted because their JDL commit record never
    /// reached the journal.
    pub aborted: u64,
    /// Agents the stream saw alive at the crash — all lost with the broker.
    pub agents_lost: u64,
    /// Bytes cut from the journal's torn tail when it was opened.
    pub truncated_bytes: u64,
    /// Whether a snapshot bounded the replay.
    pub from_snapshot: bool,
    /// Events replayed after the snapshot (or from the start).
    pub tail_events: u64,
    /// Simulated time of the last journaled event — the crash instant.
    pub crash_at: SimTime,
    /// Invariant violations found in the journaled stream or in the
    /// reconstruction. Empty in a healthy recovery; a non-empty list means
    /// the journal and the rebuilt broker disagree and the recovered state
    /// should not be trusted.
    pub violations: Vec<String>,
}

impl CrossBroker {
    /// Rebuilds a broker from a loaded journal into a fresh simulation
    /// world.
    ///
    /// The job table, aggregate stats, retained job ads and spool ack
    /// watermarks are reconstructed from the journal's snapshot + tail; the
    /// reconstruction is validated (rules 6–8, and the whole-stream rules
    /// 1–5 when no snapshot hides the prefix) **before** any re-arm work is
    /// scheduled, so `report.violations` describes the pure rebuild. Re-arm
    /// actions — requeueing parked batch jobs, resubmitting in-flight jobs,
    /// aborting jobs with incomplete commit records — are scheduled at the
    /// crash instant and run when the caller resumes the simulation.
    ///
    /// # Errors
    /// [`JournalError::Corrupt`] when the journal's snapshot blob does not
    /// decode. (Framing corruption is surfaced earlier, by
    /// `cg_trace::open_journal`.)
    pub fn recover(
        sim: &mut Sim,
        sites: Vec<SiteHandle>,
        mds_link: Link,
        config: BrokerConfig,
        loaded: &LoadedJournal,
    ) -> Result<(CrossBroker, RecoveryReport), JournalError> {
        let expected = loaded.replay_state()?;
        let crash_at = SimTime::from_nanos(expected.last_at_ns);
        let broker = CrossBroker::new(sim, sites, mds_link, config);

        let mut report = RecoveryReport {
            jobs: expected.jobs.len() as u64,
            truncated_bytes: loaded.truncated_bytes,
            from_snapshot: loaded.snapshot.is_some(),
            tail_events: loaded.events.len() as u64,
            crash_at,
            ..RecoveryReport::default()
        };

        // 1. Rebuild the tables from the stream state.
        let mut stats = BrokerStats {
            submitted: expected.jobs.len() as u64,
            agents_deployed: expected.agents.len() as u64,
            ..BrokerStats::default()
        };
        for (id, rj) in &expected.jobs {
            broker.install_restored_job(*id, rj);
            if rj.started {
                stats.started += 1;
            }
            match rj.phase {
                Phase::Finished => stats.finished += 1,
                Phase::Failed => stats.failed += 1,
                Phase::Cancelled => stats.cancelled += 1,
                Phase::Rejected => stats.rejected += 1,
                _ => {}
            }
            stats.resubmissions += u64::from(rj.attempts);
            if rj.phase.is_terminal() {
                report.terminal += 1;
            }
        }
        broker.set_restored_stats(stats);
        broker.reserve_agent_ids(expected.agents.keys().max().map_or(0, |m| m + 1));
        for (stream, mark) in &expected.spools {
            broker.seed_spool_watermark(stream, mark.acked);
        }
        // Rebuild the failure detector's verdicts: sites the stream last
        // saw Suspect/Dead stay out of matchmaking until fresh
        // observations clear them. Counters restart clean — an ongoing
        // outage re-accumulates evidence, an ended one rejoins on the
        // next clean observation.
        for (site, health) in &expected.site_health {
            let state = match health {
                SiteHealth::Suspect => MembershipState::Suspect,
                SiteHealth::Dead => MembershipState::Dead,
            };
            broker.index().restore_membership(site, state, crash_at);
        }
        report.agents_lost = expected.agents.values().filter(|a| a.alive).count() as u64;

        // 2. Validate the reconstruction before any re-arm work runs. The
        // whole-stream rules only apply when the journal carries the
        // complete prefix — behind a snapshot the tail alone would trip
        // lease/yield lookbacks spuriously.
        if loaded.snapshot.is_none() {
            report.violations = check_invariants(&loaded.events);
        }
        let recovered = broker.replay_state();
        report.violations.extend(check_recovery_invariants(
            &loaded.events,
            &expected,
            &recovered,
        ));

        // 3. Re-arm at the crash instant: the new epoch's stream opens with
        // the recovery marker and the glide-in pool's obituaries.
        let log = broker.event_log();
        for (aid, agent) in &expected.agents {
            if agent.alive {
                log.record(
                    crash_at,
                    Event::AgentDied {
                        agent: *aid,
                        reason: "lost in broker crash".into(),
                        voluntary: false,
                    },
                );
            }
        }
        let mut rearm: Vec<(JobId, JobDescription, SimDuration, bool)> = Vec::new();
        for (id, rj) in &expected.jobs {
            if rj.phase.is_terminal() {
                continue;
            }
            let id = JobId(*id);
            let parsed = match (&rj.jdl, rj.runtime_ns) {
                (Some(jdl), Some(runtime_ns)) => JobDescription::parse(jdl)
                    .ok()
                    .map(|job| (job, SimDuration::from_nanos(runtime_ns))),
                _ => None,
            };
            match parsed {
                Some((job, runtime)) => {
                    let queued = rj.phase == Phase::Queued;
                    if queued {
                        report.requeued += 1;
                    } else {
                        report.resubmitted += 1;
                    }
                    rearm.push((id, job, runtime, queued));
                }
                None => {
                    // The commit record (JobSubmitted + JobAd) is incomplete:
                    // the durable submission never happened. Abort.
                    report.aborted += 1;
                    let broker2 = broker.clone();
                    sim.schedule_at(crash_at, move |sim| {
                        broker2.fail_restored(
                            sim,
                            id,
                            "job description lost with the broker crash",
                        );
                    });
                }
            }
        }
        log.record(
            crash_at,
            Event::BrokerRecovered {
                jobs: report.jobs,
                requeued: report.requeued,
                resubmitted: report.resubmitted,
                agents_lost: report.agents_lost,
            },
        );
        for (id, job, runtime, queued) in rearm {
            let broker2 = broker.clone();
            sim.schedule_at(crash_at, move |sim| {
                if queued {
                    broker2.requeue_restored(sim, id, job, runtime);
                } else {
                    broker2.rearm_restored(sim, id, job, runtime);
                }
            });
        }

        Ok((broker, report))
    }
}
