//! Broker-side job model: identities, states, and the timestamped record the
//! experiments measure.

use cg_sim::SimTime;

/// Broker-wide job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Where a job is in its life.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted by the broker, not yet matched.
    Submitted,
    /// Discovery/selection in progress.
    Matching,
    /// Matched; submission to the resource under way.
    Scheduled {
        /// Chosen site.
        site: String,
    },
    /// Waiting in the broker's own queue (no resource available — batch
    /// jobs only, §5.2 arrow 2).
    BrokerQueued,
    /// Running (for interactive jobs: first output has reached the user).
    Running {
        /// Site(s) hosting it.
        sites: Vec<String>,
    },
    /// Finished normally.
    Done,
    /// Rejected or failed.
    Failed {
        /// Why.
        reason: String,
    },
}

/// What happened to a job, when — the measurement record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Its id.
    pub id: JobId,
    /// Submitting user.
    pub user: String,
    /// Current state.
    pub state: JobState,
    /// When the broker accepted it.
    pub submitted_at: SimTime,
    /// When discovery finished (if it ran).
    pub discovered_at: Option<SimTime>,
    /// When selection finished (if it ran).
    pub selected_at: Option<SimTime>,
    /// When the job was handed to the resource (submission start).
    pub dispatched_at: Option<SimTime>,
    /// When the job was running / first output reached the user.
    pub started_at: Option<SimTime>,
    /// When it finished.
    pub finished_at: Option<SimTime>,
    /// Times the broker resubmitted it elsewhere (on-line scheduling).
    pub resubmissions: u32,
}

impl JobRecord {
    /// Fresh record at submission time.
    pub fn new(id: JobId, user: impl Into<String>, now: SimTime) -> Self {
        JobRecord {
            id,
            user: user.into(),
            state: JobState::Submitted,
            submitted_at: now,
            discovered_at: None,
            selected_at: None,
            dispatched_at: None,
            started_at: None,
            finished_at: None,
            resubmissions: 0,
        }
    }

    /// Resource-discovery phase length, seconds.
    pub fn discovery_s(&self) -> Option<f64> {
        self.discovered_at
            .map(|t| t.saturating_since(self.submitted_at).as_secs_f64())
    }

    /// Resource-selection phase length, seconds.
    pub fn selection_s(&self) -> Option<f64> {
        match (self.discovered_at, self.selected_at) {
            (Some(d), Some(s)) => Some(s.saturating_since(d).as_secs_f64()),
            _ => None,
        }
    }

    /// The Table I "Submission" column: from dispatch to first output.
    pub fn submission_s(&self) -> Option<f64> {
        match (self.dispatched_at, self.started_at) {
            (Some(d), Some(s)) => Some(s.saturating_since(d).as_secs_f64()),
            _ => None,
        }
    }

    /// Total response time: submission-to-first-output.
    pub fn response_s(&self) -> Option<f64> {
        self.started_at
            .map(|t| t.saturating_since(self.submitted_at).as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accessors_decompose_the_timeline() {
        let mut r = JobRecord::new(JobId(1), "alice", SimTime::from_secs(100));
        r.discovered_at = Some(SimTime::from_secs(101));
        r.selected_at = Some(SimTime::from_secs(104));
        r.dispatched_at = Some(SimTime::from_secs(104));
        r.started_at = Some(SimTime::from_secs(111));
        assert_eq!(r.discovery_s(), Some(1.0));
        assert_eq!(r.selection_s(), Some(3.0));
        assert_eq!(r.submission_s(), Some(7.0));
        assert_eq!(r.response_s(), Some(11.0));
    }

    #[test]
    fn missing_phases_are_none() {
        let r = JobRecord::new(JobId(2), "bob", SimTime::ZERO);
        assert_eq!(r.discovery_s(), None);
        assert_eq!(r.selection_s(), None);
        assert_eq!(r.submission_s(), None);
        assert_eq!(r.response_s(), None);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(JobId(42).to_string(), "job42");
    }
}
